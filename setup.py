from setuptools import setup; setup(python_requires=">=3.10")
