from setuptools import find_packages, setup

setup(
    name="repro-oktopk",
    version="0.9.0",
    description="Ok-Topk sparse-allreduce reproduction: deterministic "
                "simulated-MPI training/serving with static + runtime "
                "correctness tooling",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-bench = repro.cli:main",
            "repro-lint = repro.analysis.cli:main",
        ],
    },
)
