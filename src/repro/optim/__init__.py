"""Optimizers: dense SGD/Adam plus the paper's Algorithm 2 drivers."""

from .adam import Adam
from .lr_schedules import (
    ConstantLR,
    LinearDecayLR,
    LRSchedule,
    StepDecayLR,
    as_schedule,
)
from .sgd import SGD
from .topk_sgd import SparseOptimWrapper, StepInfo, TopkSGD

__all__ = [
    "SGD",
    "Adam",
    "TopkSGD",
    "SparseOptimWrapper",
    "StepInfo",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "LinearDecayLR",
    "as_schedule",
]
