"""Ok-Topk SGD — Algorithm 2 of the paper — and the error-feedback wrapper
for adaptive optimizers (the paper's BERT/Adam mode).

Algorithm 2 (per worker ``i``, iteration ``t``)::

    acc_t  = eps_{t-1} + alpha * G_{t-1}(w_{t-1})     # accumulate residuals
    u_t, indexes = Ok_sparse_allreduce(acc_t, t, k)
    eps_t  = acc_t ;  eps_t[indexes] = 0              # update residuals
    w_t    = w_{t-1} - u_t / P                        # apply model update

The residuals keep every gradient entry that did not contribute to the
global top-k so it can contribute later (error feedback); dense baselines
contribute everything and keep no residual.

Works with *any* :class:`repro.allreduce.GradientAllreduce` — that is how
the paper compares the six schemes under an identical optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..allreduce.base import AllreduceResult, GradientAllreduce
from ..allreduce.session import ParamLayout, run_session
from ..comm import SimComm
from ..sparse import COOVector
from .lr_schedules import LRSchedule, as_schedule


@dataclass
class StepInfo:
    """Diagnostics of one distributed optimizer step.

    ``residual_norm`` is evaluated lazily from a snapshot-free reference:
    the eager per-step ``np.linalg.norm`` over the full residual was pure
    overhead on the training hot path (nothing in the trainer consumes
    it).  Read it before the *next* ``step`` call mutates the residual.
    """

    t: int
    lr: float
    result: AllreduceResult
    _residual: Optional[np.ndarray] = None

    @property
    def residual_norm(self) -> float:
        if self._residual is None:
            return 0.0
        return float(np.linalg.norm(self._residual))

    @property
    def phase_times(self) -> Dict[str, float]:
        return self.result.phase_times


def _session_or_reduce(allreduce: GradientAllreduce, comm: SimComm,
                       acc: np.ndarray, t: int,
                       layout: Optional[ParamLayout],
                       bucket_size: Optional[int],
                       pacer=None) -> AllreduceResult:
    """Run the allreduce: session-based when a layout is configured
    (bit-identical to one-shot at the default ``bucket_size=None``).

    ``pacer`` (segment -> None) switches the session to streaming
    execution: it is invoked before each push to charge the backward
    compute the segment represents, and bucket reductions are issued on
    the simulated clock mid-backward (see :mod:`repro.allreduce.session`).
    """
    if layout is not None:
        return run_session(allreduce, comm, layout, t, acc,
                           bucket_size=bucket_size, pacer=pacer)
    return allreduce.reduce(comm, acc, t)


def _apply_update(params: np.ndarray, update, scale: float) -> None:
    """``params -= scale * update`` for sparse or dense updates."""
    if isinstance(update, COOVector):
        params[update.indices] -= (scale * update.values).astype(
            params.dtype, copy=False)
    else:
        params -= (scale * update).astype(params.dtype, copy=False)


class TopkSGD:
    """Algorithm 2: plain SGD with residual accumulation.

    Args:
        allreduce: the gradient reduction scheme (one instance per worker).
        lr: learning rate or schedule (the paper's ``alpha``).
        n: number of model parameters (residual buffer size).
        layout: when given, steps run through the session-based bucketed
            allreduce (``allreduce.begin`` + per-segment pushes in
            backward order) instead of the one-shot ``reduce``; with the
            default ``bucket_size=None`` the two are bit-identical.
        bucket_size: bucket-fusion threshold in words (see
            :mod:`repro.allreduce.session`).
    """

    def __init__(self, allreduce: GradientAllreduce, lr, n: int, *,
                 layout: Optional[ParamLayout] = None,
                 bucket_size: Optional[int] = None):
        self.allreduce = allreduce
        self.lr: LRSchedule = as_schedule(lr)
        self.residual = np.zeros(n, dtype=np.float32)
        self.t = 0
        self.layout = layout
        self.bucket_size = bucket_size

    def step(self, comm: SimComm, params: np.ndarray,
             grad: np.ndarray, *, pacer=None, rb=None) -> StepInfo:
        """One synchronous data-parallel step; mutates ``params``.

        ``pacer`` enables streaming sessions (see
        :func:`_session_or_reduce`); ``rb`` (a
        :class:`repro.train.rankbatch.RankBatch`) batches the residual
        accumulation across the world when lockstep execution is engaged
        — bit-identical to the per-rank expression."""
        self.t += 1
        lr = self.lr(self.t)
        acc = rb.accumulate(self.t, self.residual, lr, grad) \
            if rb is not None else None
        if acc is None:
            acc = self.residual + lr * grad.astype(np.float32, copy=False)
        result = _session_or_reduce(self.allreduce, comm, acc, self.t,
                                    self.layout, self.bucket_size,
                                    pacer=pacer)
        # residual update: keep what did not contribute
        self.residual = acc
        if result.contributed_indices is None:
            self.residual = np.zeros_like(acc)
        else:
            self.residual[result.contributed_indices] = 0.0
        _apply_update(params, result.update, 1.0 / comm.size)
        return StepInfo(t=self.t, lr=lr, result=result,
                        _residual=self.residual)


class SparseOptimWrapper:
    """Error-feedback sparsification around an inner (adaptive) optimizer.

    The paper's BERT mode: "sparse allreduce is conducted on the gradients
    and Adam optimizer is applied afterwards" (Section 5).  Residuals are
    accumulated on raw gradients; the inner optimizer consumes the averaged
    sparse update as its gradient estimate.
    """

    def __init__(self, allreduce: GradientAllreduce, inner: Any, n: int, *,
                 layout: Optional[ParamLayout] = None,
                 bucket_size: Optional[int] = None):
        self.allreduce = allreduce
        self.inner = inner
        self.residual = np.zeros(n, dtype=np.float32)
        self.t = 0
        self.layout = layout
        self.bucket_size = bucket_size

    def step(self, comm: SimComm, params: np.ndarray,
             grad: np.ndarray, *, pacer=None, rb=None) -> StepInfo:
        self.t += 1
        acc = rb.accumulate(self.t, self.residual, 1.0, grad) \
            if rb is not None else None
        if acc is None:
            acc = self.residual + grad.astype(np.float32, copy=False)
        result = _session_or_reduce(self.allreduce, comm, acc, self.t,
                                    self.layout, self.bucket_size,
                                    pacer=pacer)
        self.residual = acc
        if result.contributed_indices is None:
            self.residual = np.zeros_like(acc)
        else:
            self.residual[result.contributed_indices] = 0.0
        g_hat = result.update_dense(params.size) / comm.size
        self.inner.step(params, g_hat)
        lr = self.inner.lr(self.inner.t) if hasattr(self.inner, "lr") else 0.0
        return StepInfo(t=self.t, lr=float(lr), result=result,
                        _residual=self.residual)
