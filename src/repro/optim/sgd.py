"""Dense reference optimizers: SGD (with momentum) working on flat
parameter vectors in place."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .lr_schedules import LRSchedule, as_schedule


class SGD:
    """Classic (momentum) SGD: ``w -= lr * (g + mu * v)``.

    Operates on flat float32 vectors; the distributed drivers own the
    division by P, so ``grad`` here is already the average (or the local
    gradient in single-worker use).
    """

    def __init__(self, lr=0.1, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        self.lr: LRSchedule = as_schedule(lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[np.ndarray] = None
        self.t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> None:
        self.t += 1
        lr = self.lr(self.t)
        g = grad
        if self.weight_decay:
            g = g + self.weight_decay * params
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(params)
            self._velocity *= self.momentum
            self._velocity += g
            g = self._velocity
        params -= (lr * g).astype(params.dtype, copy=False)

    def state_dict(self) -> dict:
        return {"t": self.t,
                "velocity": None if self._velocity is None
                else self._velocity.copy()}
