"""Learning-rate schedules.

The paper uses: SGD with simple diminishing rates for VGG-16/LSTM, and Adam
with warmup-free linear decay for BERT.  ``t`` is the 1-based iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence


class LRSchedule(Protocol):
    def __call__(self, t: int) -> float: ...


@dataclass(frozen=True)
class ConstantLR:
    lr: float

    def __call__(self, t: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepDecayLR:
    """Multiply the rate by ``factor`` at each milestone iteration."""

    lr: float
    milestones: Sequence[int]
    factor: float = 0.1

    def __call__(self, t: int) -> float:
        drops = sum(1 for m in self.milestones if t >= m)
        return self.lr * (self.factor ** drops)


@dataclass(frozen=True)
class LinearDecayLR:
    """Linear warmup (optional) then linear decay to zero at ``total``."""

    lr: float
    total: int
    warmup: int = 0

    def __call__(self, t: int) -> float:
        if self.warmup and t <= self.warmup:
            return self.lr * t / self.warmup
        frac = max(0.0, (self.total - t) / max(1, self.total - self.warmup))
        return self.lr * frac


def as_schedule(lr) -> LRSchedule:
    """Coerce a float into a constant schedule."""
    if callable(lr):
        return lr
    return ConstantLR(float(lr))
