"""Adam optimizer (Kingma & Ba 2014) on flat parameter vectors.

The paper's BERT runs use Adam with lr=2e-4, beta1=0.9, beta2=0.999, weight
decay 0.01 and linear lr decay; the sparse allreduce runs on the gradients
and Adam is applied afterwards (Section 5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .lr_schedules import LRSchedule, as_schedule


class Adam:
    def __init__(self, lr=1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0):
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr: LRSchedule = as_schedule(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self.t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> None:
        self.t += 1
        lr = self.lr(self.t)
        g = grad.astype(np.float32, copy=False)
        if self.weight_decay:
            g = g + self.weight_decay * params
        if self._m is None:
            self._m = np.zeros_like(params, dtype=np.float32)
            self._v = np.zeros_like(params, dtype=np.float32)
        self._m *= self.beta1
        self._m += (1 - self.beta1) * g
        self._v *= self.beta2
        self._v += (1 - self.beta2) * np.square(g)
        mhat = self._m / (1 - self.beta1 ** self.t)
        vhat = self._v / (1 - self.beta2 ** self.t)
        params -= (lr * mhat / (np.sqrt(vhat) + self.eps)).astype(
            params.dtype, copy=False)
