"""SPMD launcher: run one Python callable per simulated rank.

Two runners execute the same per-rank programs against the same shared
:class:`Network`:

* ``"coop"`` (default) — the deterministic cooperative engine
  (:mod:`repro.comm.engine`): exactly one rank executes at a time, control
  switches only at blocking points, the network hot path takes no locks and
  payloads travel zero-copy.  Global deadlocks are detected and raised.
* ``"threads"`` — the legacy runner: one free-running OS thread per rank,
  serialized by the network lock, with deep-copied payloads.  Kept as a
  compatibility fallback and as an independent implementation for
  equivalence testing (``tests/test_runner_equivalence.py``).

Simulated time is schedule-independent (links are booked in program order
of the owning rank), so results, traffic counters and makespans are
identical under both runners.  Pick a runner per call with ``runner=`` or
globally with the ``REPRO_SPMD_RUNNER`` environment variable.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import CommError, RankFailedError
from .communicator import SimComm
from .engine import CoopEngine
from .model import NetworkModel
from .network import Network, TrafficStats

#: environment variable consulted when ``run_spmd`` is called without an
#: explicit ``runner=``; accepts the same values as the argument.
RUNNER_ENV = "REPRO_SPMD_RUNNER"

_RUNNER_ALIASES = {
    "coop": "coop",
    "cooperative": "coop",
    "threads": "threads",
    "threaded": "threads",
}


def resolve_runner(runner: Optional[str] = None) -> str:
    """Normalize a runner name (argument > ``REPRO_SPMD_RUNNER`` > coop)."""
    name = runner or os.environ.get(RUNNER_ENV) or "coop"
    try:
        return _RUNNER_ALIASES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown SPMD runner {name!r}; expected one of "
            f"{sorted(_RUNNER_ALIASES)}") from None


@dataclass
class SpmdResult:
    """Outcome of an SPMD section."""

    results: List[Any]
    network: Network

    @property
    def makespan(self) -> float:
        """Simulated completion time (max over rank clocks), seconds."""
        return self.network.makespan

    @property
    def stats(self) -> TrafficStats:
        return self.network.stats()

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, rank: int) -> Any:
        return self.results[rank]


def run_spmd(nranks: int, fn: Callable[..., Any], *args: Any,
             network: Optional[Network] = None,
             model: Optional[NetworkModel] = None,
             trace: bool = False,
             runner: Optional[str] = None,
             fused: Optional[bool] = None,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks.

    Args:
        nranks: number of simulated ranks (P).
        fn: the per-rank program; receives a :class:`SimComm` first.
        network: reuse an existing network (keeps clocks/counters); by
            default a fresh one is created.
        model: cost model for a fresh network (ignored when ``network``
            is given).
        trace: record a message trace on the fresh network.
        runner: ``"coop"`` (default) or ``"threads"``; ``None`` defers to
            the ``REPRO_SPMD_RUNNER`` environment variable.
        fused: enable the fused collective fast path on the cooperative
            engine (see :mod:`repro.comm.fused`); ``None`` (default)
            defers to the ``REPRO_FUSED`` environment variable (on unless
            set to ``0``).  The threaded runner always takes the
            per-message reference path.

    Returns:
        :class:`SpmdResult` with per-rank return values and the network.

    Raises:
        RankFailedError: if any rank raised; other ranks are unblocked via
            the network abort flag and their secondary errors suppressed.
            A global deadlock surfaces as a wrapped
            :class:`repro.errors.DeadlockError` (cooperative runner only).
    """
    net = network if network is not None else Network(nranks, model, trace=trace)
    if net.nranks != nranks:
        raise ValueError(
            f"network has {net.nranks} ranks but nranks={nranks} requested")
    which = resolve_runner(runner)

    if nranks == 1:
        # Fast path: single rank runs inline on the calling thread (keeps
        # tracebacks simple; payload semantics are the threaded ones).
        results, failures = _run_inline(net, fn, args, kwargs)
    elif which == "threads":
        results, failures = _run_threads(net, nranks, fn, args, kwargs)
    else:
        results, failures = CoopEngine(net, nranks,
                                       fused=fused).run(fn, args, kwargs)

    if failures:
        genuine = {r: e for r, e in failures.items()
                   if not isinstance(e, CommError)} or failures
        raise RankFailedError(genuine)
    return SpmdResult(results, net)


def _run_inline(net: Network, fn: Callable[..., Any], args: tuple,
                kwargs: dict) -> tuple[List[Any], Dict[int, BaseException]]:
    results: List[Any] = [None]
    failures: Dict[int, BaseException] = {}
    comm = SimComm(net, 0)
    try:
        results[0] = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - uniform failure report
        failures[0] = exc
        net.abort(exc)
    return results, failures


def _run_threads(net: Network, nranks: int, fn: Callable[..., Any],
                 args: tuple, kwargs: dict,
                 ) -> tuple[List[Any], Dict[int, BaseException]]:
    """Legacy thread-per-rank execution (see module docstring)."""
    results: List[Any] = [None] * nranks
    failures: Dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = SimComm(net, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except CommError as exc:
            # Secondary failure caused by another rank's abort: record only
            # if we are the first (i.e. the genuine origin).
            with failures_lock:
                if not net.aborted or not failures:
                    failures[rank] = exc
            net.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            with failures_lock:
                failures[rank] = exc
            net.abort(exc)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True,
                                name=f"spmd-rank-{r}")
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, failures
