"""SPMD launcher: run one Python callable per simulated rank.

Each rank runs in its own OS thread against a shared :class:`Network`.
Simulated time is schedule-independent (links are booked in program order of
the owning rank), so results and timings are deterministic even though the
GIL interleaves threads arbitrarily.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..errors import CommError, RankFailedError
from .communicator import SimComm
from .model import NetworkModel
from .network import Network, TrafficStats


@dataclass
class SpmdResult:
    """Outcome of an SPMD section."""

    results: List[Any]
    network: Network

    @property
    def makespan(self) -> float:
        """Simulated completion time (max over rank clocks), seconds."""
        return self.network.makespan

    @property
    def stats(self) -> TrafficStats:
        return self.network.stats()

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, rank: int) -> Any:
        return self.results[rank]


def run_spmd(nranks: int, fn: Callable[..., Any], *args: Any,
             network: Optional[Network] = None,
             model: Optional[NetworkModel] = None,
             trace: bool = False,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks.

    Args:
        nranks: number of simulated ranks (P).
        fn: the per-rank program; receives a :class:`SimComm` first.
        network: reuse an existing network (keeps clocks/counters); by
            default a fresh one is created.
        model: cost model for a fresh network (ignored when ``network``
            is given).
        trace: record a message trace on the fresh network.

    Returns:
        :class:`SpmdResult` with per-rank return values and the network.

    Raises:
        RankFailedError: if any rank raised; other ranks are unblocked via
            the network abort flag and their secondary errors suppressed.
    """
    net = network if network is not None else Network(nranks, model, trace=trace)
    if net.nranks != nranks:
        raise ValueError(
            f"network has {net.nranks} ranks but nranks={nranks} requested")
    results: List[Any] = [None] * nranks
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = SimComm(net, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except CommError as exc:
            # Secondary failure caused by another rank's abort: record only
            # if we are the first (i.e. the genuine origin).
            with failures_lock:
                if not net.aborted or not failures:
                    failures[rank] = exc
            net.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            with failures_lock:
                failures[rank] = exc
            net.abort(exc)

    if nranks == 1:
        # Fast path: no threads needed, keeps tracebacks simple.
        runner(0)
    else:
        threads = [threading.Thread(target=runner, args=(r,), daemon=True,
                                    name=f"spmd-rank-{r}")
                   for r in range(nranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        genuine = {r: e for r, e in failures.items()
                   if not isinstance(e, CommError)} or failures
        raise RankFailedError(genuine)
    return SpmdResult(results, net)
