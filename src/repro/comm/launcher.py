"""SPMD launcher: run one Python callable per simulated rank.

Two runners execute the same per-rank programs against the same shared
:class:`Network`:

* ``"coop"`` (default) — the deterministic cooperative engine
  (:mod:`repro.comm.engine`): exactly one rank executes at a time, control
  switches only at blocking points, the network hot path takes no locks and
  payloads travel zero-copy.  Global deadlocks are detected and raised.
* ``"threads"`` — the legacy runner: one free-running OS thread per rank,
  serialized by the network lock, with deep-copied payloads.  Kept as a
  compatibility fallback and as an independent implementation for
  equivalence testing (``tests/test_runner_equivalence.py``).

Simulated time is schedule-independent (links are booked in program order
of the owning rank), so results, traffic counters and makespans are
identical under both runners.  Pick a runner per call with ``runner=`` or
globally with the ``REPRO_SPMD_RUNNER`` environment variable.

Fault plans
-----------

Pass ``faults=FaultPlan(...)`` to inject deterministic link slowdowns,
compute stragglers and rank crashes (see :mod:`repro.comm.faults`).  A
planned crash (:class:`~repro.errors.SimulatedRankCrash`) is never a
program error: if every *other* rank either also crashed on schedule or
returned normally (elastic recovery), the run **succeeds** and the crashed
ranks are reported in :attr:`SpmdResult.crashed` with ``None`` results.
Survivors that did not recover raise :class:`RankFailedError` naming the
dead ranks; the launcher merges those into one error.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional

import inspect

import numpy as np

from ..errors import CommError, LoanViolationError, MailboxLeakError, \
    RankFailedError, ScheduleRaceError, SimulatedRankCrash
from .communicator import SimComm
from .engine import CoopEngine, GenEngine, drive_program
from .faults import FaultPlan
from .model import NetworkModel
from .network import Network, TrafficStats

#: environment variable consulted when ``run_spmd`` is called without an
#: explicit ``runner=``; accepts the same values as the argument.
RUNNER_ENV = "REPRO_SPMD_RUNNER"

#: environment variable enabling the runtime sanitizer mode
#: (``run_spmd(sanitize=True)`` equivalent); truthy values: 1/true/yes/on.
SANITIZE_ENV = "REPRO_SANITIZE"

#: ready-queue perturbation seed used by the sanitizer's race-detector
#: replay (any fixed seed works; exposed so tests can reference it).
SANITIZE_SCHEDULE_SEED = 0xA11CE

_RUNNER_ALIASES = {
    "coop": "coop",
    "cooperative": "coop",
    "threads": "threads",
    "threaded": "threads",
    "gen": "gen",
    "generator": "gen",
}


def sanitize_enabled(sanitize: Optional[bool] = None) -> bool:
    """Resolve the sanitizer switch (argument > ``REPRO_SANITIZE`` > off)."""
    if sanitize is not None:
        return bool(sanitize)
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def resolve_runner(runner: Optional[str] = None) -> str:
    """Normalize a runner name (argument > ``REPRO_SPMD_RUNNER`` > coop)."""
    name = runner or os.environ.get(RUNNER_ENV) or "coop"
    try:
        return _RUNNER_ALIASES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown SPMD runner {name!r}; expected one of "
            f"{sorted(_RUNNER_ALIASES)}") from None


@dataclass
class SpmdResult:
    """Outcome of an SPMD section."""

    results: List[Any]
    network: Network
    #: ranks that fail-stopped on schedule under the fault plan (their
    #: ``results`` entries are ``None``); empty for fault-free runs.
    crashed: Dict[int, SimulatedRankCrash] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Simulated completion time (max over rank clocks), seconds."""
        return self.network.makespan

    @property
    def survivors(self) -> List[int]:
        """Ranks that ran to completion — every rank on a clean run, the
        elastic survivor set when scheduled crashes fired (their results
        are the ones worth reading; see e.g. the serving loop)."""
        return [r for r in range(len(self.results))
                if r not in self.crashed]

    @property
    def stats(self) -> TrafficStats:
        return self.network.stats()

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, rank: int) -> Any:
        return self.results[rank]


def run_spmd(nranks: int, fn: Callable[..., Any], *args: Any,
             network: Optional[Network] = None,
             model: Optional[NetworkModel] = None,
             trace: bool = False,
             runner: Optional[str] = None,
             fused: Optional[bool] = None,
             faults: Optional[FaultPlan] = None,
             sanitize: Optional[bool] = None,
             **kwargs: Any) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks.

    Args:
        nranks: number of simulated ranks (P).
        fn: the per-rank program; receives a :class:`SimComm` first.
        network: reuse an existing network (keeps clocks/counters); by
            default a fresh one is created.
        model: cost model for a fresh network (ignored when ``network``
            is given).
        trace: record a message trace on the fresh network.
        runner: ``"coop"`` (default) or ``"threads"``; ``None`` defers to
            the ``REPRO_SPMD_RUNNER`` environment variable.
        fused: enable the fused collective fast path on the cooperative
            engine (see :mod:`repro.comm.fused`); ``None`` (default)
            defers to the ``REPRO_FUSED`` environment variable (on unless
            set to ``0``).  The threaded runner always takes the
            per-message reference path.  Ignored under a fault plan (the
            fused executors bypass the per-rank fault hooks).
        faults: declarative fault plan for this section (see module
            docstring); only valid with a fresh network.
        sanitize: runtime sanitizer mode; ``None`` (default) defers to
            the ``REPRO_SANITIZE`` environment variable (off unless
            truthy).  On a clean section the sanitizer (1) raises
            :class:`repro.errors.LoanViolationError` if any loaned
            ``isend`` buffer was made writable during its loan window,
            (2) raises :class:`repro.errors.MailboxLeakError` if any
            message was left undelivered, and (3) — fresh-network,
            fault-free, multi-rank coop/gen sections only — re-runs the
            program under a seeded perturbation of the engine's ready
            queue and raises :class:`repro.errors.ScheduleRaceError`
            unless results, clocks and traffic counters are
            bit-identical (simulated time is schedule-independent by
            construction, so any divergence is a message race through
            shared Python state).  Under the threaded runner, received
            payload copies are additionally write-locked.  The replay
            re-executes ``fn``; programs with external side effects
            should not enable it.

    Returns:
        :class:`SpmdResult` with per-rank return values and the network.

    Raises:
        RankFailedError: if any rank raised; other ranks are unblocked via
            the network abort flag and their secondary errors suppressed.
            A global deadlock surfaces as a wrapped
            :class:`repro.errors.DeadlockError` (cooperative runner only).
            Under a fault plan, planned crashes with non-recovering
            survivors raise one merged error naming the dead ranks.
    """
    if network is not None and faults is not None:
        raise ValueError(
            "pass faults= only with a fresh network (the plan is compiled "
            "into the Network at construction); build the Network with "
            "faults= instead")
    san = sanitize_enabled(sanitize)
    net = network if network is not None else Network(
        nranks, model, trace=trace, faults=faults, sanitize=san)
    if san and network is not None:
        net.sanitize = True
    if net.nranks != nranks:
        raise ValueError(
            f"network has {net.nranks} ranks but nranks={nranks} requested")
    which = resolve_runner(runner)

    if which != "gen" and inspect.isgeneratorfunction(fn):
        # Generator rank-programs run under every runner: outside the
        # generator engine the yielded thunks execute inline on the
        # rank's own thread (see repro.comm.engine.drive_program).
        fn = drive_program(fn)

    if nranks == 1:
        # Fast path: single rank runs inline on the calling thread (keeps
        # tracebacks simple; payload semantics are the threaded ones).
        if inspect.isgeneratorfunction(fn):
            fn = drive_program(fn)
        results, failures = _run_inline(net, fn, args, kwargs)
    elif which == "threads":
        results, failures = _run_threads(net, nranks, fn, args, kwargs)
    elif which == "gen":
        results, failures = GenEngine(net, nranks,
                                      fused=fused).run(fn, args, kwargs)
    else:
        results, failures = CoopEngine(net, nranks,
                                       fused=fused).run(fn, args, kwargs)

    if failures:
        crashes = {r: e for r, e in failures.items()
                   if isinstance(e, SimulatedRankCrash)}
        others = {r: e for r, e in failures.items() if r not in crashes}
        if not others:
            # Every failure was a planned fail-stop and every survivor
            # returned normally (elastic recovery or no survivors left
            # blocked): the section succeeded in the shrunk world.
            return SpmdResult(results, net, crashed=crashes)
        genuine = {r: e for r, e in others.items()
                   if not isinstance(e, CommError)}
        if genuine:
            raise RankFailedError(genuine)
        if all(isinstance(e, RankFailedError) for e in others.values()):
            # Survivors unanimously detected the planned deaths: collapse
            # their per-rank reports into one error naming the dead set.
            merged: Dict[int, BaseException] = dict(crashes)
            for e in others.values():
                merged.update(e.failures)
            raise RankFailedError(merged)
        raise RankFailedError({**others, **crashes})
    if net.sanitize:
        _sanitize_audit(net)
        if network is None and faults is None and nranks > 1 \
                and which in ("coop", "gen"):
            _sanitize_replay(net, nranks, fn, args, kwargs, which, fused,
                             results)
    return SpmdResult(results, net)


def _sanitize_audit(net: Network) -> None:
    """End-of-section sanitizer checks on a cleanly completed run."""
    if net._sanitize_violations:
        violations = list(net._sanitize_violations)
        net._sanitize_violations.clear()
        raise LoanViolationError(violations)
    leaks = net.undelivered_messages()
    if leaks:
        raise MailboxLeakError(leaks)


def _sanitize_replay(net: Network, nranks: int, fn: Callable[..., Any],
                     args: tuple, kwargs: dict, which: str,
                     fused: Optional[bool], results: List[Any]) -> None:
    """Race detector: re-run the section on a fresh network with a seeded
    ready-queue perturbation and require a bit-identical outcome."""
    net2 = Network(nranks, net.model, sanitize=True)
    engine_cls = GenEngine if which == "gen" else CoopEngine
    try:
        results2, failures2 = engine_cls(
            net2, nranks, fused=fused,
            schedule_seed=SANITIZE_SCHEDULE_SEED).run(fn, args, kwargs)
    except ScheduleRaceError:
        raise
    except BaseException as exc:  # noqa: BLE001 - any divergence is a race
        raise ScheduleRaceError(
            [f"perturbed-schedule re-run raised "
             f"{type(exc).__name__}: {exc}"]) from exc
    if failures2:
        raise ScheduleRaceError(
            [f"rank {r} failed only under the perturbed schedule: "
             f"{type(e).__name__}: {e}"
             for r, e in sorted(failures2.items())])
    diffs: List[str] = []
    for rank in range(nranks):
        if not _deep_equal(results[rank], results2[rank]):
            diffs.append(f"rank {rank} result differs")
    if net2.clocks != net.clocks:
        diffs.append("simulated clocks differ")
    for name in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
        if getattr(net2, name) != getattr(net, name):
            diffs.append(f"traffic counters differ ({name})")
    if diffs:
        raise ScheduleRaceError(diffs)


def _deep_equal(a: Any, b: Any) -> bool:
    """Bit-identity comparison for rank results: exact dtype/shape/bytes
    for arrays, structural recursion for containers and dataclasses."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and a.tobytes() == b.tobytes())
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            _deep_equal(v, b[k]) for k, v in a.items())
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(
            _deep_equal(x, y) for x, y in zip(a, b))
    if is_dataclass(a) and not isinstance(a, type):
        return all(_deep_equal(getattr(a, f.name), getattr(b, f.name))
                   for f in fields(a))
    if isinstance(a, float):
        return a == b or (a != a and b != b)  # NaN == NaN for bit-identity
    return a == b


def _run_inline(net: Network, fn: Callable[..., Any], args: tuple,
                kwargs: dict) -> tuple[List[Any], Dict[int, BaseException]]:
    results: List[Any] = [None]
    failures: Dict[int, BaseException] = {}
    net._begin_section()
    comm = SimComm(net, 0)
    try:
        results[0] = fn(comm, *args, **kwargs)
    except SimulatedRankCrash as exc:
        failures[0] = exc
    except BaseException as exc:  # noqa: BLE001 - uniform failure report
        failures[0] = exc
        net.abort(exc)
    finally:
        net._on_rank_exit(0)
    return results, failures


def _run_threads(net: Network, nranks: int, fn: Callable[..., Any],
                 args: tuple, kwargs: dict,
                 ) -> tuple[List[Any], Dict[int, BaseException]]:
    """Legacy thread-per-rank execution (see module docstring)."""
    results: List[Any] = [None] * nranks
    failures: Dict[int, BaseException] = {}
    failures_lock = threading.Lock()
    net._begin_section()

    def runner(rank: int) -> None:
        comm = SimComm(net, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except SimulatedRankCrash as exc:
            # Planned fail-stop: never an abort — survivors detect the
            # death through the network's revoke bookkeeping.
            with failures_lock:
                failures[rank] = exc
        except RankFailedError as exc:
            # Survivor report of planned peer deaths: also not an abort
            # (other survivors reach the same detection independently).
            with failures_lock:
                failures[rank] = exc
        except CommError as exc:
            # Secondary failure caused by another rank's abort: record only
            # if we are the first (i.e. the genuine origin).
            with failures_lock:
                if not net.aborted or not failures:
                    failures[rank] = exc
            net.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            with failures_lock:
                failures[rank] = exc
            net.abort(exc)
        finally:
            net._on_rank_exit(rank)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True,
                                name=f"spmd-rank-{r}")
               for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, failures
