"""Message and request objects for the simulated runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Message:
    """An in-flight message.

    Timing fields are in simulated seconds.  ``t_start_tx`` and ``t_first``
    are fixed when the sender posts (egress link booked in sender program
    order); ``t_done`` is fixed when the receiver matches (ingress link
    booked in receiver program order), so both links serialize
    deterministically regardless of thread scheduling.
    """

    src: int
    dst: int
    tag: int
    seq: int
    payload: Any
    nwords: int
    t_start_tx: float
    t_first: float
    t_done: Optional[float] = None

    def matches(self, source: int, tag: int) -> bool:
        return self.src == source and self.tag == tag


@dataclass
class TraceRecord:
    """One completed transfer, for congestion/ schedule analysis."""

    src: int
    dst: int
    tag: int
    nwords: int
    t_start_tx: float
    t_first: float
    t_done: float


class Request:
    """Base class for non-blocking operation handles."""

    def test(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def wait(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class SendRequest(Request):
    """Handle returned by ``isend``.

    The transfer's egress slot is booked at post time (DMA-like); ``wait``
    advances the sender clock to the point where the send buffer is
    reusable, i.e. after egress serialization.
    """

    comm: Any
    done_time: float
    completed: bool = False

    def test(self) -> bool:
        return True  # eager protocol: buffer is always accepted

    def wait(self) -> None:
        if not self.completed:
            self.comm._advance_clock(self.done_time)
            self.completed = True


@dataclass
class RecvRequest(Request):
    """Handle returned by ``irecv``; resolves when a matching message from
    ``(source, tag)`` is consumed."""

    comm: Any
    source: int
    tag: int
    completed: bool = False
    _message: Optional[Message] = field(default=None, repr=False)

    def test(self) -> bool:
        if self.completed:
            return True
        msg = self.comm._try_match(self.source, self.tag)
        if msg is None:
            return False
        self._finish(msg)
        return True

    def wait(self) -> Any:
        if not self.completed:
            msg = self.comm._match_blocking(self.source, self.tag)
            self._finish(msg)
        return self._message.payload

    # internal -----------------------------------------------------------
    def _finish(self, msg: Message) -> None:
        self.comm._deliver(msg)
        self._message = msg
        self.completed = True

    @property
    def message(self) -> Message:
        if not self.completed:
            raise RuntimeError("request not completed")
        return self._message
