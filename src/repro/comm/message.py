"""Message and request objects for the simulated runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(slots=True)
class Message:
    """An in-flight message.

    Timing fields are in simulated seconds.  ``t_start_tx`` and ``t_first``
    are fixed when the sender posts (egress link booked in sender program
    order); ``t_done`` is fixed when the receiver matches (ingress link
    booked in receiver program order), so both links serialize
    deterministically regardless of execution interleaving.

    ``loans`` (cooperative zero-copy mode only) lists the loan-registry keys
    of sender buffers backing this payload; they are released when the
    message is delivered, or when the sender seals the message by waiting
    on it before delivery.
    """

    src: int
    dst: int
    tag: int
    seq: int
    payload: Any
    nwords: int
    t_start_tx: float
    t_first: float
    t_done: Optional[float] = None
    loans: Tuple[int, ...] = ()

    def matches(self, source: int, tag: int) -> bool:
        return self.src == source and self.tag == tag

    @property
    def delivered(self) -> bool:
        return self.t_done is not None


@dataclass
class TraceRecord:
    """One completed transfer, for congestion/ schedule analysis."""

    src: int
    dst: int
    tag: int
    nwords: int
    t_start_tx: float
    t_first: float
    t_done: float


class Request:
    """Base class for non-blocking operation handles."""

    __slots__ = ()

    def test(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def wait(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(slots=True)
class SendRequest(Request):
    """Handle returned by ``isend``.

    The transfer's egress slot is booked at post time (DMA-like); ``wait``
    advances the sender clock to the point where the buffer is reusable,
    i.e. after egress serialization.

    In cooperative zero-copy mode the payload is a read-only view of the
    sender's buffer, which stays on loan (write-locked) while the message is
    in flight.  ``wait`` *seals* a still-undelivered message — snapshots the
    payload and returns the loan — so that, per the MPI contract, the buffer
    is genuinely reusable once ``wait`` returns.  Mutating the buffer
    between ``isend`` and ``wait`` raises instead of corrupting the
    receiver (except through a pre-existing writable alias, which numpy
    cannot detect — see :mod:`repro.comm.communicator`).
    """

    comm: Any
    done_time: float
    completed: bool = False
    _message: Optional[Message] = field(default=None, repr=False)

    def test(self) -> bool:
        # Eager protocol: the buffer is always accepted.  Honour that for a
        # loaned zero-copy payload by sealing it now, so a caller that
        # mutates after a successful test() stays safe.
        msg = self._message
        if msg is not None and msg.loans and not msg.delivered:
            self.comm._seal(msg)
        return True

    def wait(self) -> None:
        if not self.completed:
            self.comm._advance_clock(self.done_time)
            self.completed = True
            msg = self._message
            if msg is not None and msg.loans and not msg.delivered:
                self.comm._seal(msg)


@dataclass(slots=True)
class RecvRequest(Request):
    """Handle returned by ``irecv``; resolves when a matching message from
    ``(source, tag)`` is consumed."""

    comm: Any
    source: int
    tag: int
    completed: bool = False
    _message: Optional[Message] = field(default=None, repr=False)

    def test(self) -> bool:
        if self.completed:
            return True
        msg = self.comm._try_match(self.source, self.tag)
        if msg is None:
            return False
        self._finish(msg)
        return True

    def wait(self) -> Any:
        if not self.completed:
            msg = self.comm._match_blocking(self.source, self.tag)
            self._finish(msg)
        return self._message.payload

    # internal -----------------------------------------------------------
    def _finish(self, msg: Message) -> None:
        self.comm._deliver(msg)
        self._message = msg
        self.completed = True

    @property
    def message(self) -> Message:
        if not self.completed:
            raise RuntimeError("request not completed")
        return self._message
