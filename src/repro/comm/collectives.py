"""Dense collective operations built on simulated point-to-point messages.

These are faithful implementations of the textbook algorithms the paper's
cost model refers to (Chan et al. 2007, Thakur et al. 2005):

* ``bcast`` / ``reduce``: binomial trees, ``(log P) alpha + n beta`` per level.
* ``allreduce_recursive_doubling``: ``(log P)(alpha + n beta)``; non-powers of
  two handled with the standard fold of the ``P - 2^floor(log2 P)`` extras.
* ``allreduce_rabenseifner``: recursive-halving reduce-scatter followed by
  recursive-doubling allgather; ``2 log P alpha + 2 n (P-1)/P beta`` — the
  bandwidth-optimal "Dense" row of Table 1.
* ``allreduce_ring``: bandwidth-optimal for any P, ``2(P-1)`` latency terms.
* ``allgatherv_bruck``: dissemination allgather with variable block sizes,
  ``ceil(log P)`` steps and ``total - own`` receive volume; this is the
  building block of Ok-Topk's final phase.

All functions take the communicator as the first argument and are pure with
respect to their inputs (arrays are never mutated).

Fused fast path
---------------

Under the cooperative engine each collective first tries the **fused**
execution path (:mod:`repro.comm.fused`): the whole collective runs as one
engine-level macro-dispatch — a compiled message schedule booked in a few
vectorized passes plus one stacked-numpy reduction — bit-identical to the
per-message rounds below in results, traffic counters and simulated
makespans.  The per-message implementations in this module remain the
reference path (threaded runner, traced networks, ``P = 1``, non-``add``
ops, or ``REPRO_FUSED=0``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import fused as _fused
# Tag namespace for collectives (defined next to the schedule compiler,
# re-exported here for back-compat); user point-to-point traffic should
# stay below _TAG_BASE so interleaved calls cannot mismatch.
from .fused import (  # noqa: F401  (re-exported names)
    _TAG_BASE,
    TAG_A2A,
    TAG_AG,
    TAG_AGV,
    TAG_ALLREDUCE,
    TAG_BARRIER,
    TAG_BCAST,
    TAG_FOLD,
    TAG_GATHER,
    TAG_REDUCE,
    TAG_RS,
    TAG_SCATTER,
)
from .communicator import SimComm
from .payload import nwords as payload_nwords

_UNFUSED = _fused.UNFUSED


def _is_pow2(p: int) -> bool:
    return p > 0 and (p & (p - 1)) == 0


@lru_cache(maxsize=4096)
def _block_slices(n: int, p: int) -> Tuple[slice, ...]:
    """Contiguous near-equal partition of ``range(n)`` into ``p`` blocks.

    Cached per ``(n, p)``: the ring/allgather collectives recompute the same
    partition on every call of every rank of every iteration, so this sits
    on the per-message hot path.
    """
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    return tuple(slice(int(bounds[i]), int(bounds[i + 1]))
                 for i in range(p))


# ---------------------------------------------------------------------------
# Barrier (dissemination)
# ---------------------------------------------------------------------------
def barrier(comm: SimComm) -> None:
    """Dissemination barrier: ``ceil(log2 P)`` zero-byte rounds."""
    if _fused.fused_barrier(comm) is not _UNFUSED:
        return
    p, r = comm.size, comm.rank
    d = 1
    while d < p:
        comm.send(None, (r + d) % p, TAG_BARRIER)
        comm.recv((r - d) % p, TAG_BARRIER)
        d <<= 1
    # Align clocks: a barrier means nobody proceeds before the last arrival.
    # Each rank's clock already reflects its dependency chain; dissemination
    # provides the transitive synchronisation.


# ---------------------------------------------------------------------------
# Broadcast / Reduce (binomial trees)
# ---------------------------------------------------------------------------
def bcast(comm: SimComm, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the object on every rank."""
    out = _fused.fused_bcast(comm, obj, root)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    vrank = (r - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            obj = comm.recv((r - mask) % p, TAG_BCAST)
            break
        mask <<= 1
    mask >>= 1
    while mask:
        if vrank + mask < p:
            comm.send(obj, (r + mask) % p, TAG_BCAST)
        mask >>= 1
    return obj


def reduce(comm: SimComm, arr: np.ndarray, root: int = 0,
           op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
           ) -> Optional[np.ndarray]:
    """Binomial-tree reduction; the result is returned on ``root`` only."""
    out = _fused.fused_reduce(comm, arr, root, op)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    vrank = (r - root) % p
    acc = np.array(arr, copy=True)
    mask = 1
    while mask < p:
        if vrank & mask:
            comm.send(acc, (r - mask) % p, TAG_REDUCE)
            return None
        src_v = vrank | mask
        if src_v < p:
            got = comm.recv((root + src_v) % p, TAG_REDUCE)
            acc = op(acc, got)
            comm.compute_words(acc.size)
        mask <<= 1
    return acc


# ---------------------------------------------------------------------------
# Allreduce: recursive doubling (any P)
# ---------------------------------------------------------------------------
def _fold_in(comm: SimComm, acc: np.ndarray, op) -> tuple[Optional[int], int]:
    """Non-power-of-two preprocessing: the first 2*rem ranks pair up so a
    power-of-two core remains.  Returns (newrank or None, core size)."""
    p, r = comm.size, comm.rank
    m = 1 << (p.bit_length() - 1)
    if _is_pow2(p):
        return r, p
    rem = p - m
    if r < 2 * rem:
        if r % 2 == 0:
            comm.send(acc, r + 1, TAG_FOLD)
            return None, m
        got = comm.recv(r - 1, TAG_FOLD)
        np.copyto(acc, op(acc, got))
        comm.compute_words(acc.size)
        return r // 2, m
    return r - rem, m


def _fold_real_rank(newrank: int, p: int, m: int) -> int:
    """Inverse of the fold mapping: core rank -> real rank."""
    rem = p - m
    return newrank * 2 + 1 if newrank < rem else newrank + rem


def _fold_out(comm: SimComm, acc: np.ndarray) -> np.ndarray:
    """Send the final result back to the folded-out even ranks."""
    p, r = comm.size, comm.rank
    m = 1 << (p.bit_length() - 1)
    if _is_pow2(p):
        return acc
    rem = p - m
    if r < 2 * rem:
        if r % 2 == 0:
            return comm.recv(r + 1, TAG_FOLD)
        comm.send(acc, r - 1, TAG_FOLD)
    return acc


def allreduce_recursive_doubling(comm: SimComm, arr: np.ndarray,
                                 op=np.add) -> np.ndarray:
    """Recursive-doubling allreduce: ``log P`` exchange rounds of the full
    vector.  Latency-optimal; bandwidth ``(log P) n beta``."""
    out = _fused.fused_allreduce(comm, arr, op, "recursive_doubling")
    if out is not _UNFUSED:
        return out
    p = comm.size
    acc = np.array(arr, copy=True)
    if p == 1:
        return acc
    newrank, m = _fold_in(comm, acc, op)
    if newrank is not None:
        d = 1
        while d < m:
            partner_new = newrank ^ d
            partner = _fold_real_rank(partner_new, p, m)
            got = comm.sendrecv(acc, partner, partner, TAG_ALLREDUCE)
            acc = op(acc, got)
            comm.compute_words(acc.size)
            d <<= 1
    return _fold_out(comm, acc)


# ---------------------------------------------------------------------------
# Allreduce: Rabenseifner (reduce-scatter halving + allgather doubling)
# ---------------------------------------------------------------------------
def _rabenseifner_core(comm: SimComm, acc: np.ndarray, newrank: int, m: int,
                       op) -> np.ndarray:
    """Rabenseifner on the power-of-two core of size ``m``."""
    p = comm.size
    n = acc.size
    lo, hi = 0, n
    # --- recursive halving reduce-scatter -----------------------------
    d = m >> 1
    work = acc  # view bookkeeping done with explicit (lo, hi)
    while d >= 1:
        partner_new = newrank ^ d
        partner = _fold_real_rank(partner_new, p, m)
        mid = lo + (hi - lo) // 2
        if newrank < partner_new:
            send_slice, keep = (slice(mid, hi), (lo, mid))
        else:
            send_slice, keep = (slice(lo, mid), (mid, hi))
        got = comm.sendrecv(work[send_slice], partner, partner, TAG_RS)
        lo, hi = keep
        kept = work[lo:hi]
        np.copyto(kept, op(kept, got))
        comm.compute_words(hi - lo)
        d >>= 1
    # --- recursive doubling allgather ----------------------------------
    d = 1
    while d < m:
        partner_new = newrank ^ d
        partner = _fold_real_rank(partner_new, p, m)
        got = comm.sendrecv(work[lo:hi], partner, partner, TAG_AG)
        if newrank & d:  # partner's range precedes ours
            work[lo - got.size:lo] = got
            lo -= got.size
        else:
            work[hi:hi + got.size] = got
            hi += got.size
        d <<= 1
    assert lo == 0 and hi == n, "allgather phase must restore the full vector"
    return work


def allreduce_rabenseifner(comm: SimComm, arr: np.ndarray,
                           op=np.add) -> np.ndarray:
    """Rabenseifner's allreduce: bandwidth-optimal ``2 n (P-1)/P beta`` with
    ``2 log P`` latency terms.  This is the "Dense" row of Table 1."""
    out = _fused.fused_allreduce(comm, arr, op, "rabenseifner")
    if out is not _UNFUSED:
        return out
    p = comm.size
    acc = np.array(arr, copy=True)
    if p == 1:
        return acc
    newrank, m = _fold_in(comm, acc, op)
    if newrank is not None:
        acc = _rabenseifner_core(comm, acc, newrank, m, op)
    return _fold_out(comm, acc)


# ---------------------------------------------------------------------------
# Allreduce: ring (any P, bandwidth optimal)
# ---------------------------------------------------------------------------
def reduce_scatter_ring(comm: SimComm, arr: np.ndarray,
                        op=np.add) -> tuple[np.ndarray, slice]:
    """Ring reduce-scatter on near-equal contiguous blocks.

    Returns ``(reduced_block, block_slice)`` where ``block_slice`` is rank
    ``i``'s block ``i`` of the input.
    """
    out = _fused.fused_reduce_scatter_ring(comm, arr, op)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    work = np.array(arr, copy=True)
    slices = _block_slices(arr.size, p)
    if p == 1:
        return work, slices[0]
    # Virtual relabeling so rank i finishes owning real block i: virtual
    # block j corresponds to real block (j - 1) mod p.
    real_of = lambda j: (j - 1) % p  # noqa: E731 - tiny local mapping
    right, left = (r + 1) % p, (r - 1) % p
    for s in range(1, p):
        send_v = (r - s + 1) % p
        recv_v = (r - s) % p
        got = comm.sendrecv(work[slices[real_of(send_v)]], right, left, TAG_RS)
        tgt = work[slices[real_of(recv_v)]]
        np.copyto(tgt, op(tgt, got))
        comm.compute_words(tgt.size)
    mine = slices[r]
    return work[mine].copy(), mine


def allgather_ring(comm: SimComm, block: np.ndarray, n: int,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
    """Ring allgather of per-rank contiguous blocks into a length-``n``
    vector partitioned like :func:`_block_slices`."""
    full = _fused.fused_allgather_ring(comm, block, n)
    if full is not _UNFUSED:
        if out is None:
            return full
        out[:] = full
        return out
    p, r = comm.size, comm.rank
    slices = _block_slices(n, p)
    result = np.zeros(n, dtype=block.dtype) if out is None else out
    result[slices[r]] = block
    if p == 1:
        return result
    right, left = (r + 1) % p, (r - 1) % p
    for s in range(p - 1):
        send_b = (r - s) % p
        recv_b = (r - s - 1) % p
        got = comm.sendrecv(result[slices[send_b]], right, left, TAG_AG)
        result[slices[recv_b]] = got
    return result


def allreduce_ring(comm: SimComm, arr: np.ndarray, op=np.add) -> np.ndarray:
    """Ring allreduce: ``2 n (P-1)/P beta`` bandwidth, ``2(P-1) alpha``."""
    block, _ = reduce_scatter_ring(comm, arr, op)
    return allgather_ring(comm, block, arr.size)


_DENSE_ALGOS: Dict[str, Callable[[SimComm, np.ndarray], np.ndarray]] = {}

# Role aliases (see comm/fused.py "Algorithm roles"): the latency-optimal
# schedule and the per-P bandwidth-optimal one.
LATENCY_OPTIMAL = _fused.LATENCY_OPTIMAL
bandwidth_optimal = _fused.bandwidth_optimal
allreduce_crossover_words = _fused.allreduce_crossover_words
select_allreduce_algorithm = _fused.select_allreduce_algorithm


def allreduce(comm: SimComm, arr: np.ndarray, op=np.add,
              algo: str = "auto", *, algorithm: Optional[str] = None,
              ) -> np.ndarray:
    """Dense allreduce dispatch.

    ``algorithm`` (``algo`` is the positional alias) selects the schedule:

    * ``"auto"`` — the static P-based default (the paper's Dense baseline):
      Rabenseifner for powers of two, ring otherwise.
    * ``"adaptive"`` — size-adaptive: the latency-optimal schedule below
      the network's alpha/beta crossover size, the bandwidth-optimal one
      at/above it (:func:`repro.comm.fused.select_allreduce_algorithm`).
    * ``"latency"`` / ``"bandwidth"`` — force the role regardless of size.
    * a concrete name (``"recursive_doubling"``, ``"rabenseifner"``,
      ``"ring"``) — force that exact schedule.

    Every call records (collective, concrete algorithm, selection mode)
    provenance in :attr:`Network.algorithm_log` so sweeps are auditable.
    """
    if algorithm is not None:
        algo = algorithm
    p = comm.size
    if algo == "auto":
        concrete, mode = (
            "rabenseifner" if _is_pow2(p) else "ring"), "auto"
    elif algo == "adaptive":
        concrete = select_allreduce_algorithm(
            p, payload_nwords(arr), comm.net.model)
        mode = "adaptive"
    elif algo == "latency":
        concrete, mode = LATENCY_OPTIMAL, "forced"
    elif algo == "bandwidth":
        concrete, mode = bandwidth_optimal(p), "forced"
    else:
        concrete, mode = algo, "forced"
    table = {
        "rabenseifner": allreduce_rabenseifner,
        "ring": allreduce_ring,
        "recursive_doubling": allreduce_recursive_doubling,
    }
    try:
        fn = table[concrete]
    except KeyError:
        raise ValueError(
            f"unknown dense allreduce algorithm {algo!r}") from None
    if comm.rank == 0:  # once per collective call, not once per rank
        comm.net.note_algorithm("allreduce", concrete, mode,
                                payload_nwords(arr))
    return fn(comm, arr, op)


# ---------------------------------------------------------------------------
# Allgather / allgatherv (Bruck dissemination, any P)
# ---------------------------------------------------------------------------
def allgatherv(comm: SimComm, block: np.ndarray) -> List[np.ndarray]:
    """Variable-size allgather: every rank contributes one array and
    receives the list of all P arrays (ordered by rank).

    Dissemination (Bruck) schedule: ``ceil(log2 P)`` steps; step with
    distance ``d`` ships the ``min(d, P - held)`` blocks held so far.  The
    per-rank receive volume is exactly ``total - own`` words, which on
    balanced data is the paper's ``2k (P-1)/P`` term for Ok-Topk's final
    allgatherv.
    """
    out = _fused.fused_allgatherv(comm, block)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    held: List[np.ndarray] = [block]  # held[j] = block of rank (r + j) % p
    # Each block's wire size is computed once on arrival and carried along;
    # re-sizing the forwarded prefix on every dissemination hop would walk
    # the same payloads O(log P) times.
    sizes: List[int] = [payload_nwords(block)]
    d = 1
    while d < p:
        count = min(d, p - len(held))
        dst = (r - d) % p
        src = (r + d) % p
        got = comm.sendrecv(held[:count], dst, src, TAG_AGV,
                            nwords=sum(sizes[:count]))
        held.extend(got)
        sizes.extend(payload_nwords(b) for b in got)
        d <<= 1
    assert len(held) == p
    # held[j] is rank (r+j)%p's block; reorder to rank order.
    return [held[(i - r) % p] for i in range(p)]


def allgather(comm: SimComm, block: np.ndarray) -> np.ndarray:
    """Equal-size allgather; returns the concatenation over ranks."""
    return np.concatenate(allgatherv(comm, block))


def allgatherv_coo(comm: SimComm, vec: Any) -> List[Any]:
    """Bruck allgatherv of one COO sparse vector per rank.

    The dissemination schedule is payload-agnostic; COO vectors are charged
    ``2 * nnz`` words each (values + indexes), so the measured volume is the
    paper's TopkA row: ``~2k(P-1)`` received per rank."""
    return allgatherv(comm, vec)


def allgather_object(comm: SimComm, obj: Any) -> List[Any]:
    """Allgather of small Python objects (sizes, flags); Bruck schedule."""
    out = _fused.fused_allgather_object(comm, obj)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    held: List[Any] = [obj]
    d = 1
    while d < p:
        count = min(d, p - len(held))
        got = comm.sendrecv(held[:count], (r - d) % p, (r + d) % p, TAG_AGV)
        held.extend(got)
        d <<= 1
    return [held[(i - r) % p] for i in range(p)]


# ---------------------------------------------------------------------------
# Alltoall(v) (pairwise rotation, any P)
# ---------------------------------------------------------------------------
def alltoallv(comm: SimComm, blocks: Sequence[Any]) -> List[Any]:
    """Personalized exchange: ``blocks[j]`` goes to rank ``j``; returns the
    list of blocks received (indexed by source rank)."""
    p, r = comm.size, comm.rank
    if len(blocks) != p:
        raise ValueError(f"alltoallv needs exactly P={p} blocks")
    res = _fused.fused_alltoallv(comm, blocks)
    if res is not _UNFUSED:
        return res
    out: List[Any] = [None] * p
    out[r] = blocks[r]
    for s in range(1, p):
        dst = (r + s) % p
        src = (r - s) % p
        out[src] = comm.sendrecv(blocks[dst], dst, src, TAG_A2A)
    return out


def alltoall(comm: SimComm, blocks: Sequence[Any]) -> List[Any]:
    return alltoallv(comm, blocks)


# ---------------------------------------------------------------------------
# Gather / scatter (linear)
# ---------------------------------------------------------------------------
def gather(comm: SimComm, obj: Any, root: int = 0) -> Optional[List[Any]]:
    out = _fused.fused_gather(comm, obj, root)
    if out is not _UNFUSED:
        return out
    p, r = comm.size, comm.rank
    if r == root:
        out = [None] * p
        out[r] = obj
        for src in comm.peers():
            out[src] = comm.recv(src, TAG_GATHER)
        return out
    comm.send(obj, root, TAG_GATHER)
    return None


def scatter(comm: SimComm, objs: Optional[Sequence[Any]],
            root: int = 0) -> Any:
    p, r = comm.size, comm.rank
    if r == root and (objs is None or len(objs) != p):
        raise ValueError(f"scatter root needs exactly P={p} objects")
    out = _fused.fused_scatter(comm, objs, root)
    if out is not _UNFUSED:
        return out
    if r == root:
        for dst in comm.peers():
            comm.send(objs[dst], dst, TAG_SCATTER)
        return objs[r]
    return comm.recv(root, TAG_SCATTER)
