"""The shared discrete-event network state.

One :class:`Network` is shared by all ranks of an SPMD run.  It owns:

* per-destination mailboxes with (source, tag) matching and per-channel FIFO
  ordering (deterministic regardless of execution interleaving),
* per-rank egress/ingress link availability for the LogGP-style occupancy
  model (see :mod:`repro.comm.model`),
* per-rank traffic counters (words/messages sent and received) used by the
  volume benchmarks and the Table 1 / Theorem 3.1 checks,
* an optional message trace for congestion analysis,
* an abort flag so one failing rank unblocks every other rank.

Execution modes
---------------

The network serves two runners (see :mod:`repro.comm.launcher`):

* **cooperative** (default): a scheduler (:class:`repro.comm.engine.
  CoopEngine`) attaches itself as ``net._sched``.  Exactly one rank executes
  at any time and switches happen only at blocking points, so every network
  operation runs single-threaded: the hot path takes **no locks**, uses no
  condition variables and never polls.  A blocked receive hands control to
  the scheduler, which resumes the rank when a matching message is posted.
  Immutable payloads and the audited ``sendrecv`` path travel zero-copy;
  ``isend`` buffers are write-locked via the loan registry
  (:meth:`take_loan` / :meth:`release_loans`) until the single
  ownership-transfer snapshot at delivery or seal (see
  :mod:`repro.comm.communicator`).
* **threaded** (``runner="threads"`` fallback): one free-running OS thread
  per rank; all state is guarded by ``_lock`` and blocked receivers park on
  per-destination condition variables (with a timeout so an abort is never
  missed).  Payloads are defensively deep-copied at post time.

Simulated time is schedule-independent in both modes: egress links are
booked in sender program order and ingress links in receiver program order,
so clocks, traffic counters and results are identical across runners.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CommError, RankFailedError, SimulatedRankCrash
from .faults import FaultPlan, FaultState
from .message import Message, TraceRecord
from .model import NetworkModel
from .payload import freeze as _freeze


@dataclass
class TrafficStats:
    """Immutable snapshot of per-rank traffic counters."""

    words_sent: np.ndarray
    words_recv: np.ndarray
    msgs_sent: np.ndarray
    msgs_recv: np.ndarray

    @property
    def total_words(self) -> int:
        return int(self.words_sent.sum())

    @property
    def max_words_recv(self) -> int:
        return int(self.words_recv.max())

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        return TrafficStats(
            self.words_sent - other.words_sent,
            self.words_recv - other.words_recv,
            self.msgs_sent - other.msgs_sent,
            self.msgs_recv - other.msgs_recv,
        )


class Network:
    """Shared state of the simulated machine for ``nranks`` ranks."""

    #: polling interval for blocked receivers to notice an abort
    #: (threaded runner only; the cooperative runner never polls)
    _WAIT_TIMEOUT = 0.2

    def __init__(self, nranks: int, model: Optional[NetworkModel] = None, *,
                 trace: bool = False, faults: Optional[FaultPlan] = None,
                 sanitize: bool = False):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.model = model or NetworkModel()
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(nranks)]
        # Per-destination mailboxes, keyed by channel (source, tag): pop is
        # an O(1) dict lookup + popleft, and per-channel FIFO (= sequence
        # order, since posts append in sender program order) is preserved
        # by construction.  Matching is always exact — there is no
        # ANY_SOURCE/ANY_TAG — so no cross-channel ordering is needed.
        self._queues: List[Dict[Tuple[int, int], Deque[Message]]] = [
            {} for _ in range(nranks)]
        # Scalar per-rank state lives in plain Python lists: indexed scalar
        # reads/writes dominate the per-message hot path and are ~10x
        # cheaper on lists than on numpy arrays (no scalar boxing).  All
        # external consumers only index these read-only; aggregate views
        # come from :meth:`stats` / :attr:`makespan`.
        self._seq: List[List[int]] = [[0] * nranks for _ in range(nranks)]
        self.egress_free: List[float] = [0.0] * nranks
        self.ingress_free: List[float] = [0.0] * nranks
        self.clocks: List[float] = [0.0] * nranks
        self.words_sent: List[int] = [0] * nranks
        self.words_recv: List[int] = [0] * nranks
        self.msgs_sent: List[int] = [0] * nranks
        self.msgs_recv: List[int] = [0] * nranks
        self.trace_enabled = trace
        self.trace: List[TraceRecord] = []
        #: collective-algorithm provenance (auditable sweeps): keyed by
        #: ``(collective, concrete_algorithm, selection_mode)`` with
        #: ``{"calls", "words"}`` totals; recorded once per collective call
        #: (rank 0) by the dispatchers in :mod:`repro.comm.collectives`
        self.algorithm_log: Dict[Tuple[str, str, str], Dict[str, int]] = {}
        self._abort_exc: Optional[BaseException] = None
        #: cooperative scheduler, attached by the engine for the duration of
        #: a run; ``None`` means threaded (locked) mode
        self._sched = None
        #: send-buffer loan registry (cooperative zero-copy mode):
        #: id(arr) -> [arr, refcount]; arrays are write-locked while loaned
        self._loans: Dict[int, list] = {}
        #: runtime sanitizer mode (see repro.comm.launcher): loan-window
        #: writability is verified at release, received threads-mode
        #: snapshots are write-locked, and the launcher audits mailboxes
        #: and replays under a perturbed schedule on success
        self.sanitize = bool(sanitize)
        #: human-readable loan-protocol violations collected while
        #: ``sanitize`` is on (raised by the launcher at section end)
        self._sanitize_violations: List[str] = []
        #: compiled fault plan; None keeps every hot path byte-identical to
        #: the fault-free simulator (see repro.comm.faults)
        self.fault_plan = faults
        self.faults: Optional[FaultState] = (
            faults.compile(nranks) if faults is not None else None)
        # --- fail-stop / elastic-recovery bookkeeping -----------------
        #: slot -> SimulatedRankCrash of every declared-dead rank
        self._dead: Dict[int, SimulatedRankCrash] = {}
        #: simulated time by which every declared death is detectable
        self._detect_time = 0.0
        #: survivors currently unwinding with a RankFailedError (they may
        #: still recover by entering shrink); peers blocked on them detect
        self._failstop: set[int] = set()
        #: ranks whose program has returned (or failed) to the launcher
        self._exited: set[int] = set()
        #: survivors parked at the elastic shrink barrier
        self._shrink_parked: set[int] = set()
        self._shrink_epoch = 0
        self._shrink_result: tuple[int, ...] = ()
        self._shrink_cond = threading.Condition(self._lock)

    @property
    def cooperative(self) -> bool:
        """True while a cooperative scheduler drives this network."""
        return self._sched is not None

    # ------------------------------------------------------------------
    # Posting and matching
    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, tag: int, payload: Any,
             nwords_: int, sender_clock: float) -> tuple[Message, float]:
        """Book the egress link, enqueue the message, and return it together
        with the simulated time at which the sender's buffer is free."""
        if not 0 <= dst < self.nranks:
            raise CommError(f"invalid destination rank {dst}")
        if self._sched is not None:  # single-threaded: lock-free
            return self._post_impl(src, dst, tag, payload, nwords_,
                                   sender_clock)
        with self._lock:
            return self._post_impl(src, dst, tag, payload, nwords_,
                                   sender_clock)

    def _post_impl(self, src: int, dst: int, tag: int, payload: Any,
                   nwords_: int, sender_clock: float) -> tuple[Message, float]:
        if self._abort_exc is not None:
            self._check_abort()
        m = self.model
        beta = m.beta
        if self.faults is not None:
            self._crash_check(src)
            if self.faults.link_faulty[src]:
                beta *= self.faults.egress_factor(
                    src, max(self.egress_free[src], sender_clock))
        t_start = self.egress_free[src]
        if sender_clock > t_start:
            t_start = sender_clock
        t_end_tx = t_start + beta * nwords_
        self.egress_free[src] = t_end_tx
        row = self._seq[src]
        msg = Message(src, dst, tag, row[dst], payload, nwords_,
                      t_start, t_start + m.alpha)
        row[dst] += 1
        self.words_sent[src] += nwords_
        self.msgs_sent[src] += 1
        mailbox = self._queues[dst]
        key = (src, tag)
        chan = mailbox.get(key)
        if chan is None:
            chan = mailbox[key] = deque()
        chan.append(msg)
        if self._sched is not None:
            self._sched.on_post(msg)
        else:
            self._conds[dst].notify_all()
        return msg, t_end_tx + m.o_send

    def post_batch(self, src: int, items: List[Tuple[int, int, Any, int]],
                   sender_clock: float) -> Tuple[List[Message], np.ndarray]:
        """Book the egress link for a batch of messages posted back to back.

        ``items`` is a list of ``(dst, tag, payload, nwords)`` tuples in
        program order.  Equivalent — bit-identically, including the
        ``o_inject`` charge between posts — to calling :meth:`post` once
        per message from an ``isend`` loop, but the per-message Python
        overhead (lock round-trips, attribute lookups, scalar link math)
        is paid once per batch: the egress bookings are computed by
        :meth:`NetworkModel.serialize_batch`.

        Returns ``(messages, done_times)`` where ``done_times[i]`` is the
        simulated time at which sender buffer ``i`` is reusable
        (egress serialization + ``o_send``).
        """
        if self._sched is not None:  # single-threaded: lock-free
            return self._post_batch_impl(src, items, sender_clock)
        with self._lock:
            return self._post_batch_impl(src, items, sender_clock)

    def _post_batch_impl(self, src: int, items: List[Tuple[int, int, Any, int]],
                         sender_clock: float,
                         ) -> Tuple[List[Message], np.ndarray]:
        if self._abort_exc is not None:
            self._check_abort()
        m = self.model
        n = len(items)
        nranks = self.nranks
        nwords_arr = np.empty(n, dtype=np.float64)
        for i, it in enumerate(items):
            dst = it[0]
            if not 0 <= dst < nranks:
                raise CommError(f"invalid destination rank {dst}")
            nwords_arr[i] = it[3]
        avail = m.isend_avail(sender_clock, n)
        if self.faults is not None:
            self._crash_check(src)
            if self.faults.link_faulty[src]:
                starts, ends = self._serialize_batch_faulted(
                    self.faults.egress[src], self.egress_free[src], avail,
                    nwords_arr)
            else:
                starts, ends = m.serialize_batch(self.egress_free[src],
                                                 avail, nwords_arr)
        else:
            starts, ends = m.serialize_batch(self.egress_free[src], avail,
                                             nwords_arr)
        self.egress_free[src] = float(ends[-1])
        alpha = m.alpha
        row = self._seq[src]
        queues = self._queues
        sched = self._sched
        msgs: List[Message] = []
        total_words = 0
        starts_l = starts.tolist()
        for i, (dst, tag, payload, nwords_) in enumerate(items):
            t_start = starts_l[i]
            msg = Message(src, dst, tag, row[dst], payload, nwords_,
                          t_start, t_start + alpha)
            row[dst] += 1
            total_words += nwords_
            mailbox = queues[dst]
            key = (src, tag)
            chan = mailbox.get(key)
            if chan is None:
                chan = mailbox[key] = deque()
            chan.append(msg)
            msgs.append(msg)
        self.words_sent[src] += total_words
        self.msgs_sent[src] += n
        if sched is not None:
            sched.on_post_batch(msgs)
        else:
            # repro-lint: ignore[RL001] -- per-dst wakeup order only decides
            # which threads-runner waiter polls first; matching is by
            # sequence number, so simulated state cannot depend on it.
            for dst in {it[0] for it in items}:
                self._conds[dst].notify_all()
        return msgs, ends + m.o_send

    def try_match(self, dst: int, source: int, tag: int) -> Optional[Message]:
        """Pop the earliest-sequence matching message, or return None.

        Under the cooperative runner a miss *yields the token* before
        reporting None, so ``while not req.test(): ...`` polling loops give
        the prospective sender a chance to run instead of livelocking.
        """
        if self._sched is not None:
            return self._sched.try_match(dst, source, tag)
        with self._lock:
            self._check_abort()
            if self.faults is not None:
                self._crash_check(dst)
            msg = self._pop_match(dst, source, tag)
            if msg is None and self._dead and source in self._failed_peers():
                raise self._fail_detect(dst)
            return msg

    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        """Block until a matching message arrives, then pop it.

        Cooperative mode hands control to the scheduler (the rank is resumed
        exactly when a matching message is posted); threaded mode parks on
        the destination's condition variable.
        """
        if self._sched is not None:
            return self._sched.match_blocking(dst, source, tag)
        cond = self._conds[dst]
        with cond:
            while True:
                self._check_abort()
                if self.faults is not None:
                    self._crash_check(dst)
                msg = self._pop_match(dst, source, tag)
                if msg is not None:
                    return msg
                if self._dead and source in self._failed_peers():
                    raise self._fail_detect(dst)
                cond.wait(self._WAIT_TIMEOUT)

    def _pop_match(self, dst: int, source: int,
                   tag: int) -> Optional[Message]:
        chan = self._queues[dst].get((source, tag))
        if chan:
            return chan.popleft()
        return None

    # ------------------------------------------------------------------
    # Delivery: ingress booking, in receiver program order
    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> float:
        """Book the ingress link for a matched message; returns its
        completion time in simulated seconds."""
        if self._sched is not None:
            return self._deliver_impl(msg)
        with self._lock:
            return self._deliver_impl(msg)

    def _deliver_impl(self, msg: Message) -> float:
        dst = msg.dst
        t_done = self.ingress_free[dst]
        if msg.t_first > t_done:
            t_done = msg.t_first
        beta = self.model.beta
        if self.faults is not None and self.faults.link_faulty[dst]:
            beta *= self.faults.ingress_factor(dst, t_done)
        t_done += beta * msg.nwords
        self.ingress_free[dst] = t_done
        msg.t_done = t_done
        self.words_recv[dst] += msg.nwords
        self.msgs_recv[dst] += 1
        if msg.loans:
            # End of the loan: the receiver takes ownership of a private
            # snapshot.  Copying here (instead of at post time) means a
            # message whose sender waited first is copied exactly once at
            # the seal, and the sender may legally reuse its buffer after
            # wait() without ever aliasing what the receiver holds.
            msg.payload = _freeze(msg.payload, readonly=True)
            self.release_loans(msg)
        if self.trace_enabled:
            self.trace.append(TraceRecord(
                msg.src, dst, msg.tag, msg.nwords,
                msg.t_start_tx, msg.t_first, t_done))
        return t_done

    def deliver_batch(self, msgs: List[Message]) -> float:
        """Book the ingress link for a batch of matched messages, in list
        order; returns the completion time of the last one.

        Equivalent — bit-identically — to calling :meth:`deliver` once per
        message, with the per-message Python overhead amortized: the
        ingress bookings come from one :meth:`NetworkModel.serialize_batch`
        scan over the batch (``avail`` = the messages' ``t_first``).  All
        messages must share one destination (one ``waitall`` caller).
        """
        if self._sched is not None:
            return self._deliver_batch_impl(msgs)
        with self._lock:
            return self._deliver_batch_impl(msgs)

    def _deliver_batch_impl(self, msgs: List[Message]) -> float:
        if len(msgs) == 1:
            return self._deliver_impl(msgs[0])
        dst = msgs[0].dst
        if self.faults is not None and self.faults.link_faulty[dst]:
            # Per-message ingress factors: take the exact scalar path.
            t_done = 0.0
            for msg in msgs:
                t_done = self._deliver_impl(msg)
            return t_done
        n = len(msgs)
        nwords_arr = np.empty(n, dtype=np.float64)
        avail = np.empty(n, dtype=np.float64)
        total_words = 0
        for i, msg in enumerate(msgs):
            nwords_arr[i] = msg.nwords
            avail[i] = msg.t_first
            total_words += msg.nwords
        _, ends = self.model.serialize_batch(self.ingress_free[dst], avail,
                                             nwords_arr)
        self.ingress_free[dst] = float(ends[-1])
        self.words_recv[dst] += total_words
        self.msgs_recv[dst] += n
        ends_l = ends.tolist()
        trace = self.trace if self.trace_enabled else None
        for i, msg in enumerate(msgs):
            msg.t_done = ends_l[i]
            if msg.loans:
                msg.payload = _freeze(msg.payload, readonly=True)
                self.release_loans(msg)
            if trace is not None:
                trace.append(TraceRecord(
                    msg.src, dst, msg.tag, msg.nwords,
                    msg.t_start_tx, msg.t_first, msg.t_done))
        return ends_l[-1]

    # ------------------------------------------------------------------
    # Send-buffer loans (cooperative zero-copy mode)
    # ------------------------------------------------------------------
    # A sender's array is "on loan" from isend until the message is
    # delivered (or sealed by an early wait): the array is write-locked so
    # a contract-violating mutation raises instead of corrupting the
    # receiver (mutation through a pre-existing writable alias is the one
    # undetectable exception — numpy flags are per-object).  Loans are
    # refcounted because the same buffer may back several in-flight
    # messages; the engine drains unfinished loans at section end.
    def take_loan(self, arr: np.ndarray) -> int:
        """Write-lock ``arr`` for the duration of a message flight; returns
        the registry key to store on the message."""
        key = id(arr)
        entry = self._loans.get(key)
        if entry is None:
            self._loans[key] = [arr, 1]
            arr.setflags(write=False)
        else:
            entry[1] += 1
        return key

    def release_loans(self, msg: Message) -> None:
        """Return the loaned buffers of ``msg`` to their owner."""
        for key in msg.loans:
            entry = self._loans.get(key)
            if entry is None:  # pragma: no cover - defensive
                continue
            if self.sanitize and entry[0].flags.writeable:
                # take_loan() write-locked this array; finding it writable
                # at release means someone re-enabled writes mid-loan
                # (a setflags bypass of the ownership contract).
                arr = entry[0]
                self._sanitize_violations.append(
                    f"array(shape={arr.shape}, dtype={arr.dtype}) backing "
                    f"message {msg.src}->{msg.dst} tag={msg.tag} "
                    f"seq={msg.seq} was made writable during its loan "
                    f"window")
            entry[1] -= 1
            if entry[1] == 0:
                del self._loans[key]
                entry[0].setflags(write=True)
        msg.loans = ()

    # ------------------------------------------------------------------
    # Abort handling
    # ------------------------------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """Mark the run as failed; wakes all blocked receivers."""
        with self._lock:
            if self._abort_exc is None:
                self._abort_exc = exc
            for cond in self._conds:
                cond.notify_all()
            self._shrink_cond.notify_all()

    def _check_abort(self) -> None:
        if self._abort_exc is not None:
            raise CommError(
                f"SPMD run aborted by a peer rank: {self._abort_exc!r}")

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    # ------------------------------------------------------------------
    # Fail-stop faults and elastic shrink (see repro.comm.faults)
    # ------------------------------------------------------------------
    # A planned crash raises SimulatedRankCrash in the dying rank at a
    # deterministic program point and *declares* the death on the shared
    # state.  Survivors detect it only at blocking points — a receive
    # whose source can never answer raises RankFailedError with the
    # rank's clock charged to ``death_time + detect_timeout`` — so the
    # detection program point and clock are identical across runners.
    # Survivors that catch the error may re-join through :meth:`shrink`
    # (a barrier over the remaining ranks, ULFM ``MPI_Comm_shrink``
    # style); everyone else unwinds to the launcher.

    @property
    def revoked(self) -> bool:
        """True once any rank has been declared dead."""
        return bool(self._dead)

    @property
    def dead_ranks(self) -> tuple:
        return tuple(sorted(self._dead))

    def revoke(self, rank: int, time: Optional[float] = None) -> None:
        """Externally declare ``rank`` dead (the ULFM ``comm_revoke``
        analog; fault plans use the same path internally).  The revoked
        rank is not interrupted — tests pair this with a program that
        returns right after revoking itself."""
        t = self.clocks[rank] if time is None else float(time)
        exc = SimulatedRankCrash(rank, t)
        if self._sched is not None:
            self._declare_dead(rank, exc)
        else:
            with self._lock:
                self._declare_dead(rank, exc)

    def _crash_check(self, rank: int) -> None:
        """Die if ``rank``'s clock has reached its planned crash time
        (callers gate on ``self.faults is not None``)."""
        # repro-lint: ignore[RL003] -- contract documented above: every
        # caller gates on `self.faults is not None` before dispatching here.
        if self.clocks[rank] >= self.faults.crash_time[rank]:
            raise self._crash_now(rank)

    def _crash_now(self, rank: int) -> SimulatedRankCrash:
        exc = SimulatedRankCrash(rank, self.clocks[rank])
        self._declare_dead(rank, exc)
        return exc

    def _crash_outside_lock(self, rank: int) -> SimulatedRankCrash:
        """Like :meth:`_crash_now`, for callers that do *not* hold the
        network lock (``SimComm.compute``/``maybe_crash`` run outside
        it under the threaded runner)."""
        if self._sched is None:
            with self._lock:
                return self._crash_now(rank)
        return self._crash_now(rank)

    def _declare_dead(self, rank: int, exc: SimulatedRankCrash) -> None:
        """Record a death; threads-mode callers hold (or are given) the
        lock, cooperative mode is single-threaded."""
        if rank in self._dead:
            return
        self._dead[rank] = exc
        timeout = self.faults.detect_timeout if self.faults is not None \
            else 0.0
        deadline = exc.time + timeout
        if deadline > self._detect_time:
            self._detect_time = deadline
        if self._sched is None:
            for cond in self._conds:
                cond.notify_all()
            self._shrink_cond.notify_all()

    def _failed_peers(self) -> set:
        """Ranks that will never post again: dead, unwinding with a
        detection error, exited, or parked at the shrink barrier."""
        return set(self._dead) | self._failstop | self._exited \
            | self._shrink_parked

    def _fail_detect(self, rank: int) -> RankFailedError:
        """Charge ``rank``'s detection latency, mark it fail-stopped (so
        peers blocked on *it* detect transitively) and build the error."""
        if self._detect_time > self.clocks[rank]:
            self.clocks[rank] = self._detect_time
        self._failstop.add(rank)
        if self._sched is None:
            for cond in self._conds:
                cond.notify_all()
            self._shrink_cond.notify_all()
        return RankFailedError(dict(self._dead))

    def _begin_section(self) -> None:
        """Reset per-section failure bookkeeping (a network may be reused
        across SPMD sections; declared deaths are permanent, the
        exited/fail-stopped sets are not)."""
        self._exited.clear()
        self._failstop.clear()
        self._shrink_parked.clear()

    def _on_rank_exit(self, rank: int) -> None:
        """A rank's program returned (or failed) to the launcher: it will
        never post again, and shrink barriers must stop counting it."""
        if self._sched is not None:
            self._exited.add(rank)
            return
        with self._lock:
            self._exited.add(rank)
            if self._dead:
                for cond in self._conds:
                    cond.notify_all()
            self._maybe_finish_shrink()
            self._shrink_cond.notify_all()

    def shrink(self, rank: int) -> tuple:
        """Elastic shrink barrier: park until every remaining live rank
        has joined, then return the sorted tuple of surviving slots.

        The completing arrival flushes all mailboxes (in-flight traffic
        of the interrupted iteration, including anything a rank posted
        before dying), releases their send-buffer loans, and synchronizes
        the group's clocks to ``max(group clocks, detection deadline)``
        — all deterministic, so the resumed world is bit-identical
        across runners.
        """
        if self._sched is not None:
            return self._sched.shrink(rank)
        with self._lock:
            epoch = self._shrink_epoch
            self._failstop.discard(rank)
            self._shrink_parked.add(rank)
            for cond in self._conds:
                cond.notify_all()
            if not self._maybe_finish_shrink():
                while self._shrink_epoch == epoch:
                    self._check_abort()
                    self._shrink_cond.wait(self._WAIT_TIMEOUT)
                    if self._shrink_epoch != epoch:
                        break
                    self._maybe_finish_shrink()
            return self._shrink_result

    def _maybe_finish_shrink(self) -> bool:
        parked = self._shrink_parked
        if not parked:
            return False
        gone = set(self._dead) | self._exited
        if len(parked) < self.nranks - len(gone):
            return False
        self._finish_shrink()
        return True

    def _finish_shrink(self) -> None:
        group = tuple(sorted(self._shrink_parked))
        self._flush_mailboxes()
        t_sync = self._detect_time
        for r in group:
            if self.clocks[r] > t_sync:
                t_sync = self.clocks[r]
        for r in group:
            self.clocks[r] = t_sync
        self._failstop.difference_update(group)
        self._shrink_parked.clear()
        self._shrink_result = group
        self._shrink_epoch += 1
        if self._sched is None:
            self._shrink_cond.notify_all()

    def _flush_mailboxes(self) -> None:
        """Drop every undelivered message (the interrupted iteration's
        traffic), returning any send-buffer loans."""
        for mailbox in self._queues:
            for chan in mailbox.values():
                for msg in chan:
                    if msg.loans:
                        self.release_loans(msg)
                chan.clear()

    def undelivered_messages(self) -> List[dict]:
        """Snapshot of every message still sitting in a mailbox, as dicts
        with keys ``src``/``dst``/``tag``/``seq``/``nwords`` in
        deterministic (dst, src, tag, seq) order.  The sanitizer's
        end-of-section audit turns a non-empty answer into a
        :class:`repro.errors.MailboxLeakError`."""
        out: List[dict] = []
        for dst, mailbox in enumerate(self._queues):
            for (src, tag) in sorted(mailbox):
                for msg in mailbox[(src, tag)]:
                    out.append({"src": src, "dst": dst, "tag": tag,
                                "seq": msg.seq, "nwords": msg.nwords})
        return out

    def _serialize_batch_faulted(self, windows: list, free: float,
                                 avail: np.ndarray, nwords: np.ndarray,
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar egress fold with the per-message slowdown factor
        evaluated at each booking start — the faulted counterpart of
        :meth:`NetworkModel.serialize_batch` (plain-float fold, so a
        factor-1.0 window set reproduces the unfaulted times exactly)."""
        beta = self.model.beta
        n = len(nwords)
        starts = np.empty(n)
        ends = np.empty(n)
        end = free
        al = np.asarray(avail, dtype=np.float64).tolist()
        nl = np.asarray(nwords, dtype=np.float64).tolist()
        for i in range(n):
            a = al[i]
            start = end if end > a else a
            fac = 1.0
            for t0, t1, f in windows:
                if t0 <= start < t1:
                    fac *= f
            end = start + beta * fac * nl[i]
            starts[i] = start
            ends[i] = end
        return starts, ends

    # ------------------------------------------------------------------
    # Diagnostic save/restore (used by xi measurement so that the extra
    # gather traffic does not perturb timing or volume statistics)
    # ------------------------------------------------------------------
    def save_state(self) -> dict:
        """Snapshot clocks, link occupancy and counters (NOT mailboxes or
        sequence numbers).  Must be taken when no messages are in flight."""
        with self._lock:
            return {
                "clocks": list(self.clocks),
                "egress": list(self.egress_free),
                "ingress": list(self.ingress_free),
                "words_sent": list(self.words_sent),
                "words_recv": list(self.words_recv),
                "msgs_sent": list(self.msgs_sent),
                "msgs_recv": list(self.msgs_recv),
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.clocks[:] = state["clocks"]
            self.egress_free[:] = state["egress"]
            self.ingress_free[:] = state["ingress"]
            self.words_sent[:] = state["words_sent"]
            self.words_recv[:] = state["words_recv"]
            self.msgs_sent[:] = state["msgs_sent"]
            self.msgs_recv[:] = state["msgs_recv"]

    def save_rank_state(self, rank: int) -> tuple:
        """Snapshot ``rank``'s own clock, link occupancy and counters.

        Every one of these entries is mutated only by rank ``rank``'s own
        program actions (posts touch sender entries, deliveries receiver
        entries), so a rank may checkpoint/roll back its *own* slice at its
        own program points with no global quiesce: this is what lets
        :func:`repro.train.xi.measure_xi` roll back a diagnostic collective
        completely — each rank restores after its last receive, and no
        later delivery by a peer can touch the restored entries.
        """
        return (self.clocks[rank], self.egress_free[rank],
                self.ingress_free[rank], self.words_sent[rank],
                self.words_recv[rank], self.msgs_sent[rank],
                self.msgs_recv[rank])

    def restore_rank_state(self, rank: int, state: tuple) -> None:
        """Roll back the entries captured by :meth:`save_rank_state`."""
        (self.clocks[rank], self.egress_free[rank],
         self.ingress_free[rank], self.words_sent[rank],
         self.words_recv[rank], self.msgs_sent[rank],
         self.msgs_recv[rank]) = state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> TrafficStats:
        with self._lock:
            return TrafficStats(
                np.array(self.words_sent, dtype=np.int64),
                np.array(self.words_recv, dtype=np.int64),
                np.array(self.msgs_sent, dtype=np.int64),
                np.array(self.msgs_recv, dtype=np.int64))

    def reset_stats(self) -> None:
        with self._lock:
            n = self.nranks
            self.words_sent[:] = [0] * n
            self.words_recv[:] = [0] * n
            self.msgs_sent[:] = [0] * n
            self.msgs_recv[:] = [0] * n
            self.trace.clear()
            self.algorithm_log.clear()

    def note_algorithm(self, collective: str, algorithm: str, mode: str,
                       nwords_: int) -> None:
        """Record one collective call's (algorithm, selection-mode)
        provenance; callers invoke this from exactly one rank per call."""
        key = (collective, algorithm, mode)
        if self._sched is not None:  # single-threaded: lock-free
            entry = self.algorithm_log.get(key)
            if entry is None:
                self.algorithm_log[key] = {"calls": 1, "words": nwords_}
            else:
                entry["calls"] += 1
                entry["words"] += nwords_
            return
        with self._lock:
            entry = self.algorithm_log.get(key)
            if entry is None:
                self.algorithm_log[key] = {"calls": 1, "words": nwords_}
            else:
                entry["calls"] += 1
                entry["words"] += nwords_

    def algorithm_provenance(self) -> Dict[str, Dict[str, int]]:
        """JSON-able snapshot of :attr:`algorithm_log`:
        ``"collective/algorithm/mode" -> {"calls", "words"}``."""
        return {"/".join(key): dict(val)
                for key, val in sorted(self.algorithm_log.items())}

    @property
    def makespan(self) -> float:
        """Latest simulated clock across ranks."""
        return max(self.clocks)
