"""The shared discrete-event network state.

One :class:`Network` is shared by all ranks of an SPMD run.  It owns:

* per-destination mailboxes with (source, tag) matching and per-channel FIFO
  ordering (deterministic regardless of execution interleaving),
* per-rank egress/ingress link availability for the LogGP-style occupancy
  model (see :mod:`repro.comm.model`),
* per-rank traffic counters (words/messages sent and received) used by the
  volume benchmarks and the Table 1 / Theorem 3.1 checks,
* an optional message trace for congestion analysis,
* an abort flag so one failing rank unblocks every other rank.

Execution modes
---------------

The network serves two runners (see :mod:`repro.comm.launcher`):

* **cooperative** (default): a scheduler (:class:`repro.comm.engine.
  CoopEngine`) attaches itself as ``net._sched``.  Exactly one rank executes
  at any time and switches happen only at blocking points, so every network
  operation runs single-threaded: the hot path takes **no locks**, uses no
  condition variables and never polls.  A blocked receive hands control to
  the scheduler, which resumes the rank when a matching message is posted.
  Immutable payloads and the audited ``sendrecv`` path travel zero-copy;
  ``isend`` buffers are write-locked via the loan registry
  (:meth:`take_loan` / :meth:`release_loans`) until the single
  ownership-transfer snapshot at delivery or seal (see
  :mod:`repro.comm.communicator`).
* **threaded** (``runner="threads"`` fallback): one free-running OS thread
  per rank; all state is guarded by ``_lock`` and blocked receivers park on
  per-destination condition variables (with a timeout so an abort is never
  missed).  Payloads are defensively deep-copied at post time.

Simulated time is schedule-independent in both modes: egress links are
booked in sender program order and ingress links in receiver program order,
so clocks, traffic counters and results are identical across runners.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CommError
from .message import Message, TraceRecord
from .model import NetworkModel
from .payload import freeze as _freeze


@dataclass
class TrafficStats:
    """Immutable snapshot of per-rank traffic counters."""

    words_sent: np.ndarray
    words_recv: np.ndarray
    msgs_sent: np.ndarray
    msgs_recv: np.ndarray

    @property
    def total_words(self) -> int:
        return int(self.words_sent.sum())

    @property
    def max_words_recv(self) -> int:
        return int(self.words_recv.max())

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        return TrafficStats(
            self.words_sent - other.words_sent,
            self.words_recv - other.words_recv,
            self.msgs_sent - other.msgs_sent,
            self.msgs_recv - other.msgs_recv,
        )


class Network:
    """Shared state of the simulated machine for ``nranks`` ranks."""

    #: polling interval for blocked receivers to notice an abort
    #: (threaded runner only; the cooperative runner never polls)
    _WAIT_TIMEOUT = 0.2

    def __init__(self, nranks: int, model: Optional[NetworkModel] = None, *,
                 trace: bool = False):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.model = model or NetworkModel()
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(nranks)]
        # Per-destination mailboxes, keyed by channel (source, tag): pop is
        # an O(1) dict lookup + popleft, and per-channel FIFO (= sequence
        # order, since posts append in sender program order) is preserved
        # by construction.  Matching is always exact — there is no
        # ANY_SOURCE/ANY_TAG — so no cross-channel ordering is needed.
        self._queues: List[Dict[Tuple[int, int], Deque[Message]]] = [
            {} for _ in range(nranks)]
        # Scalar per-rank state lives in plain Python lists: indexed scalar
        # reads/writes dominate the per-message hot path and are ~10x
        # cheaper on lists than on numpy arrays (no scalar boxing).  All
        # external consumers only index these read-only; aggregate views
        # come from :meth:`stats` / :attr:`makespan`.
        self._seq: List[List[int]] = [[0] * nranks for _ in range(nranks)]
        self.egress_free: List[float] = [0.0] * nranks
        self.ingress_free: List[float] = [0.0] * nranks
        self.clocks: List[float] = [0.0] * nranks
        self.words_sent: List[int] = [0] * nranks
        self.words_recv: List[int] = [0] * nranks
        self.msgs_sent: List[int] = [0] * nranks
        self.msgs_recv: List[int] = [0] * nranks
        self.trace_enabled = trace
        self.trace: List[TraceRecord] = []
        self._abort_exc: Optional[BaseException] = None
        #: cooperative scheduler, attached by the engine for the duration of
        #: a run; ``None`` means threaded (locked) mode
        self._sched = None
        #: send-buffer loan registry (cooperative zero-copy mode):
        #: id(arr) -> [arr, refcount]; arrays are write-locked while loaned
        self._loans: Dict[int, list] = {}

    @property
    def cooperative(self) -> bool:
        """True while a cooperative scheduler drives this network."""
        return self._sched is not None

    # ------------------------------------------------------------------
    # Posting and matching
    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, tag: int, payload: Any,
             nwords_: int, sender_clock: float) -> tuple[Message, float]:
        """Book the egress link, enqueue the message, and return it together
        with the simulated time at which the sender's buffer is free."""
        if not 0 <= dst < self.nranks:
            raise CommError(f"invalid destination rank {dst}")
        if self._sched is not None:  # single-threaded: lock-free
            return self._post_impl(src, dst, tag, payload, nwords_,
                                   sender_clock)
        with self._lock:
            return self._post_impl(src, dst, tag, payload, nwords_,
                                   sender_clock)

    def _post_impl(self, src: int, dst: int, tag: int, payload: Any,
                   nwords_: int, sender_clock: float) -> tuple[Message, float]:
        if self._abort_exc is not None:
            self._check_abort()
        m = self.model
        t_start = self.egress_free[src]
        if sender_clock > t_start:
            t_start = sender_clock
        t_end_tx = t_start + m.beta * nwords_
        self.egress_free[src] = t_end_tx
        row = self._seq[src]
        msg = Message(src, dst, tag, row[dst], payload, nwords_,
                      t_start, t_start + m.alpha)
        row[dst] += 1
        self.words_sent[src] += nwords_
        self.msgs_sent[src] += 1
        mailbox = self._queues[dst]
        key = (src, tag)
        chan = mailbox.get(key)
        if chan is None:
            chan = mailbox[key] = deque()
        chan.append(msg)
        if self._sched is not None:
            self._sched.on_post(msg)
        else:
            self._conds[dst].notify_all()
        return msg, t_end_tx + m.o_send

    def post_batch(self, src: int, items: List[Tuple[int, int, Any, int]],
                   sender_clock: float) -> Tuple[List[Message], np.ndarray]:
        """Book the egress link for a batch of messages posted back to back.

        ``items`` is a list of ``(dst, tag, payload, nwords)`` tuples in
        program order.  Equivalent — bit-identically, including the
        ``o_inject`` charge between posts — to calling :meth:`post` once
        per message from an ``isend`` loop, but the per-message Python
        overhead (lock round-trips, attribute lookups, scalar link math)
        is paid once per batch: the egress bookings are computed by
        :meth:`NetworkModel.serialize_batch`.

        Returns ``(messages, done_times)`` where ``done_times[i]`` is the
        simulated time at which sender buffer ``i`` is reusable
        (egress serialization + ``o_send``).
        """
        if self._sched is not None:  # single-threaded: lock-free
            return self._post_batch_impl(src, items, sender_clock)
        with self._lock:
            return self._post_batch_impl(src, items, sender_clock)

    def _post_batch_impl(self, src: int, items: List[Tuple[int, int, Any, int]],
                         sender_clock: float,
                         ) -> Tuple[List[Message], np.ndarray]:
        if self._abort_exc is not None:
            self._check_abort()
        m = self.model
        n = len(items)
        nranks = self.nranks
        nwords_arr = np.empty(n, dtype=np.float64)
        for i, it in enumerate(items):
            dst = it[0]
            if not 0 <= dst < nranks:
                raise CommError(f"invalid destination rank {dst}")
            nwords_arr[i] = it[3]
        avail = m.isend_avail(sender_clock, n)
        starts, ends = m.serialize_batch(self.egress_free[src], avail,
                                         nwords_arr)
        self.egress_free[src] = float(ends[-1])
        alpha = m.alpha
        row = self._seq[src]
        queues = self._queues
        sched = self._sched
        msgs: List[Message] = []
        total_words = 0
        starts_l = starts.tolist()
        for i, (dst, tag, payload, nwords_) in enumerate(items):
            t_start = starts_l[i]
            msg = Message(src, dst, tag, row[dst], payload, nwords_,
                          t_start, t_start + alpha)
            row[dst] += 1
            total_words += nwords_
            mailbox = queues[dst]
            key = (src, tag)
            chan = mailbox.get(key)
            if chan is None:
                chan = mailbox[key] = deque()
            chan.append(msg)
            msgs.append(msg)
        self.words_sent[src] += total_words
        self.msgs_sent[src] += n
        if sched is not None:
            sched.on_post_batch(msgs)
        else:
            for dst in {it[0] for it in items}:
                self._conds[dst].notify_all()
        return msgs, ends + m.o_send

    def try_match(self, dst: int, source: int, tag: int) -> Optional[Message]:
        """Pop the earliest-sequence matching message, or return None.

        Under the cooperative runner a miss *yields the token* before
        reporting None, so ``while not req.test(): ...`` polling loops give
        the prospective sender a chance to run instead of livelocking.
        """
        if self._sched is not None:
            return self._sched.try_match(dst, source, tag)
        with self._lock:
            self._check_abort()
            return self._pop_match(dst, source, tag)

    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        """Block until a matching message arrives, then pop it.

        Cooperative mode hands control to the scheduler (the rank is resumed
        exactly when a matching message is posted); threaded mode parks on
        the destination's condition variable.
        """
        if self._sched is not None:
            return self._sched.match_blocking(dst, source, tag)
        cond = self._conds[dst]
        with cond:
            while True:
                self._check_abort()
                msg = self._pop_match(dst, source, tag)
                if msg is not None:
                    return msg
                cond.wait(self._WAIT_TIMEOUT)

    def _pop_match(self, dst: int, source: int,
                   tag: int) -> Optional[Message]:
        chan = self._queues[dst].get((source, tag))
        if chan:
            return chan.popleft()
        return None

    # ------------------------------------------------------------------
    # Delivery: ingress booking, in receiver program order
    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> float:
        """Book the ingress link for a matched message; returns its
        completion time in simulated seconds."""
        if self._sched is not None:
            return self._deliver_impl(msg)
        with self._lock:
            return self._deliver_impl(msg)

    def _deliver_impl(self, msg: Message) -> float:
        dst = msg.dst
        t_done = self.ingress_free[dst]
        if msg.t_first > t_done:
            t_done = msg.t_first
        t_done += self.model.beta * msg.nwords
        self.ingress_free[dst] = t_done
        msg.t_done = t_done
        self.words_recv[dst] += msg.nwords
        self.msgs_recv[dst] += 1
        if msg.loans:
            # End of the loan: the receiver takes ownership of a private
            # snapshot.  Copying here (instead of at post time) means a
            # message whose sender waited first is copied exactly once at
            # the seal, and the sender may legally reuse its buffer after
            # wait() without ever aliasing what the receiver holds.
            msg.payload = _freeze(msg.payload, readonly=True)
            self.release_loans(msg)
        if self.trace_enabled:
            self.trace.append(TraceRecord(
                msg.src, dst, msg.tag, msg.nwords,
                msg.t_start_tx, msg.t_first, t_done))
        return t_done

    def deliver_batch(self, msgs: List[Message]) -> float:
        """Book the ingress link for a batch of matched messages, in list
        order; returns the completion time of the last one.

        Equivalent — bit-identically — to calling :meth:`deliver` once per
        message, with the per-message Python overhead amortized: the
        ingress bookings come from one :meth:`NetworkModel.serialize_batch`
        scan over the batch (``avail`` = the messages' ``t_first``).  All
        messages must share one destination (one ``waitall`` caller).
        """
        if self._sched is not None:
            return self._deliver_batch_impl(msgs)
        with self._lock:
            return self._deliver_batch_impl(msgs)

    def _deliver_batch_impl(self, msgs: List[Message]) -> float:
        if len(msgs) == 1:
            return self._deliver_impl(msgs[0])
        dst = msgs[0].dst
        n = len(msgs)
        nwords_arr = np.empty(n, dtype=np.float64)
        avail = np.empty(n, dtype=np.float64)
        total_words = 0
        for i, msg in enumerate(msgs):
            nwords_arr[i] = msg.nwords
            avail[i] = msg.t_first
            total_words += msg.nwords
        _, ends = self.model.serialize_batch(self.ingress_free[dst], avail,
                                             nwords_arr)
        self.ingress_free[dst] = float(ends[-1])
        self.words_recv[dst] += total_words
        self.msgs_recv[dst] += n
        ends_l = ends.tolist()
        trace = self.trace if self.trace_enabled else None
        for i, msg in enumerate(msgs):
            msg.t_done = ends_l[i]
            if msg.loans:
                msg.payload = _freeze(msg.payload, readonly=True)
                self.release_loans(msg)
            if trace is not None:
                trace.append(TraceRecord(
                    msg.src, dst, msg.tag, msg.nwords,
                    msg.t_start_tx, msg.t_first, msg.t_done))
        return ends_l[-1]

    # ------------------------------------------------------------------
    # Send-buffer loans (cooperative zero-copy mode)
    # ------------------------------------------------------------------
    # A sender's array is "on loan" from isend until the message is
    # delivered (or sealed by an early wait): the array is write-locked so
    # a contract-violating mutation raises instead of corrupting the
    # receiver (mutation through a pre-existing writable alias is the one
    # undetectable exception — numpy flags are per-object).  Loans are
    # refcounted because the same buffer may back several in-flight
    # messages; the engine drains unfinished loans at section end.
    def take_loan(self, arr: np.ndarray) -> int:
        """Write-lock ``arr`` for the duration of a message flight; returns
        the registry key to store on the message."""
        key = id(arr)
        entry = self._loans.get(key)
        if entry is None:
            self._loans[key] = [arr, 1]
            arr.setflags(write=False)
        else:
            entry[1] += 1
        return key

    def release_loans(self, msg: Message) -> None:
        """Return the loaned buffers of ``msg`` to their owner."""
        for key in msg.loans:
            entry = self._loans.get(key)
            if entry is None:  # pragma: no cover - defensive
                continue
            entry[1] -= 1
            if entry[1] == 0:
                del self._loans[key]
                entry[0].setflags(write=True)
        msg.loans = ()

    # ------------------------------------------------------------------
    # Abort handling
    # ------------------------------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """Mark the run as failed; wakes all blocked receivers."""
        with self._lock:
            if self._abort_exc is None:
                self._abort_exc = exc
            for cond in self._conds:
                cond.notify_all()

    def _check_abort(self) -> None:
        if self._abort_exc is not None:
            raise CommError(
                f"SPMD run aborted by a peer rank: {self._abort_exc!r}")

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    # ------------------------------------------------------------------
    # Diagnostic save/restore (used by xi measurement so that the extra
    # gather traffic does not perturb timing or volume statistics)
    # ------------------------------------------------------------------
    def save_state(self) -> dict:
        """Snapshot clocks, link occupancy and counters (NOT mailboxes or
        sequence numbers).  Must be taken when no messages are in flight."""
        with self._lock:
            return {
                "clocks": list(self.clocks),
                "egress": list(self.egress_free),
                "ingress": list(self.ingress_free),
                "words_sent": list(self.words_sent),
                "words_recv": list(self.words_recv),
                "msgs_sent": list(self.msgs_sent),
                "msgs_recv": list(self.msgs_recv),
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.clocks[:] = state["clocks"]
            self.egress_free[:] = state["egress"]
            self.ingress_free[:] = state["ingress"]
            self.words_sent[:] = state["words_sent"]
            self.words_recv[:] = state["words_recv"]
            self.msgs_sent[:] = state["msgs_sent"]
            self.msgs_recv[:] = state["msgs_recv"]

    def save_rank_state(self, rank: int) -> tuple:
        """Snapshot ``rank``'s own clock, link occupancy and counters.

        Every one of these entries is mutated only by rank ``rank``'s own
        program actions (posts touch sender entries, deliveries receiver
        entries), so a rank may checkpoint/roll back its *own* slice at its
        own program points with no global quiesce: this is what lets
        :func:`repro.train.xi.measure_xi` roll back a diagnostic collective
        completely — each rank restores after its last receive, and no
        later delivery by a peer can touch the restored entries.
        """
        return (self.clocks[rank], self.egress_free[rank],
                self.ingress_free[rank], self.words_sent[rank],
                self.words_recv[rank], self.msgs_sent[rank],
                self.msgs_recv[rank])

    def restore_rank_state(self, rank: int, state: tuple) -> None:
        """Roll back the entries captured by :meth:`save_rank_state`."""
        (self.clocks[rank], self.egress_free[rank],
         self.ingress_free[rank], self.words_sent[rank],
         self.words_recv[rank], self.msgs_sent[rank],
         self.msgs_recv[rank]) = state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> TrafficStats:
        with self._lock:
            return TrafficStats(
                np.array(self.words_sent, dtype=np.int64),
                np.array(self.words_recv, dtype=np.int64),
                np.array(self.msgs_sent, dtype=np.int64),
                np.array(self.msgs_recv, dtype=np.int64))

    def reset_stats(self) -> None:
        with self._lock:
            n = self.nranks
            self.words_sent[:] = [0] * n
            self.words_recv[:] = [0] * n
            self.msgs_sent[:] = [0] * n
            self.msgs_recv[:] = [0] * n
            self.trace.clear()

    @property
    def makespan(self) -> float:
        """Latest simulated clock across ranks."""
        return max(self.clocks)
