"""The shared discrete-event network state.

One :class:`Network` is shared by all ranks of an SPMD run.  It owns:

* per-destination mailboxes with (source, tag) matching and per-channel FIFO
  ordering (deterministic regardless of thread scheduling),
* per-rank egress/ingress link availability for the LogGP-style occupancy
  model (see :mod:`repro.comm.model`),
* per-rank traffic counters (words/messages sent and received) used by the
  volume benchmarks and the Table 1 / Theorem 3.1 checks,
* an optional message trace for congestion analysis,
* an abort flag so one failing rank unblocks every other rank.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from ..errors import CommError
from .message import Message, TraceRecord
from .model import NetworkModel


@dataclass
class TrafficStats:
    """Immutable snapshot of per-rank traffic counters."""

    words_sent: np.ndarray
    words_recv: np.ndarray
    msgs_sent: np.ndarray
    msgs_recv: np.ndarray

    @property
    def total_words(self) -> int:
        return int(self.words_sent.sum())

    @property
    def max_words_recv(self) -> int:
        return int(self.words_recv.max())

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        return TrafficStats(
            self.words_sent - other.words_sent,
            self.words_recv - other.words_recv,
            self.msgs_sent - other.msgs_sent,
            self.msgs_recv - other.msgs_recv,
        )


class Network:
    """Shared state of the simulated machine for ``nranks`` ranks."""

    #: polling interval for blocked receivers to notice an abort
    _WAIT_TIMEOUT = 0.2

    def __init__(self, nranks: int, model: Optional[NetworkModel] = None, *,
                 trace: bool = False):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.model = model or NetworkModel()
        self._lock = threading.Lock()
        self._conds = [threading.Condition(self._lock) for _ in range(nranks)]
        self._queues: List[List[Message]] = [[] for _ in range(nranks)]
        self._seq = np.zeros((nranks, nranks), dtype=np.int64)
        self.egress_free = np.zeros(nranks, dtype=np.float64)
        self.ingress_free = np.zeros(nranks, dtype=np.float64)
        self.clocks = np.zeros(nranks, dtype=np.float64)
        self.words_sent = np.zeros(nranks, dtype=np.int64)
        self.words_recv = np.zeros(nranks, dtype=np.int64)
        self.msgs_sent = np.zeros(nranks, dtype=np.int64)
        self.msgs_recv = np.zeros(nranks, dtype=np.int64)
        self.trace_enabled = trace
        self.trace: List[TraceRecord] = []
        self._abort_exc: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Posting and matching
    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, tag: int, payload: Any,
             nwords_: int, sender_clock: float) -> tuple[Message, float]:
        """Book the egress link, enqueue the message, and return it together
        with the simulated time at which the sender's buffer is free."""
        if not 0 <= dst < self.nranks:
            raise CommError(f"invalid destination rank {dst}")
        m = self.model
        with self._lock:
            self._check_abort()
            t_start = max(sender_clock, float(self.egress_free[src]))
            t_end_tx = t_start + m.beta * nwords_
            self.egress_free[src] = t_end_tx
            msg = Message(
                src=src, dst=dst, tag=tag,
                seq=int(self._seq[src, dst]),
                payload=payload, nwords=nwords_,
                t_start_tx=t_start, t_first=t_start + m.alpha,
            )
            self._seq[src, dst] += 1
            self.words_sent[src] += nwords_
            self.msgs_sent[src] += 1
            self._queues[dst].append(msg)
            self._conds[dst].notify_all()
        return msg, t_end_tx + m.o_send

    def try_match(self, dst: int, source: int, tag: int) -> Optional[Message]:
        """Pop the earliest-sequence matching message, or return None."""
        with self._lock:
            self._check_abort()
            return self._pop_match_locked(dst, source, tag)

    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        """Block (wall-clock) until a matching message arrives, then pop it."""
        cond = self._conds[dst]
        with cond:
            while True:
                self._check_abort()
                msg = self._pop_match_locked(dst, source, tag)
                if msg is not None:
                    return msg
                cond.wait(self._WAIT_TIMEOUT)

    def _pop_match_locked(self, dst: int, source: int,
                          tag: int) -> Optional[Message]:
        queue = self._queues[dst]
        for i, msg in enumerate(queue):
            if msg.matches(source, tag):
                return queue.pop(i)
        return None

    # ------------------------------------------------------------------
    # Delivery: ingress booking, in receiver program order
    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> float:
        """Book the ingress link for a matched message; returns its
        completion time in simulated seconds."""
        m = self.model
        with self._lock:
            t_done = max(msg.t_first, float(self.ingress_free[msg.dst]))
            t_done += m.beta * msg.nwords
            self.ingress_free[msg.dst] = t_done
            msg.t_done = t_done
            self.words_recv[msg.dst] += msg.nwords
            self.msgs_recv[msg.dst] += 1
            if self.trace_enabled:
                self.trace.append(TraceRecord(
                    msg.src, msg.dst, msg.tag, msg.nwords,
                    msg.t_start_tx, msg.t_first, t_done))
        return t_done

    # ------------------------------------------------------------------
    # Abort handling
    # ------------------------------------------------------------------
    def abort(self, exc: BaseException) -> None:
        """Mark the run as failed; wakes all blocked receivers."""
        with self._lock:
            if self._abort_exc is None:
                self._abort_exc = exc
            for cond in self._conds:
                cond.notify_all()

    def _check_abort(self) -> None:
        if self._abort_exc is not None:
            raise CommError(
                f"SPMD run aborted by a peer rank: {self._abort_exc!r}")

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    # ------------------------------------------------------------------
    # Diagnostic save/restore (used by xi measurement so that the extra
    # gather traffic does not perturb timing or volume statistics)
    # ------------------------------------------------------------------
    def save_state(self) -> dict:
        """Snapshot clocks, link occupancy and counters (NOT mailboxes or
        sequence numbers).  Must be taken when no messages are in flight."""
        with self._lock:
            return {
                "clocks": self.clocks.copy(),
                "egress": self.egress_free.copy(),
                "ingress": self.ingress_free.copy(),
                "words_sent": self.words_sent.copy(),
                "words_recv": self.words_recv.copy(),
                "msgs_sent": self.msgs_sent.copy(),
                "msgs_recv": self.msgs_recv.copy(),
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.clocks[:] = state["clocks"]
            self.egress_free[:] = state["egress"]
            self.ingress_free[:] = state["ingress"]
            self.words_sent[:] = state["words_sent"]
            self.words_recv[:] = state["words_recv"]
            self.msgs_sent[:] = state["msgs_sent"]
            self.msgs_recv[:] = state["msgs_recv"]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> TrafficStats:
        with self._lock:
            return TrafficStats(self.words_sent.copy(), self.words_recv.copy(),
                                self.msgs_sent.copy(), self.msgs_recv.copy())

    def reset_stats(self) -> None:
        with self._lock:
            self.words_sent[:] = 0
            self.words_recv[:] = 0
            self.msgs_sent[:] = 0
            self.msgs_recv[:] = 0
            self.trace.clear()

    @property
    def makespan(self) -> float:
        """Latest simulated clock across ranks."""
        return float(self.clocks.max())
