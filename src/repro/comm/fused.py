"""Fused collective fast path: schedule compilation + vectorized execution.

The per-message collectives in :mod:`repro.comm.collectives` are faithful
but interpreted: every round is a handful of Python-level ``isend``/``recv``
calls, each paying for payload wrapping, a ``Message`` object, mailbox
bookkeeping and — under the cooperative engine — a parked-thread hand-off
whenever a receive misses.  For a P-rank collective that is ``O(P log P)``
context switches per call, which dominates the simulator's wall-clock
(``BENCH_PERF.json``).

This module removes that interpreter overhead without changing a single
simulated timestamp.  Every collective is split into:

* a pure **schedule compiler** — ``compile_*`` functions that, given
  ``(P, element count, words-per-element, algorithm)`` (plus per-rank
  payload sizes for the ``v`` collectives), emit the complete message
  schedule: per-round ``(src, dst, nwords, tag)`` including the
  non-power-of-two fold-in/fold-out ranks, Rabenseifner block slices,
  ring segments and Bruck dissemination hops, together with the local
  reduction charges.  Compilation never touches data and is cached per
  signature;
* a **fused executor** — :func:`replay` books the entire compiled
  schedule against the shared :class:`~repro.comm.network.Network` state
  in a few vectorized passes (one numpy expression per round phase,
  element-wise and therefore **bit-identical** to the scalar
  per-message fold), and the ``_data_*`` functions compute every rank's
  result centrally with stacked numpy — reproducing the exact
  floating-point association order of the per-message algorithms (the
  butterfly/halving trees and the ring fold are balanced‑tree /
  sequential folds of *commutative* ``np.add`` applications, so the
  vectorized pairings below are bit-equal; fusion is gated on
  ``op is np.add`` for exactly this reason).

Execution model (the engine side lives in :mod:`repro.comm.engine`): a
rank entering a fused collective parks at a **rendezvous**; when the last
rank of the communicator arrives, that rank compiles (or re-uses) the
schedule, replays it, computes all results, and wakes everyone.  One
park/wake per rank per collective replaces one per blocked receive.

Correctness of the central replay relies on two existing invariants:

* simulated time is *schedule independent* — egress links are booked in
  sender program order and ingress links in receiver program order, so
  the replay only has to process rounds in dependency order, not
  reproduce any particular thread interleaving;
* while all P ranks are inside the collective no other traffic can be
  *posted*, and everything posted earlier has already booked its egress
  slot (pending undelivered messages book ingress later, in receiver
  program order — after the collective's own receives, exactly as in the
  per-message run).  Fused collectives issued inside an
  :class:`~repro.comm.communicator.AsyncRegion` therefore contend with
  in-flight bucket traffic through the link-occupancy state alone, the
  same way ``serialize_batch`` bookings do.

The per-message implementations remain the reference path (and the only
path for the threaded runner, traced networks, ``P = 1`` and non-``add``
reduction ops); ``REPRO_FUSED=0`` / ``run_spmd(..., fused=False)`` /
``repro-bench --no-fused`` force it everywhere, giving a three-way
bit-identity oracle (fused-coop == per-message-coop == threads) enforced
by ``tests/test_fused_collectives.py``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .payload import nwords as payload_nwords

# ---------------------------------------------------------------------------
# Tag namespace for collectives (shared with repro.comm.collectives, which
# re-exports these names).  User point-to-point traffic should stay below
# _TAG_BASE so interleaved calls cannot mismatch.
# ---------------------------------------------------------------------------
_TAG_BASE = 1 << 20
TAG_BARRIER = _TAG_BASE + 1
TAG_BCAST = _TAG_BASE + 2
TAG_REDUCE = _TAG_BASE + 3
TAG_ALLREDUCE = _TAG_BASE + 4
TAG_RS = _TAG_BASE + 5
TAG_AG = _TAG_BASE + 6
TAG_AGV = _TAG_BASE + 7
TAG_A2A = _TAG_BASE + 8
TAG_GATHER = _TAG_BASE + 9
TAG_SCATTER = _TAG_BASE + 10
TAG_FOLD = _TAG_BASE + 11

#: sentinel returned by the ``fused_*`` entry points when the fast path is
#: unavailable (wrong runner, tracing, P=1, non-add op, fusion disabled)
UNFUSED = object()

#: environment variable disabling the fused fast path ("0"/"false"/"off")
FUSED_ENV = "REPRO_FUSED"

#: profitability floors for the dense fused collectives (allreduce,
#: reduce-scatter/allgather ring, reduce): worlds smaller than
#: ``REPRO_FUSED_MIN_RANKS`` ranks, or payloads smaller than
#: ``REPRO_FUSED_MIN_WPR`` words per rank, take the per-message path
#: instead (recorded in ``algorithm_log`` as mode ``"unfused-small"``).
#: Simulated time is identical either way; the floors are wall-clock-only.
FUSED_MIN_RANKS_ENV = "REPRO_FUSED_MIN_RANKS"
FUSED_MIN_WPR_ENV = "REPRO_FUSED_MIN_WPR"

#: measured single-core defaults (see BENCH_PERF meta): at P <= 3 the
#: rendezvous park/wake plus central replay never beats the handful of
#: per-message posts (fused/reference ratios 0.75-1.10 across payloads of
#: 16..50k words), while at P >= 4 fusion wins at every measured size down
#: to one word per rank (1.04x-4.3x) — so the rank floor is 4 and the
#: words-per-rank floor defaults to 0 (a knob for hosts where tiny fused
#: payloads measure slower than this box).
_MIN_RANKS_DEFAULT = 4
_MIN_WPR_DEFAULT = 0


def fusion_enabled() -> bool:
    """Whether the fused fast path is enabled for new engines (env gate)."""
    return os.environ.get(FUSED_ENV, "1").lower() not in (
        "0", "false", "off", "no")


def _floor_from_env(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def fusion_floors() -> Tuple[int, int]:
    """The ``(min_ranks, min_words_per_rank)`` profitability floors below
    which dense-collective fusion is skipped (env-overridable)."""
    return (_floor_from_env(FUSED_MIN_RANKS_ENV, _MIN_RANKS_DEFAULT),
            _floor_from_env(FUSED_MIN_WPR_ENV, _MIN_WPR_DEFAULT))


def _too_small(comm, collective: str, algorithm: str, nwords_: int) -> bool:
    """Profitability gate for the dense fused entry points.

    Fusion replaces ``O(P log P)`` per-message park/wake cycles with one
    rendezvous plus a vectorized replay — a win that has to amortize the
    rendezvous itself.  When the world or the payload is below the
    :func:`fusion_floors`, the per-message path is faster in wall-clock
    terms (simulated results/clocks/counters are bit-identical either
    way), so the entry point returns :data:`UNFUSED` and the skip is
    recorded once per call in :attr:`Network.algorithm_log` under mode
    ``"unfused-small"`` — auditable next to the reference path's own
    ``forced``/``auto``/``adaptive`` entries."""
    min_ranks, min_wpr = fusion_floors()
    p = comm.size
    if p >= min_ranks and nwords_ >= min_wpr * p:
        return False
    if comm.rank == 0:  # once per collective call, not once per rank
        comm.net.note_algorithm(collective, algorithm, "unfused-small",
                                nwords_)
    return True


def _available(comm) -> bool:
    """Cheap gate: fused execution needs the cooperative engine (with
    fusion on), more than one rank, and no message tracing (the reference
    path emits per-message ``TraceRecord``\\ s the replay does not).

    Fault plans and shrunk/revoked worlds also force the reference path:
    the fused executors book links with the raw model beta and bypass
    :meth:`SimComm.compute`, so they would not see link slowdowns,
    straggler scaling or crash times — and they address physical slots
    ``0..P-1``, which a group communicator no longer spans."""
    net = comm.net
    sched = net._sched
    return (sched is not None and getattr(sched, "fused", False)
            and not net.trace_enabled and comm.size > 1
            and net.faults is None and not net.revoked
            and comm.size == net.nranks)


# ---------------------------------------------------------------------------
# Schedule IR
# ---------------------------------------------------------------------------
#: round styles: _SENDRECV = post, +o_inject, recv (max), tail (max own
#: done), reduce; _ONEWAY = blocking posts (tail right after the post, per
#: sender program order), then recvs (max), then reduce.
_SENDRECV, _ONEWAY = 0, 1


class Round:
    """One dependency level of a compiled schedule.

    ``post``/``recv`` are index arrays into the schedule's message table.
    For ``_SENDRECV`` rounds they are aligned by actor: ``post[i]`` is the
    message actor ``i`` sends and ``recv[i]`` the one it receives.
    ``post_seq`` marks rounds whose posts share an egress link and must be
    folded sequentially with the blocking-send clock advance in between
    (scatter); ``recv_seq`` marks shared-ingress delivery fans (gather).
    ``reduce_words`` (aligned with ``recv``) charges the receiver's local
    reduction (``compute_words``) after the round; ``extra_seconds``
    (same alignment) charges absolute seconds after that — the slot for
    data-dependent selection costs (gtopk's per-level ``compute_topk``).
    """

    __slots__ = ("style", "post", "recv", "reduce_words", "post_seq",
                 "recv_seq", "extra_seconds")

    def __init__(self, style: int, post, recv, reduce_words=None,
                 post_seq: bool = False, recv_seq: bool = False,
                 extra_seconds=None):
        self.style = style
        self.post = post
        self.recv = recv
        self.reduce_words = reduce_words
        self.post_seq = post_seq
        self.recv_seq = recv_seq
        self.extra_seconds = extra_seconds


class Schedule:
    """A compiled collective: message table + rounds + per-rank totals."""

    __slots__ = ("p", "src", "dst", "nw", "nw_f", "tag", "rounds",
                 "words_sent", "words_recv", "msgs_sent", "msgs_recv")

    def __init__(self, p: int, src, dst, nw, tag, rounds):
        self.p = p
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.nw = np.asarray(nw, dtype=np.int64)
        self.nw_f = self.nw.astype(np.float64)
        self.tag = np.asarray(tag, dtype=np.int64)
        self.rounds = tuple(rounds)
        # every compiled message is delivered, so the totals are symmetric
        # sums over the table (ints, to match the counter lists exactly)
        self.words_sent = [0] * p
        self.words_recv = [0] * p
        self.msgs_sent = [0] * p
        self.msgs_recv = [0] * p
        for s, d, w in zip(src, dst, nw):
            self.words_sent[s] += int(w)
            self.words_recv[d] += int(w)
            self.msgs_sent[s] += 1
            self.msgs_recv[d] += 1

    @property
    def nmsgs(self) -> int:
        return int(self.src.size)

    def messages(self) -> List[Tuple[int, int, int, int]]:
        """The full message list as ``(src, dst, nwords, tag)`` tuples (in
        schedule order) — the property-test surface."""
        return list(zip(self.src.tolist(), self.dst.tolist(),
                        self.nw.tolist(), self.tag.tolist()))


class _Builder:
    """Accumulates the message table and rounds during compilation."""

    __slots__ = ("p", "src", "dst", "nw", "tag", "rounds")

    def __init__(self, p: int):
        self.p = p
        self.src: List[int] = []
        self.dst: List[int] = []
        self.nw: List[int] = []
        self.tag: List[int] = []
        self.rounds: List[Round] = []

    def msg(self, src: int, dst: int, nwords_: int, tag: int) -> int:
        i = len(self.src)
        self.src.append(src)
        self.dst.append(dst)
        self.nw.append(int(nwords_))
        self.tag.append(tag)
        return i

    def round(self, style: int, post: Sequence[int], recv: Sequence[int],
              reduce_words: Optional[Sequence[int]] = None,
              post_seq: bool = False, recv_seq: bool = False,
              extra_seconds: Optional[Sequence[float]] = None) -> None:
        self.rounds.append(Round(
            style,
            np.asarray(post, dtype=np.int64) if len(post) else None,
            np.asarray(recv, dtype=np.int64) if len(recv) else None,
            (np.asarray(reduce_words, dtype=np.float64)
             if reduce_words is not None else None),
            post_seq, recv_seq,
            (np.asarray(extra_seconds, dtype=np.float64)
             if extra_seconds is not None else None)))

    def build(self) -> Schedule:
        return Schedule(self.p, self.src, self.dst, self.nw, self.tag,
                        self.rounds)


# ---------------------------------------------------------------------------
# The vectorized executor
# ---------------------------------------------------------------------------
def replay(net, sched: Schedule) -> None:
    """Book a compiled schedule against the network, bit-identically to
    the per-message run.

    Per round: all posts (egress bookings, element-wise ``max``/``+`` over
    the senders — identical IEEE operations to the scalar path), then all
    deliveries (ingress bookings in receiver program order), then the
    senders' completion advance and the receivers' reduction charges.
    Rounds that share a link across messages (linear gather/scatter) fall
    back to the exact scalar fold.  Clocks, link occupancy and the traffic
    counters end up exactly where ``P log P`` individual ``post``/
    ``deliver`` calls would have left them.
    """
    model = net.model
    beta = model.beta
    alpha = model.alpha
    o_send = model.o_send
    o_inject = model.o_inject
    gamma = model.gamma
    clocks = np.asarray(net.clocks, dtype=np.float64)
    eg = np.asarray(net.egress_free, dtype=np.float64)
    ing = np.asarray(net.ingress_free, dtype=np.float64)
    msrc, mdst, mnw = sched.src, sched.dst, sched.nw_f
    t_first = np.empty(sched.nmsgs, dtype=np.float64)
    done = np.empty(sched.nmsgs, dtype=np.float64)
    for rnd in sched.rounds:
        pi = rnd.post
        if pi is not None:
            if rnd.post_seq:
                # shared egress link: exact scalar fold, blocking-send
                # clock advance between posts (scatter's linear loop)
                for i in pi.tolist():
                    s = int(msrc[i])
                    ts = eg[s]
                    if clocks[s] > ts:
                        ts = clocks[s]
                    te = ts + beta * mnw[i]
                    eg[s] = te
                    t_first[i] = ts + alpha
                    dn = te + o_send
                    done[i] = dn
                    if dn > clocks[s]:
                        clocks[s] = dn
            else:
                src = msrc[pi]
                ts = np.maximum(eg[src], clocks[src])
                te = ts + beta * mnw[pi]
                eg[src] = te
                t_first[pi] = ts + alpha
                dn = te + o_send
                done[pi] = dn
                if rnd.style == _SENDRECV:
                    clocks[src] += o_inject
                else:
                    clocks[src] = np.maximum(clocks[src], dn)
        ri = rnd.recv
        if ri is not None:
            if rnd.recv_seq:
                # shared ingress link: exact scalar fold in program order
                for i in ri.tolist():
                    d = int(mdst[i])
                    td = ing[d]
                    if t_first[i] > td:
                        td = t_first[i]
                    td += beta * mnw[i]
                    ing[d] = td
                    if td > clocks[d]:
                        clocks[d] = td
            else:
                dst = mdst[ri]
                td = np.maximum(ing[dst], t_first[ri]) + beta * mnw[ri]
                ing[dst] = td
                clocks[dst] = np.maximum(clocks[dst], td)
        if rnd.style == _SENDRECV and pi is not None:
            src = msrc[pi]
            clocks[src] = np.maximum(clocks[src], done[pi])
        if rnd.reduce_words is not None:
            dst = mdst[ri]
            clocks[dst] += gamma * rnd.reduce_words
        if rnd.extra_seconds is not None:
            clocks[mdst[ri]] += rnd.extra_seconds
    net.clocks[:] = clocks.tolist()
    net.egress_free[:] = eg.tolist()
    net.ingress_free[:] = ing.tolist()
    for r in range(sched.p):
        net.words_sent[r] += sched.words_sent[r]
        net.words_recv[r] += sched.words_recv[r]
        net.msgs_sent[r] += sched.msgs_sent[r]
        net.msgs_recv[r] += sched.msgs_recv[r]


# ---------------------------------------------------------------------------
# Fold helpers shared by the allreduce compilers (non-power-of-two P)
# ---------------------------------------------------------------------------
def _core_size(p: int) -> int:
    return 1 << (p.bit_length() - 1)


def _fold_real(newrank: int, p: int, m: int) -> int:
    rem = p - m
    return newrank * 2 + 1 if newrank < rem else newrank + rem


def _emit_fold_in(b: _Builder, p: int, m: int, nw: int,
                  n_elems: int) -> None:
    rem = p - m
    if rem == 0:
        return
    post = [b.msg(2 * i, 2 * i + 1, nw, TAG_FOLD) for i in range(rem)]
    b.round(_ONEWAY, post, post, reduce_words=[n_elems] * rem)


def _emit_fold_out(b: _Builder, p: int, m: int, nw: int) -> None:
    rem = p - m
    if rem == 0:
        return
    post = [b.msg(2 * i + 1, 2 * i, nw, TAG_FOLD) for i in range(rem)]
    b.round(_ONEWAY, post, post)


# ---------------------------------------------------------------------------
# Schedule compilers (pure: P + sizes in, message schedule out)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=1024)
def compile_allreduce(p: int, n: int, wpe: int, algo: str) -> Schedule:
    """Message schedule of a dense allreduce over ``n`` elements of
    ``wpe`` words each (``recursive_doubling`` | ``rabenseifner`` |
    ``ring``), including the fold-in/fold-out of the ``P - 2^floor(log2
    P)`` extra ranks."""
    if algo == "recursive_doubling":
        return _compile_allreduce_rd(p, n, wpe)
    if algo == "rabenseifner":
        return _compile_allreduce_rab(p, n, wpe)
    if algo == "ring":
        raise ValueError("ring allreduce compiles as reduce_scatter_ring "
                         "+ allgather_ring")
    raise ValueError(f"unknown dense allreduce algorithm {algo!r}")


def _compile_allreduce_rd(p: int, n: int, wpe: int) -> Schedule:
    b = _Builder(p)
    m = _core_size(p)
    nw = n * wpe
    _emit_fold_in(b, p, m, nw, n)
    d = 1
    while d < m:
        post = [b.msg(_fold_real(x, p, m), _fold_real(x ^ d, p, m), nw,
                      TAG_ALLREDUCE) for x in range(m)]
        recv = [post[x ^ d] for x in range(m)]
        b.round(_SENDRECV, post, recv, reduce_words=[n] * m)
        d <<= 1
    _emit_fold_out(b, p, m, nw)
    return b.build()


def _compile_allreduce_rab(p: int, n: int, wpe: int) -> Schedule:
    b = _Builder(p)
    m = _core_size(p)
    nw = n * wpe
    _emit_fold_in(b, p, m, nw, n)
    # recursive-halving reduce-scatter: track each core rank's (lo, hi)
    lohi = [(0, n)] * m
    d = m >> 1
    while d >= 1:
        post = [0] * m
        for x in range(m):
            lo, hi = lohi[x]
            mid = lo + (hi - lo) // 2
            elems = (hi - mid) if x < (x ^ d) else (mid - lo)
            post[x] = b.msg(_fold_real(x, p, m), _fold_real(x ^ d, p, m),
                            elems * wpe, TAG_RS)
        recv, reduce_w = [0] * m, [0] * m
        for x in range(m):
            lo, hi = lohi[x]
            mid = lo + (hi - lo) // 2
            lohi[x] = (lo, mid) if x < (x ^ d) else (mid, hi)
            recv[x] = post[x ^ d]
            reduce_w[x] = lohi[x][1] - lohi[x][0]
        b.round(_SENDRECV, post, recv, reduce_words=reduce_w)
        d >>= 1
    # recursive-doubling allgather
    d = 1
    while d < m:
        post = [b.msg(_fold_real(x, p, m), _fold_real(x ^ d, p, m),
                      (lohi[x][1] - lohi[x][0]) * wpe, TAG_AG)
                for x in range(m)]
        recv = [post[x ^ d] for x in range(m)]
        b.round(_SENDRECV, post, recv)
        nxt = [0] * m
        for x in range(m):
            lo, hi = lohi[x]
            got = lohi[x ^ d][1] - lohi[x ^ d][0]
            nxt[x] = (lo - got, hi) if x & d else (lo, hi + got)
        lohi = nxt
        d <<= 1
    _emit_fold_out(b, p, m, nw)
    return b.build()


def _ring_block_lens(n: int, p: int) -> List[int]:
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    return [int(bounds[i + 1] - bounds[i]) for i in range(p)]


@lru_cache(maxsize=1024)
def compile_reduce_scatter_ring(p: int, n: int, wpe: int) -> Schedule:
    """Ring reduce-scatter: ``P - 1`` permutation steps over the
    near-equal contiguous blocks of :func:`_ring_block_lens`."""
    b = _Builder(p)
    lens = _ring_block_lens(n, p)
    for s in range(1, p):
        post = [b.msg(r, (r + 1) % p, lens[(r - s) % p] * wpe, TAG_RS)
                for r in range(p)]
        recv = [post[(r - 1) % p] for r in range(p)]
        b.round(_SENDRECV, post, recv,
                reduce_words=[lens[(r - s - 1) % p] for r in range(p)])
    return b.build()


@lru_cache(maxsize=1024)
def compile_allgather_ring(p: int, n: int, wpe: int) -> Schedule:
    b = _Builder(p)
    lens = _ring_block_lens(n, p)
    for s in range(p - 1):
        post = [b.msg(r, (r + 1) % p, lens[(r - s) % p] * wpe, TAG_AG)
                for r in range(p)]
        recv = [post[(r - 1) % p] for r in range(p)]
        b.round(_SENDRECV, post, recv)
    return b.build()


@lru_cache(maxsize=1024)
def compile_allgatherv(p: int, sizes: Tuple[int, ...],
                       tag: int = TAG_AGV) -> Schedule:
    """Bruck dissemination with per-rank contribution sizes (in words):
    the step at distance ``d`` ships each rank's first ``min(d, P - d)``
    held blocks (blocks of ranks ``r .. r+count-1``)."""
    b = _Builder(p)
    d = 1
    while d < p:
        count = min(d, p - d)
        post = [b.msg(r, (r - d) % p,
                      sum(sizes[(r + j) % p] for j in range(count)), tag)
                for r in range(p)]
        recv = [post[(r + d) % p] for r in range(p)]
        b.round(_SENDRECV, post, recv)
        d <<= 1
    return b.build()


@lru_cache(maxsize=256)
def compile_alltoallv(p: int, rows: Tuple[Tuple[int, ...], ...]) -> Schedule:
    """Pairwise rotation: at step ``s`` rank ``r`` sends block
    ``(r+s) % P`` and receives from ``(r-s) % P``; ``rows[i][j]`` is the
    word size of rank ``i``'s block for rank ``j``."""
    b = _Builder(p)
    for s in range(1, p):
        post = [b.msg(r, (r + s) % p, rows[r][(r + s) % p], TAG_A2A)
                for r in range(p)]
        recv = [post[(r - s) % p] for r in range(p)]
        b.round(_SENDRECV, post, recv)
    return b.build()


@lru_cache(maxsize=1024)
def compile_bcast(p: int, root: int, nw: int) -> Schedule:
    """Binomial broadcast, levels in descending mask order (a rank
    receives at its virtual rank's lowest set bit, then forwards)."""
    b = _Builder(p)
    top = 1
    while top < p:
        top <<= 1
    mask = top >> 1
    while mask >= 1:
        post, recv = [], []
        for v in range(0, p, 2 * mask):
            if v + mask < p:
                i = b.msg((v + root) % p, (v + mask + root) % p, nw,
                          TAG_BCAST)
                post.append(i)
                recv.append(i)
        b.round(_ONEWAY, post, recv)
        mask >>= 1
    return b.build()


@lru_cache(maxsize=1024)
def compile_reduce(p: int, root: int, n: int, wpe: int) -> Schedule:
    """Binomial reduction to ``root``, levels in ascending mask order."""
    b = _Builder(p)
    nw = n * wpe
    mask = 1
    while mask < p:
        post, recv, reduce_w = [], [], []
        for v in range(0, p, 2 * mask):
            if v + mask < p:
                i = b.msg((v + mask + root) % p, (v + root) % p, nw,
                          TAG_REDUCE)
                post.append(i)
                recv.append(i)
                reduce_w.append(n)
        b.round(_ONEWAY, post, recv, reduce_words=reduce_w)
        mask <<= 1
    return b.build()


@lru_cache(maxsize=256)
def compile_barrier(p: int) -> Schedule:
    """Dissemination barrier: ``ceil(log2 P)`` zero-word rounds, each a
    blocking send to ``r+d`` followed by a receive from ``r-d``."""
    b = _Builder(p)
    d = 1
    while d < p:
        post = [b.msg(r, (r + d) % p, 0, TAG_BARRIER) for r in range(p)]
        recv = [post[(r - d) % p] for r in range(p)]
        b.round(_ONEWAY, post, recv)
        d <<= 1
    return b.build()


@lru_cache(maxsize=512)
def compile_gather(p: int, root: int, sizes: Tuple[int, ...]) -> Schedule:
    """Linear gather: every non-root posts, the root's ingress link
    serializes the deliveries in ascending rank order."""
    b = _Builder(p)
    peers = [r for r in range(p) if r != root]
    post = [b.msg(r, root, sizes[r], TAG_GATHER) for r in peers]
    b.round(_ONEWAY, post, post, recv_seq=True)
    return b.build()


@lru_cache(maxsize=512)
def compile_scatter(p: int, root: int, sizes: Tuple[int, ...]) -> Schedule:
    """Linear scatter: the root's egress link serializes the blocking
    sends in ascending rank order."""
    b = _Builder(p)
    peers = [r for r in range(p) if r != root]
    post = [b.msg(root, r, sizes[r], TAG_SCATTER) for r in peers]
    b.round(_ONEWAY, post, post, post_seq=True)
    return b.build()


# ---------------------------------------------------------------------------
# Algorithm roles and size-adaptive selection
# ---------------------------------------------------------------------------
# The dense allreduce compilers above fall into two *roles* on the
# alpha-beta cost model: recursive doubling is latency-optimal (log2 P
# rounds, full vector each) and Rabenseifner/ring are bandwidth-optimal
# (2 n (P-1)/P words at 2 log2 P / 2(P-1) latency terms).  Which role wins
# is purely a function of the message size against the network's
# alpha/beta ratio — the same small-vs-large regime flip SparCML
# formalizes for sparse streams and that LLM serving stacks exercise per
# token ([batch, seq, hidden] message sizes choosing the kernel).  The
# helpers below give callers the explicit choice and the analytic
# crossover; :func:`repro.comm.collectives.allreduce` dispatches on them.

#: the latency-optimal dense allreduce: ``log2 P`` (+2 non-pow2 fold)
#: rounds, each shipping the full vector
LATENCY_OPTIMAL = "recursive_doubling"


def bandwidth_optimal(p: int) -> str:
    """The bandwidth-optimal dense allreduce at ``p`` ranks (the static
    ``algo="auto"`` baseline): Rabenseifner for powers of two, the
    bandwidth-equivalent ring otherwise (any P, no fold-in volume)."""
    return "rabenseifner" if p > 0 and (p & (p - 1)) == 0 else "ring"


def allreduce_alpha_beta_terms(p: int, algo: str) -> Tuple[float, float]:
    """Alpha/beta multipliers ``(A, B)`` of a dense allreduce:
    ``cost(n) ~= A * alpha + B * n * beta`` for ``n`` payload words.

    Matches the compiled schedules above, including the non-power-of-two
    fold-in/fold-out rounds (two extra full-vector hops for recursive
    doubling and Rabenseifner; the ring needs none)."""
    if p <= 1:
        return 0.0, 0.0
    m = 1 << (p.bit_length() - 1)
    logm = p.bit_length() - 1
    fold = 0.0 if m == p else 2.0  # fold-in + fold-out, full vector each
    if algo == "recursive_doubling":
        return logm + fold, logm + fold
    if algo == "rabenseifner":
        return 2.0 * logm + fold, 2.0 * (m - 1) / m + fold
    if algo == "ring":
        return 2.0 * (p - 1), 2.0 * (p - 1) / p
    raise ValueError(f"unknown dense allreduce algorithm {algo!r}")


def allreduce_analytic_seconds(p: int, nwords_: int, model,
                               algo: str) -> float:
    """Analytic alpha-beta cost of one dense allreduce of ``nwords_``
    words (no gamma/occupancy terms — the selection-relevant part)."""
    a, b = allreduce_alpha_beta_terms(p, algo)
    return a * model.alpha + b * nwords_ * model.beta


def allreduce_crossover_words(p: int, model) -> float:
    """Message size (words) at which the bandwidth-optimal schedule
    overtakes the latency-optimal one on ``model``'s alpha/beta
    constants; ``inf`` when it never does (P <= 2, where recursive
    doubling is also bandwidth-optimal, or ``beta == 0``)."""
    a_l, b_l = allreduce_alpha_beta_terms(p, LATENCY_OPTIMAL)
    a_b, b_b = allreduce_alpha_beta_terms(p, bandwidth_optimal(p))
    d_beta = (b_l - b_b) * model.beta
    if d_beta <= 0.0:
        return float("inf")
    return (a_b - a_l) * model.alpha / d_beta


def select_allreduce_algorithm(p: int, nwords_: int, model) -> str:
    """Size-adaptive algorithm choice: the latency-optimal schedule below
    the alpha/beta crossover size, the bandwidth-optimal one at/above it
    (the ``algorithm="adaptive"`` dispatch of
    :func:`repro.comm.collectives.allreduce`)."""
    if nwords_ < allreduce_crossover_words(p, model):
        return LATENCY_OPTIMAL
    return bandwidth_optimal(p)


# ---------------------------------------------------------------------------
# Central data computation (bit-identical association orders)
# ---------------------------------------------------------------------------
def _fold_stack(payloads: Sequence[np.ndarray], p: int) -> np.ndarray:
    """Stack the contributions in core (newrank) order, combining the
    fold-in pairs: row ``x < rem`` is ``a[2x+1] + a[2x]`` (the odd rank's
    ``op(acc, got)``), rows ``x >= rem`` pass through."""
    arr = np.stack([np.asarray(a) for a in payloads])
    m = _core_size(p)
    rem = p - m
    if rem == 0:
        return arr
    folded = arr[1:2 * rem:2] + arr[0:2 * rem:2]
    return np.concatenate([folded, arr[2 * rem:]], axis=0)


def _sum_recursive_doubling(payloads: Sequence[np.ndarray],
                            p: int) -> np.ndarray:
    """The butterfly's balanced tree: adjacent newrank pairs combine at
    distance 1 first (every core rank ends with the same bits because
    each combine is a commutative ``op(acc, got)``)."""
    cur = _fold_stack(payloads, p)
    while cur.shape[0] > 1:
        cur = cur[0::2] + cur[1::2]
    return cur[0]


def _sum_rabenseifner(payloads: Sequence[np.ndarray], p: int) -> np.ndarray:
    """Recursive halving's tree: newranks pair at distance ``m/2`` first
    (per block the association is the same halving tree, so the whole
    vector folds in one pass per level)."""
    cur = _fold_stack(payloads, p)
    while cur.shape[0] > 1:
        h = cur.shape[0] // 2
        cur = cur[:h] + cur[h:]
    return cur[0]


def _sum_ring(payloads: Sequence[np.ndarray], p: int) -> np.ndarray:
    """The ring's sequential fold: block ``b`` accumulates around the
    ring as ``op(a_b, op(a_{b-1}, ... op(a_{b+2}, a_{b+1})))``.

    Blocks are contiguous, so each block folds over plain slices — no
    full-width gather is ever materialized (the naive
    ``stack[(block_of + 1 + j) % p, col]`` formulation costs ``P``
    fancy-indexed passes over the whole vector and dominated the fused
    ring path at large ``n``)."""
    arrs = [np.asarray(a) for a in payloads]
    n = arrs[0].shape[0]
    lens = _ring_block_lens(n, p)
    out = np.empty_like(arrs[0])
    off = 0
    for b, ln in enumerate(lens):
        sl = slice(off, off + ln)
        off += ln
        partial = arrs[(b + 1) % p][sl]
        for j in range(1, p):
            partial = arrs[(b + 1 + j) % p][sl] + partial
        out[sl] = partial
    return out


def _sum_reduce_tree(payloads: Sequence[Any], p: int, root: int):
    """Binomial-tree association: at each mask level the surviving
    virtual rank folds its child subtree in (``op(acc, got)``)."""
    cur = {v: np.asarray(payloads[(root + v) % p]) for v in range(p)}
    mask = 1
    while mask < p:
        for v in range(0, p, 2 * mask):
            if v + mask < p:
                cur[v] = cur[v] + cur.pop(v + mask)
        mask <<= 1
    return cur[0]


# ---------------------------------------------------------------------------
# Payload views/snapshots matching the per-message delivery semantics
# ---------------------------------------------------------------------------
def _view(obj: Any) -> Any:
    """Read-only zero-copy view (the ``sendrecv`` delivery semantics):
    mirrors :func:`repro.comm.communicator._view`."""
    from .communicator import _view as cview
    return cview(obj)


def _recv_snapshot(obj: Any, net) -> Any:
    """What a blocking-``send`` receiver would hold: the payload snapshot
    taken at post time (zero-copy for immutable arrays — see
    :func:`repro.comm.communicator.send_snapshot`)."""
    from .communicator import send_snapshot
    return send_snapshot(obj, net)


# ---------------------------------------------------------------------------
# Fused entry points (called from repro.comm.collectives)
# ---------------------------------------------------------------------------
def _wpe(arr: np.ndarray) -> int:
    return max(1, arr.dtype.itemsize // 4)


def fused_allreduce(comm, arr: np.ndarray, op, algo: str):
    if op is not np.add or not _available(comm):
        return UNFUSED
    a = np.asarray(arr)
    if _too_small(comm, "allreduce", algo, a.size * _wpe(a)):
        return UNFUSED
    sig = ("allreduce", algo, a.size, _wpe(a), a.dtype.str)
    return comm.fused_collective(sig, a, _exec_allreduce)


def _exec_allreduce(net, sig, payloads):
    _, algo, n, wpe, _ = sig
    p = len(payloads)
    if algo == "ring":
        replay(net, compile_reduce_scatter_ring(p, n, wpe))
        replay(net, compile_allgather_ring(p, n, wpe))
        total = _sum_ring(payloads, p)
    elif algo == "rabenseifner":
        replay(net, compile_allreduce(p, n, wpe, algo))
        total = _sum_rabenseifner(payloads, p)
    else:
        replay(net, compile_allreduce(p, n, wpe, algo))
        total = _sum_recursive_doubling(payloads, p)
    return [np.array(total, copy=True) for _ in range(p)]


def fused_reduce_scatter_ring(comm, arr: np.ndarray, op):
    if op is not np.add or not _available(comm):
        return UNFUSED
    a = np.asarray(arr)
    if _too_small(comm, "reduce_scatter_ring", "ring", a.size * _wpe(a)):
        return UNFUSED
    sig = ("reduce_scatter_ring", a.size, _wpe(a), a.dtype.str)
    return comm.fused_collective(sig, a, _exec_rs_ring)


def _exec_rs_ring(net, sig, payloads):
    _, n, wpe, _ = sig
    p = len(payloads)
    replay(net, compile_reduce_scatter_ring(p, n, wpe))
    partial = _sum_ring(payloads, p)
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    return [(partial[bounds[r]:bounds[r + 1]].copy(),
             slice(int(bounds[r]), int(bounds[r + 1])))
            for r in range(p)]


def fused_allgather_ring(comm, block: np.ndarray, n: int):
    if not _available(comm):
        return UNFUSED
    a = np.asarray(block)
    if _too_small(comm, "allgather_ring", "ring", int(n) * _wpe(a)):
        return UNFUSED
    sig = ("allgather_ring", int(n), _wpe(a), a.dtype.str)
    return comm.fused_collective(sig, a, _exec_ag_ring)


def _exec_ag_ring(net, sig, payloads):
    _, n, wpe, dts = sig
    p = len(payloads)
    replay(net, compile_allgather_ring(p, n, wpe))
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    full = np.empty(n, dtype=np.dtype(dts))
    for r in range(p):
        full[bounds[r]:bounds[r + 1]] = payloads[r]
    return [full.copy() for _ in range(p)]


def fused_allgatherv(comm, block: Any):
    if not _available(comm):
        return UNFUSED
    return comm.fused_collective(
        ("allgatherv",), (block, payload_nwords(block)), _exec_allgatherv)


def _exec_allgatherv(net, sig, payloads):
    p = len(payloads)
    sizes = tuple(nw for _, nw in payloads)
    replay(net, compile_allgatherv(p, sizes))
    blocks = [b for b, _ in payloads]
    views = [_view(b) for b in blocks]
    return [[blocks[j] if j == r else views[j] for j in range(p)]
            for r in range(p)]


def fused_allgather_object(comm, obj: Any):
    if not _available(comm):
        return UNFUSED
    return comm.fused_collective(
        ("allgather_object",), (obj, payload_nwords(obj)),
        _exec_allgatherv)


def fused_alltoallv(comm, blocks: Sequence[Any]):
    if not _available(comm):
        return UNFUSED
    row = tuple(payload_nwords(bl) for bl in blocks)
    return comm.fused_collective(("alltoallv",), (blocks, row),
                                 _exec_alltoallv)


def _exec_alltoallv(net, sig, payloads):
    p = len(payloads)
    rows = tuple(row for _, row in payloads)
    replay(net, compile_alltoallv(p, rows))
    out = []
    for r in range(p):
        out.append([payloads[j][0][r] if j == r
                    else _view(payloads[j][0][r]) for j in range(p)])
    return out


def fused_bcast(comm, obj: Any, root: int):
    if not _available(comm):
        return UNFUSED
    payload = obj if comm.rank == root else None
    return comm.fused_collective(("bcast", root), payload, _exec_bcast)


def _exec_bcast(net, sig, payloads):
    _, root = sig
    p = len(payloads)
    obj = payloads[root]
    replay(net, compile_bcast(p, root, payload_nwords(obj)))
    snap = _recv_snapshot(obj, net)
    return [obj if r == root else snap for r in range(p)]


def fused_reduce(comm, arr: np.ndarray, root: int, op):
    if op is not np.add or not _available(comm):
        return UNFUSED
    a = np.asarray(arr)
    if _too_small(comm, "reduce", "binomial_tree", a.size * _wpe(a)):
        return UNFUSED
    sig = ("reduce", root, a.size, _wpe(a), a.dtype.str)
    return comm.fused_collective(sig, a, _exec_reduce)


def _exec_reduce(net, sig, payloads):
    _, root, n, wpe, _ = sig
    p = len(payloads)
    replay(net, compile_reduce(p, root, n, wpe))
    total = _sum_reduce_tree(payloads, p, root)
    return [total if r == root else None for r in range(p)]


def fused_barrier(comm):
    if not _available(comm):
        return UNFUSED
    return comm.fused_collective(("barrier",), None, _exec_barrier)


def _exec_barrier(net, sig, payloads):
    p = len(payloads)
    replay(net, compile_barrier(p))
    return [None] * p


def fused_gather(comm, obj: Any, root: int):
    if not _available(comm):
        return UNFUSED
    return comm.fused_collective(("gather", root),
                                 (obj, payload_nwords(obj)), _exec_gather)


def _exec_gather(net, sig, payloads):
    _, root = sig
    p = len(payloads)
    sizes = tuple(nw for _, nw in payloads)
    replay(net, compile_gather(p, root, sizes))
    out = [payloads[j][0] if j == root
           else _recv_snapshot(payloads[j][0], net) for j in range(p)]
    return [out if r == root else None for r in range(p)]


def fused_scatter(comm, objs: Optional[Sequence[Any]], root: int):
    if not _available(comm):
        return UNFUSED
    if comm.rank == root:
        payload = (objs, tuple(payload_nwords(o) for o in objs))
    else:
        payload = None
    return comm.fused_collective(("scatter", root), payload, _exec_scatter)


def _exec_scatter(net, sig, payloads):
    _, root = sig
    p = len(payloads)
    objs, sizes = payloads[root]
    replay(net, compile_scatter(p, root, sizes))
    return [objs[r] if r == root else _recv_snapshot(objs[r], net)
            for r in range(p)]
