"""Per-rank communicator: the mpi4py-flavoured API the algorithms program to.

Each SPMD rank owns one :class:`SimComm`.  Simulated time is tracked per rank
(``comm.clock``); point-to-point calls advance it according to the network
model, and :meth:`compute` charges local computation.  Blocking semantics are
*eager* (a send never blocks on the receiver), so algorithms written against
this API cannot deadlock through send-send cycles.

Payload ownership
-----------------

Under the **threaded** runner every mutable payload is deep-copied at post
time, so both sides may do anything with their buffers.  Under the
**cooperative** runner (the default) the send path avoids copies wherever
that cannot change observable behaviour:

* :class:`~repro.sparse.coo.COOVector` and other self-sizing immutable
  objects (the sparse-scheme hot path) pass through untouched — fully
  zero-copy (they already did under the threaded runner);
* :meth:`sendrecv` is an audited **zero-copy** fast path with *no* loan
  bookkeeping: payloads are read-only views.  Every collective in
  :mod:`repro.comm.collectives` consumes received arrays before its next
  blocking call and only ever writes sender regions whose in-flight
  messages are already delivered; callers of ``sendrecv`` outside the
  library must honour the same contract;
* for :meth:`isend` the sender's buffer is *on loan* while the message is
  in flight: it is write-locked, so mutating it mid-flight raises instead
  of corrupting the receiver.  (The lock lives on the array object, so a
  *pre-existing writable view* of the same buffer can still reach it —
  numpy cannot enumerate aliases.  Don't write through such aliases before
  ``wait()``; this is the one part of the contract that cannot be
  enforced.)  The loan ends with exactly one snapshot —
  at delivery (the receiver takes ownership of a private, read-only copy)
  or at :meth:`SendRequest.wait`/``test`` for a still-undelivered message.
  Either way, once ``wait`` returns the buffer is genuinely reusable (the
  MPI contract) and nothing the sender does afterwards can reach what the
  receiver holds;
* blocking :meth:`send` keeps eager-buffered semantics (the buffer is
  reusable the moment the call returns) and therefore snapshots at post.

Received ``ndarray`` payloads are never writable in cooperative mode — a
receiver that wants to mutate must ``copy()`` explicitly (enforced:
in-place mutation raises ``ValueError``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .message import Message, RecvRequest, Request, SendRequest
from .network import Network
from .payload import freeze as _freeze
from .payload import nwords as payload_nwords


def _view(obj: Any) -> Any:
    """Zero-copy payload: read-only views for arrays, pass-through for
    everything else (containers are rebuilt around the views).

    Objects exposing ``comm_nwords`` declare themselves immutable message
    payloads (``COOVector``) and pass through untouched — the hot path of
    every sparse scheme.
    """
    if obj is None or hasattr(obj, "comm_nwords"):
        return obj
    if isinstance(obj, np.ndarray):
        v = obj.view()
        v.setflags(write=False)
        return v
    if isinstance(obj, tuple):
        return tuple(_view(v) for v in obj)
    if isinstance(obj, list):
        return [_view(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _view(v) for k, v in obj.items()}
    return obj


def _root_base(obj: np.ndarray) -> Any:
    """The owning object at the bottom of ``obj``'s view chain.

    ``None`` when ``obj`` owns its data; otherwise the deepest ``.base``
    — usually an ndarray, but possibly a non-array buffer (``bytes``,
    ``memoryview``, ``mmap`` for ``np.frombuffer`` arrays), which callers
    must handle.
    """
    base = obj.base
    while isinstance(base, np.ndarray) and base.base is not None:
        base = base.base
    return base


def _view_with_loans(obj: Any, net: Network,
                     loans: List[int]) -> Any:
    """Like :func:`_view`, but write-locks loanable sender buffers.

    Only arrays that own their (writable) data are loaned — the write lock
    on a *view* object would not stop mutation through its base, so shared
    views fall back to a snapshot.  Already-read-only arrays need no
    protection at all, and neither do self-sizing immutable payloads
    (``comm_nwords`` protocol, e.g. ``COOVector``).
    """
    if obj is None or hasattr(obj, "comm_nwords"):
        return obj
    if isinstance(obj, np.ndarray):
        if not obj.flags.writeable:
            # A buffer we already hold on loan for an earlier in-flight
            # message joins the loan, so the write lock survives until the
            # *last* message is delivered/sealed.
            entry = net._loans.get(id(obj))
            if entry is not None:
                entry[1] += 1
                loans.append(id(obj))
                v = obj.view()  # stays read-only after the loan is returned
                return v
            # The read-only flag of a *view* says nothing about its buffer:
            # walk to the owning array.  If that owner is on loan, this
            # flight joins the loan (the owner becomes writable again when
            # the last flight ends — the alias must stay protected until
            # then).  If the owner is writable, snapshot.  Only when the
            # owner itself is read-only (and not ours) is the buffer
            # genuinely immutable.
            base = _root_base(obj)
            if base is None:
                return obj
            if not isinstance(base, np.ndarray):
                # Non-array backing buffer (np.frombuffer): snapshot —
                # numpy flags cannot vouch for its immutability.
                return _freeze(obj, readonly=True)
            bentry = net._loans.get(id(base))
            if bentry is not None:
                bentry[1] += 1
                loans.append(id(base))
                return obj.view()
            if base.flags.writeable:
                return _freeze(obj, readonly=True)
            return obj
        if obj.base is not None:
            return _freeze(obj, readonly=True)
        loans.append(net.take_loan(obj))
        v = obj.view()
        v.setflags(write=False)
        return v
    if isinstance(obj, tuple):
        return tuple(_view_with_loans(v, net, loans) for v in obj)
    if isinstance(obj, list):
        return [_view_with_loans(v, net, loans) for v in obj]
    if isinstance(obj, dict):
        return {k: _view_with_loans(v, net, loans) for k, v in obj.items()}
    return obj


def send_snapshot(obj: Any, net: Network) -> Any:
    """Payload snapshot for a blocking (eager) ``send`` under the
    cooperative runner: what the receiver will hold.

    Mutable payloads are deep-copied read-only at post time (the buffer
    is reusable the moment ``send`` returns — the eager contract).  The
    PR-5 audit of the object-payload collectives (``bcast``,
    ``allgather_object``, ``gather``/``scatter``) showed the copy is
    avoidable for arrays that are already **read-only at post time**:
    nobody reachable through the posted view can write them, so they
    travel as zero-copy views, exactly like the immutable-payload
    (``comm_nwords``) fast path.  Two exclusions keep the audit honest:

    * an array (or the owner of its buffer) that is currently **on
      loan** to an in-flight ``isend`` is only temporarily read-only —
      it becomes writable again when the loan ends, so it is copied;
    * re-enabling writability by hand (``setflags(write=True)`` on an
      owning array you posted while read-only) and then mutating before
      delivery violates the reuse contract, same as writing through a
      pre-existing writable alias of a loaned ``isend`` buffer — numpy
      offers no deep immutability to enforce it.
    """
    if obj is None or hasattr(obj, "comm_nwords"):
        return obj
    if isinstance(obj, np.ndarray):
        if obj.flags.writeable:
            return _freeze(obj, readonly=True)
        base = _root_base(obj)
        if base is None:
            owner = obj
        elif isinstance(base, np.ndarray):
            if base.flags.writeable:
                # A read-only *view* of a writable buffer: the owner can
                # still mutate after the send returns — snapshot.
                return _freeze(obj, readonly=True)
            owner = base
        else:
            # Exotic backing buffer (bytes/memoryview/mmap): numpy flags
            # say nothing about its mutability — snapshot, as before.
            return _freeze(obj, readonly=True)
        if id(owner) in net._loans:
            # Read-only only while the loan lasts: snapshot.
            return _freeze(obj, readonly=True)
        return obj.view()
    if isinstance(obj, tuple):
        return tuple(send_snapshot(v, net) for v in obj)
    if isinstance(obj, list):
        return [send_snapshot(v, net) for v in obj]
    if isinstance(obj, dict):
        return {k: send_snapshot(v, net) for k, v in obj.items()}
    return _freeze(obj, readonly=True)


class AsyncRegion:
    """Issue-at-time context for NIC-progressed (non-blocking) operations.

    Code inside the region executes normally — messages book egress and
    ingress links at the rank's current simulated clock, so they contend
    with any other traffic — but on exit the rank's clock is rolled back
    to the region's entry time (``issue``), modeling an operation handed
    to the NIC while the rank's own timeline continues.  The region's
    completion time is kept in ``finish``; callers that must wait for the
    operation later advance the clock with
    ``comm._advance_clock(region.finish)``.

    This is the execution primitive of streaming sessions
    (:mod:`repro.allreduce.session`): a bucket's reduction is issued
    mid-backward at its release time and only :meth:`ReduceSession.finish`
    joins the outstanding completions.  On an exception the clock is left
    where it stopped (the abort path wants real times).
    """

    __slots__ = ("_comm", "issue", "finish")

    def __init__(self, comm: "SimComm"):
        self._comm = comm
        self.issue = 0.0
        self.finish = 0.0

    def __enter__(self) -> "AsyncRegion":
        self.issue = self._comm.clock
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish = self._comm.clock
        if exc_type is None:
            self._comm.rewind_clock(self.issue)
        return False


class SimComm:
    """Communicator bound to one rank of a :class:`Network`.

    ``group`` (elastic recovery only) restricts the communicator to an
    ordered subset of the network's physical rank ids ("slots"):
    ``rank``/``size`` and every peer argument are then *group-relative*,
    and all network operations translate through the group.  ``slot`` is
    the physical id (== ``rank`` for a full-world communicator) — it is
    what indexes per-rank network state such as ``net.words_recv``.
    """

    def __init__(self, network: Network, rank: int,
                 group: Optional[Tuple[int, ...]] = None):
        if group is None:
            if not 0 <= rank < network.nranks:
                raise ValueError(
                    f"rank {rank} out of range for P={network.nranks}")
            slot = rank
            size = network.nranks
        else:
            group = tuple(group)
            if not 0 <= rank < len(group):
                raise ValueError(
                    f"rank {rank} out of range for group of {len(group)}")
            slot = group[rank]
            size = len(group)
        self.net = network
        self.rank = rank
        self.size = size
        self.slot = slot
        self._group = group
        self._phase_times: dict[str, float] = {}
        #: lockstep rank-batching handle, published by the trainer
        #: (see :mod:`repro.train.rankbatch`); None = per-rank execution
        self.rank_batch = None

    def _to_slot(self, r: int) -> int:
        """Translate a group-relative peer rank to its network slot."""
        if self._group is None:
            return r
        return self._group[r]

    # ------------------------------------------------------------------
    # Simulated clock
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return float(self.net.clocks[self.slot])

    def _advance_clock(self, t: float) -> None:
        if t > self.net.clocks[self.slot]:
            self.net.clocks[self.slot] = t

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of local computation to this rank.

        Under a fault plan the charge is scaled by the rank's active
        straggler factor, and a charge that crosses the rank's planned
        crash time kills it on the spot (clock pinned at the crash time).
        """
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        net = self.net
        slot = self.slot
        f = net.faults
        if f is not None:
            t0 = net.clocks[slot]
            if f.straggler[slot]:
                seconds *= f.compute_factor(slot, t0)
            t1 = t0 + seconds
            ct = f.crash_time[slot]
            if t1 >= ct:
                net.clocks[slot] = ct if ct > t0 else t0
                raise net._crash_outside_lock(slot)
            net.clocks[slot] = t1
            return
        net.clocks[slot] += seconds

    def rewind_clock(self, t: float) -> None:
        """Set this rank's clock, allowing it to move *backwards*.

        Only two callers may do this, both modeling work that proceeds off
        the rank's critical path: :class:`AsyncRegion` (NIC-progressed
        communication) and the ξ-measurement rollback.  Link occupancy and
        traffic counters are never rewound here — a message posted after a
        rewind still queues behind everything already booked.
        """
        self.net.clocks[self.slot] = t

    def async_region(self) -> AsyncRegion:
        """Open an :class:`AsyncRegion` (see its docstring)."""
        return AsyncRegion(self)

    def compute_words(self, n: int) -> None:
        """Charge a local reduction over ``n`` words (gamma model)."""
        self.compute(self.net.model.gamma * max(0, n))

    def compute_scan(self, n: int) -> None:
        """Charge a linear scan/compaction over ``n`` words."""
        self.compute(self.net.model.scan_time * max(0, n))

    def compute_sort(self, n: int) -> None:
        """Charge an accelerator sort of ``n`` words (n log n scaling)."""
        n = max(0, n)
        self.compute(self.net.model.sort_time * n * max(1.0, np.log2(max(n, 2))))

    def compute_topk(self, n: int, k: int) -> None:
        """Charge a GPU top-k selection over ``n`` words (the formula
        lives in :meth:`NetworkModel.topk_seconds`)."""
        self.compute(self.net.model.topk_seconds(n, k))

    def compute_flops(self, flops: float) -> None:
        """Charge ``flops`` floating point operations of model compute."""
        self.compute(self.net.model.flop_time * max(0.0, flops))

    # ------------------------------------------------------------------
    # Phase accounting (used for the paper's runtime breakdowns)
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Attribute simulated time elapsed in this block to ``name``."""
        start = self.clock
        try:
            yield
        finally:
            self._phase_times[name] = (
                self._phase_times.get(name, 0.0) + self.clock - start)

    def phase_times(self, reset: bool = False) -> dict[str, float]:
        out = dict(self._phase_times)
        if reset:
            self._phase_times.clear()
        return out

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, *,
             nwords: Optional[int] = None) -> None:
        """Blocking (eager) send; sender clock advances past egress
        serialization of the message.  The buffer is reusable on return."""
        size = payload_nwords(obj) if nwords is None else int(nwords)
        payload = (send_snapshot(obj, self.net) if self.net.cooperative
                   else _freeze(obj, readonly=self.net.sanitize))
        _, done = self.net.post(self.slot, self._to_slot(dest), tag,
                                payload, size, self.clock)
        self._advance_clock(done)

    def isend(self, obj: Any, dest: int, tag: int = 0, *,
              nwords: Optional[int] = None) -> SendRequest:
        """Non-blocking send; the egress slot is booked now (DMA-like) and
        ``wait()`` advances the clock to when the buffer is reusable.

        Cooperative mode ships a zero-copy view and puts the buffer on loan
        until delivery (see the module docstring)."""
        size = payload_nwords(obj) if nwords is None else int(nwords)
        loan_keys: List[int] = []
        if self.net.cooperative:
            payload = _view_with_loans(obj, self.net, loan_keys)
        else:
            # Sanitizer mode write-locks the receiver's copy so threads-
            # mode runs enforce the same received-arrays-are-read-only
            # contract the cooperative runner always enforces.
            payload = _freeze(obj, readonly=self.net.sanitize)
        msg, done = self.net.post(self.slot, self._to_slot(dest), tag,
                                  payload, size, self.clock)
        if loan_keys:
            msg.loans = tuple(loan_keys)
        self.compute(self.net.model.o_inject)
        return SendRequest(self, done, _message=msg)

    def isend_batch(self, items: Sequence[Tuple[Any, int, int]],
                    ) -> List[SendRequest]:
        """Post a batch of non-blocking sends in one link-booking pass.

        ``items`` is a sequence of ``(obj, dest, tag)`` tuples in program
        order.  Bit-identical (clocks, link bookings, counters, payload
        ownership) to calling :meth:`isend` once per tuple, but the egress
        link is booked for the whole batch by one
        :meth:`NetworkModel.serialize_batch` scan and the per-message
        Python overhead is paid once — the fan-out shape of Ok-Topk's
        split-and-reduce buckets and of eager per-bucket session
        reductions.
        """
        if not items:
            return []
        net = self.net
        coop = net.cooperative
        batch: List[Tuple[int, int, Any, int]] = []
        all_loans: List[List[int]] = []
        for obj, dest, tag in items:
            size = payload_nwords(obj)
            loan_keys: List[int] = []
            if coop:
                payload = _view_with_loans(obj, net, loan_keys)
            else:
                payload = _freeze(obj, readonly=net.sanitize)
            all_loans.append(loan_keys)
            batch.append((self._to_slot(dest), tag, payload, size))
        msgs, dones = net.post_batch(self.slot, batch, self.clock)
        for msg, loan_keys in zip(msgs, all_loans):
            if loan_keys:
                msg.loans = tuple(loan_keys)
        o_inject = net.model.o_inject
        if o_inject:
            for _ in msgs:
                self.compute(o_inject)
        return [SendRequest(self, float(done), _message=msg)
                for msg, done in zip(msgs, dones)]

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from ``(source, tag)``."""
        msg = self._match_blocking(source, tag)
        self._deliver(msg)
        return msg.payload

    def irecv(self, source: int, tag: int = 0) -> RecvRequest:
        return RecvRequest(self, source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: Optional[int] = None, *,
                 nwords: Optional[int] = None) -> Any:
        """Simultaneous exchange; the common building block of the dense
        collectives (recursive doubling/halving, ring steps).

        Audited zero-copy fast path under the cooperative runner: the
        outgoing payload is a plain read-only view with no loan bookkeeping.
        Callers must not mutate the region they passed until the matching
        receive on the peer has completed (all library collectives satisfy
        this; see the module docstring).
        """
        if recvtag is None:
            recvtag = sendtag
        size = payload_nwords(obj) if nwords is None else int(nwords)
        payload = _view(obj) if self.net.cooperative \
            else _freeze(obj, readonly=self.net.sanitize)
        _, done = self.net.post(self.slot, self._to_slot(dest), sendtag,
                                payload, size, self.clock)
        self.compute(self.net.model.o_inject)
        out = self.recv(source, recvtag)
        self._advance_clock(done)
        return out

    def waitall(self, requests: Sequence[Request]) -> List[Any]:
        """Complete a set of requests.

        Receives are matched first and their ingress slots are booked in
        order of simulated arrival (earliest first) so that the contention
        model is independent of the order the caller listed the requests.
        """
        recvs = [r for r in requests if isinstance(r, RecvRequest)
                 and not r.completed]
        if recvs:
            # Generator-engine pre-flight: park (without consuming any
            # message) until every channel below can satisfy its pops, so
            # the retried call starts from unconsumed state.  The hook is
            # absent on the other schedulers and a carrier-thread no-op.
            ensure = getattr(self.net._sched, "ensure_recvs", None)
            if ensure is not None:
                ensure(self.slot,
                       [(self._to_slot(r.source), r.tag) for r in recvs])
        msgs: List[tuple[Message, RecvRequest]] = []
        for r in recvs:
            msgs.append((self._match_blocking(r.source, r.tag), r))
        msgs.sort(key=lambda mr: (mr[0].t_first, mr[0].src, mr[0].seq))
        if msgs:
            # One batched ingress-booking scan over the sorted arrivals
            # (bit-identical to delivering them one by one); the clock
            # advances to the last completion, which the serialization
            # fold guarantees is the latest.
            t_done = self.net.deliver_batch([m for m, _ in msgs])
            self._advance_clock(t_done)
            for msg, req in msgs:
                req._message = msg
                req.completed = True
        results: List[Any] = []
        for r in requests:
            if isinstance(r, RecvRequest):
                results.append(r.wait())
            else:
                r.wait()
                results.append(None)
        return results

    # ------------------------------------------------------------------
    # Fused collectives (engine-level macro-collectives)
    # ------------------------------------------------------------------
    def fused_collective(self, sig: tuple, payload: Any, executor) -> Any:
        """Enter a fused collective rendezvous (cooperative engine only;
        callers gate on :func:`repro.comm.fused._available` first).

        Parks this rank until every rank has arrived with an identical
        ``sig``, lets the last arrival run ``executor(net, sig,
        payloads)`` — one vectorized dispatch replacing the per-message
        round trips — and returns this rank's slot of the result list.
        See :mod:`repro.comm.fused` and
        :meth:`repro.comm.engine.CoopEngine.collective`.
        """
        return self.net._sched.collective(self.rank, sig, payload, executor)

    # internal hooks used by RecvRequest/SendRequest ---------------------
    def _try_match(self, source: int, tag: int) -> Optional[Message]:
        return self.net.try_match(self.slot, self._to_slot(source), tag)

    def _match_blocking(self, source: int, tag: int) -> Message:
        return self.net.match_blocking(self.slot, self._to_slot(source), tag)

    def _deliver(self, msg: Message) -> None:
        t_done = self.net.deliver(msg)
        self._advance_clock(t_done)

    def _seal(self, msg: Message) -> None:
        """Snapshot a still-undelivered loaned payload so the sender's
        buffer becomes reusable (called by ``SendRequest.wait``)."""
        msg.payload = _freeze(msg.payload, readonly=True)
        self.net.release_loans(msg)

    # ------------------------------------------------------------------
    # Fault tolerance (see repro.comm.faults)
    # ------------------------------------------------------------------
    def maybe_crash(self, iteration: Optional[int] = None) -> None:
        """Fire this rank's iteration-pinned crash, if the fault plan has
        one for ``iteration`` (1-based).  Called by the trainer at the top
        of each training iteration; a no-op without a plan.
        """
        f = self.net.faults
        if f is None or iteration is None:
            return
        slot = self.slot
        if f.crash_iter[slot] == iteration:
            raise self.net._crash_outside_lock(slot)

    def shrink(self) -> "SimComm":
        """Collective over all survivors: agree on the set of live ranks
        and return a new communicator over that shrunk, re-numbered world
        (the ULFM ``MPI_Comm_shrink`` analog).

        Every surviving rank must call this (typically from its
        ``RankFailedError`` handler).  On return the survivors' clocks are
        synchronized past the failure-detection bound and all in-flight
        messages from the old world have been discarded.
        """
        group = self.net.shrink(self.slot)
        return SimComm(self.net, group.index(self.slot), group=group)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def ranks(self) -> Iterable[int]:
        return range(self.size)

    def peers(self) -> Iterable[int]:
        return (r for r in range(self.size) if r != self.rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size}, clock={self.clock:.3e})"
