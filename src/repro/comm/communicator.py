"""Per-rank communicator: the mpi4py-flavoured API the algorithms program to.

Each SPMD rank owns one :class:`SimComm`.  Simulated time is tracked per rank
(``comm.clock``); point-to-point calls advance it according to the network
model, and :meth:`compute` charges local computation.  Blocking semantics are
*eager* (a send never blocks on the receiver), so algorithms written against
this API cannot deadlock through send-send cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from .message import Message, RecvRequest, Request, SendRequest
from .network import Network
from .payload import nwords as payload_nwords


def _freeze(obj: Any) -> Any:
    """Snapshot mutable payloads so a sender mutating its buffer after a
    send cannot corrupt the receiver (simulates a buffered/eager send)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_freeze(v) for v in obj)
    if isinstance(obj, list):
        return [_freeze(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _freeze(v) for k, v in obj.items()}
    return obj


class SimComm:
    """Communicator bound to one rank of a :class:`Network`."""

    def __init__(self, network: Network, rank: int):
        if not 0 <= rank < network.nranks:
            raise ValueError(f"rank {rank} out of range for P={network.nranks}")
        self.net = network
        self.rank = rank
        self.size = network.nranks
        self._phase_times: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Simulated clock
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return float(self.net.clocks[self.rank])

    def _advance_clock(self, t: float) -> None:
        if t > self.net.clocks[self.rank]:
            self.net.clocks[self.rank] = t

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of local computation to this rank."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        self.net.clocks[self.rank] += seconds

    def compute_words(self, n: int) -> None:
        """Charge a local reduction over ``n`` words (gamma model)."""
        self.compute(self.net.model.gamma * max(0, n))

    def compute_scan(self, n: int) -> None:
        """Charge a linear scan/compaction over ``n`` words."""
        self.compute(self.net.model.scan_time * max(0, n))

    def compute_sort(self, n: int) -> None:
        """Charge an accelerator sort of ``n`` words (n log n scaling)."""
        n = max(0, n)
        self.compute(self.net.model.sort_time * n * max(1.0, np.log2(max(n, 2))))

    def compute_topk(self, n: int, k: int) -> None:
        """Charge a GPU top-k selection over ``n`` words.

        Modeled as ``sort_time * n * log2(k)`` — between the bitonic
        ``n log^2 k`` worst case and radix-select's ``n`` (torch.topk, the
        primitive the paper's baselines call, sits in this regime)."""
        n, k = max(0, n), max(2, k)
        self.compute(self.net.model.sort_time * n * np.log2(k))

    def compute_flops(self, flops: float) -> None:
        """Charge ``flops`` floating point operations of model compute."""
        self.compute(self.net.model.flop_time * max(0.0, flops))

    # ------------------------------------------------------------------
    # Phase accounting (used for the paper's runtime breakdowns)
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Attribute simulated time elapsed in this block to ``name``."""
        start = self.clock
        try:
            yield
        finally:
            self._phase_times[name] = (
                self._phase_times.get(name, 0.0) + self.clock - start)

    def phase_times(self, reset: bool = False) -> dict[str, float]:
        out = dict(self._phase_times)
        if reset:
            self._phase_times.clear()
        return out

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, *,
             nwords: Optional[int] = None) -> None:
        """Blocking (eager) send; sender clock advances past egress
        serialization of the message."""
        size = payload_nwords(obj) if nwords is None else int(nwords)
        _, done = self.net.post(self.rank, dest, tag, _freeze(obj), size,
                                self.clock)
        self._advance_clock(done)

    def isend(self, obj: Any, dest: int, tag: int = 0, *,
              nwords: Optional[int] = None) -> SendRequest:
        """Non-blocking send; the egress slot is booked now (DMA-like) and
        ``wait()`` advances the clock to when the buffer is reusable."""
        size = payload_nwords(obj) if nwords is None else int(nwords)
        _, done = self.net.post(self.rank, dest, tag, _freeze(obj), size,
                                self.clock)
        self.compute(self.net.model.o_inject)
        return SendRequest(self, done)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from ``(source, tag)``."""
        msg = self._match_blocking(source, tag)
        self._deliver(msg)
        return msg.payload

    def irecv(self, source: int, tag: int = 0) -> RecvRequest:
        return RecvRequest(self, source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: Optional[int] = None, *,
                 nwords: Optional[int] = None) -> Any:
        """Simultaneous exchange; the common building block of the dense
        collectives (recursive doubling/halving, ring steps)."""
        if recvtag is None:
            recvtag = sendtag
        req = self.isend(obj, dest, sendtag, nwords=nwords)
        out = self.recv(source, recvtag)
        req.wait()
        return out

    def waitall(self, requests: Sequence[Request]) -> List[Any]:
        """Complete a set of requests.

        Receives are matched first and their ingress slots are booked in
        order of simulated arrival (earliest first) so that the contention
        model is independent of the order the caller listed the requests.
        """
        recvs = [r for r in requests if isinstance(r, RecvRequest)
                 and not r.completed]
        msgs: List[tuple[Message, RecvRequest]] = []
        for r in recvs:
            msgs.append((self._match_blocking(r.source, r.tag), r))
        msgs.sort(key=lambda mr: (mr[0].t_first, mr[0].src, mr[0].seq))
        for msg, req in msgs:
            self._deliver(msg)
            req._message = msg
            req.completed = True
        results: List[Any] = []
        for r in requests:
            if isinstance(r, RecvRequest):
                results.append(r.wait())
            else:
                r.wait()
                results.append(None)
        return results

    # internal hooks used by RecvRequest --------------------------------
    def _try_match(self, source: int, tag: int) -> Optional[Message]:
        return self.net.try_match(self.rank, source, tag)

    def _match_blocking(self, source: int, tag: int) -> Message:
        return self.net.match_blocking(self.rank, source, tag)

    def _deliver(self, msg: Message) -> None:
        t_done = self.net.deliver(msg)
        self._advance_clock(t_done)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def ranks(self) -> Iterable[int]:
        return range(self.size)

    def peers(self) -> Iterable[int]:
        return (r for r in range(self.size) if r != self.rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size}, clock={self.clock:.3e})"
