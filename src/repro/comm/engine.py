"""Deterministic cooperative SPMD engine (the default runner).

The seed simulator ran one free-running OS thread per rank, serialized on a
single network lock, and woke blocked receivers through condition variables
with a 0.2 s poll — so every message paid for lock contention, GIL thrash
and wake-up latency.  This engine replaces that with **cooperative
scheduling**: rank programs still look like ordinary blocking MPI code, but
control switches between ranks only at blocking points (an unmatched
``recv``/``waitall``), driven by a single logical thread of control.

Because ``greenlet``-style stackful coroutines are not available, each rank
continuation is carried by a *parked* OS thread: the thread exists only to
hold the rank's Python stack while it is suspended.  Execution is strictly
serialized — exactly one rank (or the launcher) holds the *token* at any
time, and hand-offs are direct (blocking rank → next runnable rank) with no
scheduler bounce in between.  Consequences:

* the network hot path is single-threaded: no locks, no condition
  variables, no polling (see :mod:`repro.comm.network`);
* immutable payloads and the audited ``sendrecv`` path travel zero-copy,
  and ``isend`` buffers are protected by a write-lock loan ending in a
  single snapshot — see :mod:`repro.comm.communicator`;
* scheduling is deterministic: runnable ranks run in FIFO order, a rank
  blocked on ``(source, tag)`` is made runnable exactly when a matching
  message is posted, and simulated time is schedule-independent anyway
  (links are booked in program order), so results, traffic counters and
  makespans are bit-identical to the threaded runner;
* a global deadlock (every live rank blocked on a receive that can never
  match) is *detected* and reported as :class:`repro.errors.DeadlockError`
  instead of hanging.
"""

from __future__ import annotations

import inspect
import random
import threading
from collections import Counter, deque
from typing import Any, Callable, Dict, List, Tuple

from typing import Optional

from ..errors import CommError, DeadlockError, RankFailedError, \
    SimulatedRankCrash
from .communicator import SimComm
from .fused import fusion_enabled
from .message import Message
from .network import Network
from .payload import freeze as _freeze


class _Rendezvous:
    """State of one in-progress fused collective (engine-level
    macro-collective).  At most one exists at a time: every rank of the
    network participates in every collective, so a rank cannot reach
    rendezvous ``g + 1`` before generation ``g`` completed."""

    __slots__ = ("sig", "payloads", "results", "count")

    def __init__(self, sig: tuple, nranks: int):
        self.sig = sig
        self.payloads: list = [None] * nranks
        self.results: list = []
        self.count = 0


class CoopEngine:
    """One-shot cooperative scheduler for a single SPMD section."""

    def __init__(self, net: Network, nranks: int, *,
                 fused: Optional[bool] = None,
                 schedule_seed: Optional[int] = None):
        self.net = net
        self.nranks = nranks
        #: fused-collective fast path (see repro.comm.fused); resolved
        #: from REPRO_FUSED when not given explicitly
        self.fused = fusion_enabled() if fused is None else bool(fused)
        #: schedule-perturbation source (sanitizer race detector): when
        #: set, :meth:`_pop_ready` picks a seeded-random runnable rank
        #: instead of the FIFO head.  Simulated time is
        #: schedule-independent (links are booked in program order), so a
        #: correct program is bit-identical under any seed; a program
        #: whose outcome shifts is communicating through shared Python
        #: state instead of the network.
        self._sched_rng = (random.Random(schedule_seed)
                          if schedule_seed is not None else None)
        #: in-progress fused collective, if any
        self._rv: Optional[_Rendezvous] = None
        #: ranks parked at the rendezvous (in arrival order)
        self._rv_parked: list[int] = []
        # Parking slots: raw locks are the cheapest wait/wake primitive in
        # CPython (a bare futex, ~3x cheaper than Event).  Each lock starts
        # acquired; "wake" = release, "park" = acquire.  The engine's
        # ready/waiting bookkeeping guarantees one wake per park, and a
        # wake-before-park simply makes the park fall through, so no
        # wakeups can be lost.
        self._resume = [threading.Lock() for _ in range(nranks)]
        for lock in self._resume:
            lock.acquire()
        self._main = threading.Lock()
        self._main.acquire()
        self._ready: deque[int] = deque()
        #: rank -> (source, tag) it is blocked on
        self._waiting: Dict[int, Tuple[int, int]] = {}
        #: ranks suspended at the elastic shrink barrier
        self._shrink_waiting: set[int] = set()

    # ------------------------------------------------------------------
    #

    def run(self, fn: Callable[..., Any], args: tuple, kwargs: dict,
            ) -> Tuple[List[Any], Dict[int, BaseException]]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank to completion.

        Returns per-rank results and the failure map (same attribution
        rules as the threaded runner: secondary ``CommError`` unwinds
        caused by an abort are suppressed unless they are the origin).
        """
        results: List[Any] = [None] * self.nranks
        failures: Dict[int, BaseException] = {}
        net = self.net
        if net._sched is not None:
            raise RuntimeError("network already driven by another engine")
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, fn, args, kwargs, results, failures),
                daemon=True, name=f"coop-rank-{rank}")
            for rank in range(self.nranks)
        ]
        net._sched = self
        net._begin_section()
        try:
            for t in threads:
                t.start()
            # Hand the token to rank 0; ranks then pass it among themselves
            # and the launcher regains control only when all are done.
            self._ready.extend(range(self.nranks))
            self._hand_off()
            self._main.acquire()
        finally:
            net._sched = None
            self._drain_loans()
        for t in threads:
            t.join()
        return results, failures

    def _drain_loans(self) -> None:
        """End every outstanding loan when the SPMD section closes.

        A message that was posted but never received (legal under eager
        semantics) or orphaned by an abort would otherwise leave its
        sender's buffer read-only forever.  Undelivered loaned payloads are
        sealed first so a network reused for a later section still hands
        receivers data from before the loan ended."""
        net = self.net
        for mailbox in net._queues:
            for chan in mailbox.values():
                for msg in chan:
                    if msg.loans:
                        msg.payload = _freeze(msg.payload, readonly=True)
                        net.release_loans(msg)
        # Entries whose messages are gone (popped but never delivered when
        # an abort unwound the receiver): restore writability directly.
        for key in list(net._loans):
            arr, _count = net._loans.pop(key)
            if net.sanitize and arr.flags.writeable:
                net._sanitize_violations.append(
                    f"array(shape={arr.shape}, dtype={arr.dtype}) was "
                    f"made writable during its loan window (loan still "
                    f"open at section end)")
            arr.setflags(write=True)

    # ------------------------------------------------------------------
    # Network-facing hooks (called while a rank thread holds the token)
    # ------------------------------------------------------------------
    def on_post(self, msg: Message) -> None:
        """A message was appended to ``msg.dst``'s mailbox: make the
        destination runnable if this is what it was blocked on."""
        want = self._waiting.get(msg.dst)
        if want is not None and msg.matches(*want):
            del self._waiting[msg.dst]
            self._ready.append(msg.dst)

    def on_post_batch(self, msgs) -> None:
        """Batched :meth:`on_post`: one waiting-map probe per message, no
        per-message call overhead (the :meth:`Network.post_batch` path).
        Semantically identical to calling ``on_post`` in message order —
        once a destination is woken it leaves the waiting map, so later
        messages of the batch cannot re-wake it."""
        waiting = self._waiting
        if not waiting:
            return
        ready = self._ready
        for msg in msgs:
            want = waiting.get(msg.dst)
            if want is not None and msg.matches(*want):
                del waiting[msg.dst]
                ready.append(msg.dst)

    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        """Pop the earliest matching message for ``dst``, suspending the
        rank until one is available."""
        net = self.net
        while True:
            net._check_abort()
            if net.faults is not None:
                net._crash_check(dst)
            msg = net._pop_match(dst, source, tag)
            if msg is not None:
                return msg
            if net._dead and source in net._failed_peers():
                raise net._fail_detect(dst)
            self._waiting[dst] = (source, tag)
            self._suspend(dst)

    def collective(self, rank: int, sig: tuple, payload, executor):
        """Run a fused collective: park ``rank`` at the rendezvous until
        every rank has arrived, then execute once, centrally.

        ``sig`` is the collective's structural signature — it must be
        identical on every rank (same collective, entered in the same
        global order; SPMD programs satisfy this by construction, and a
        mismatch aborts the run instead of deadlocking rank by rank).
        ``payload`` carries the rank's data contribution and ``executor``
        (a module-level function, identical across ranks) receives
        ``(net, sig, payloads)`` and returns the per-rank results.

        The last arrival executes while holding the token, so the whole
        collective — schedule replay and stacked-numpy reduction — runs
        as one uninterrupted dispatch; the parked ranks are then made
        runnable in rank order.  Aborts (including the deadlock detector,
        which treats rendezvous-parked ranks as blocked) wake parked
        ranks through :meth:`_hand_off`'s abort branch.
        """
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(rank)
        if net._dead:
            # The rendezvous needs every rank; a declared death means it
            # can never complete.
            raise net._fail_detect(rank)
        rv = self._rv
        if rv is None:
            rv = self._rv = _Rendezvous(sig, self.nranks)
        elif rv.sig != sig:
            exc = CommError(
                f"fused collective mismatch: rank {rank} entered {sig[0]!r} "
                f"{sig!r} while other ranks are in {rv.sig!r} — all ranks "
                f"must run the same collectives in the same order")
            net.abort(exc)
            raise exc
        rv.payloads[rank] = payload
        rv.count += 1
        if rv.count < self.nranks:
            self._rv_parked.append(rank)
            self._suspend(rank)
            net._check_abort()
            if not rv.results:
                # Woken by the revoke path, not by completion: a
                # participant died while we were parked.
                raise net._fail_detect(rank)
            return rv.results[rank]
        # Last arrival: run the whole collective as one fused dispatch.
        self._rv = None
        rv.results = executor(net, sig, rv.payloads)
        self._finish_rendezvous(rv)
        return rv.results[rank]

    def _finish_rendezvous(self, rv: _Rendezvous) -> None:
        """Ready the parked participants of a completed rendezvous in
        rank order (hook: the generator engine also has to hand each
        parked continuation its result slot)."""
        parked = self._rv_parked
        self._rv_parked = []
        parked.sort()
        self._ready.extend(parked)

    def shrink(self, rank: int) -> tuple:
        """Engine side of :meth:`Network.shrink`: park ``rank`` at the
        barrier; the arrival (or exit event) that makes the barrier
        complete finishes the shrink and readies the parked ranks."""
        net = self.net
        net._failstop.discard(rank)
        net._shrink_parked.add(rank)
        epoch = net._shrink_epoch
        self._check_shrink()
        if net._shrink_epoch == epoch:
            self._shrink_waiting.add(rank)
            self._suspend(rank)
            net._check_abort()
        return net._shrink_result

    def _check_shrink(self) -> None:
        """Re-evaluate shrink-barrier completion (called at every park
        and rank-exit event)."""
        if self.net._maybe_finish_shrink():
            woken = sorted(self._shrink_waiting)
            self._shrink_waiting.clear()
            self._ready.extend(woken)

    def try_match(self, dst: int, source: int, tag: int):
        """Non-blocking probe.  On a miss, yield the token once (requeue
        ``dst`` behind the currently runnable ranks) before answering, so
        busy-poll loops (``while not req.test()``) cannot starve the very
        rank that would post the matching message.

        When no other rank is runnable the probe simply answers None —
        never an abort: a miss is a legal answer, and a program may poll a
        bounded number of times and then move on (and thereby unblock its
        peers).  An *unbounded* poll of a receive that can never match
        spins, exactly as it does under the threaded runner; deadlock
        detection applies to blocked receives only, because only there can
        the engine prove nobody can make progress."""
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(dst)
        msg = net._pop_match(dst, source, tag)
        if msg is None and net._dead and source in net._failed_peers():
            raise net._fail_detect(dst)
        if msg is not None or not self._ready:
            return msg
        self._ready.append(dst)
        self._suspend(dst)
        net._check_abort()
        return net._pop_match(dst, source, tag)

    # ------------------------------------------------------------------
    # Token passing
    # ------------------------------------------------------------------
    def _suspend(self, rank: int) -> None:
        """Give up the token and park until resumed."""
        self._hand_off()
        self._resume[rank].acquire()

    def _hand_off(self) -> None:
        """Pass the token to the next runnable rank.

        If nobody is runnable but ranks are still blocked, then (in
        priority order): under a declared death, wake the blocked ranks
        that can now prove their operation will never complete (parked
        rendezvous first — their unwind fail-stops them, which makes
        receives *from* them detectable — then receives whose source is a
        failed peer), one at a time, so each raises ``RankFailedError``
        at its own blocking point; otherwise this is either the tail of
        an abort (wake one so it observes the abort and unwinds, which
        chains to the rest) or a genuine deadlock (declare it with the
        full parked-rank report, then unwind the same way).  With no live
        ranks left, control returns to the launcher.
        """
        if self._ready:
            self._resume[self._pop_ready()].release()
            return
        rank = self._next_blocked()
        if rank is not None:
            self._resume[rank].release()
            return
        self._main.release()

    def _pop_ready(self) -> int:
        """Take the next runnable rank: FIFO head normally, a
        seeded-random pick under schedule perturbation (the relative
        order of the ranks left behind is preserved)."""
        ready = self._ready
        rng = self._sched_rng
        if rng is not None and len(ready) > 1:
            i = rng.randrange(len(ready))
            ready.rotate(-i)
            rank = ready.popleft()
            ready.rotate(i)
            return rank
        return ready.popleft()

    def _next_blocked(self) -> Optional[int]:
        """Pick (and un-book) the next blocked rank to wake when nobody
        is runnable, following the priority order documented in
        :meth:`_hand_off`; ``None`` means no rank is blocked (the
        section is complete).  Shared with the generator engine, whose
        "wake" is a re-step instead of a lock release."""
        if not (self._waiting or self._rv_parked or self._shrink_waiting):
            return None
        net = self.net
        if not net.aborted:
            if net._dead:
                if self._rv_parked:
                    rank = min(self._rv_parked)
                    self._rv_parked.remove(rank)
                    return rank
                failed = net._failed_peers()
                cand = [r for r, st in self._waiting.items()
                        if st[0] in failed]
                if cand:
                    rank = min(cand)
                    del self._waiting[rank]
                    return rank
                # Shrink completion is re-checked at every park and
                # exit event, so reaching here with only live-source
                # receives left is a genuine deadlock.
            self._declare_deadlock()
        if self._waiting:
            rank = min(self._waiting)
            del self._waiting[rank]
        elif self._rv_parked:
            rank = min(self._rv_parked)
            self._rv_parked.remove(rank)
        else:
            rank = min(self._shrink_waiting)
            self._shrink_waiting.remove(rank)
        return rank

    def _declare_deadlock(self) -> None:
        """Abort with a :class:`DeadlockError` reporting every parked
        rank: the operation it is blocked on (receive channel, collective
        signature, or the shrink barrier) and its simulated clock."""
        net = self.net
        clocks = net.clocks
        blocked: list[dict] = []
        parts: list[str] = []
        for r, (s, t) in sorted(self._waiting.items()):
            blocked.append({"rank": r, "op": "recv", "source": s,
                            "tag": t, "clock": clocks[r]})
            parts.append(f"rank {r} waiting on recv(source={s}, tag={t}) "
                         f"at t={clocks[r]:.3e}s")
        if self._rv_parked:
            sig = self._rv.sig if self._rv is not None else ("?",)
            for r in sorted(self._rv_parked):
                blocked.append({"rank": r, "op": "collective", "sig": sig,
                                "clock": clocks[r]})
                parts.append(
                    f"rank {r} parked at the {sig[0]!r} fused-collective "
                    f"rendezvous (sig={sig!r}) at t={clocks[r]:.3e}s")
        for r in sorted(self._shrink_waiting):
            blocked.append({"rank": r, "op": "shrink", "clock": clocks[r]})
            parts.append(f"rank {r} parked at the elastic shrink barrier "
                         f"at t={clocks[r]:.3e}s")
        msg = (f"all {len(blocked)} live rank(s) blocked on receives or "
               f"collective rendezvous that can never match: "
               + "; ".join(parts))
        if net._dead:
            msg += f" [dead ranks: {sorted(net._dead)}]"
        net.abort(DeadlockError(msg, blocked=blocked))

    # ------------------------------------------------------------------
    # Per-rank thread body
    # ------------------------------------------------------------------
    def _rank_main(self, rank: int, fn: Callable[..., Any], args: tuple,
                   kwargs: dict, results: List[Any],
                   failures: Dict[int, BaseException]) -> None:
        self._resume[rank].acquire()  # parked until first scheduled
        net = self.net
        comm = SimComm(net, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except SimulatedRankCrash as exc:
            # Planned fail-stop: no abort — survivors detect the death
            # through the revoke state and may recover elastically.
            failures[rank] = exc
        except RankFailedError as exc:
            # A survivor that chose not to (or could not) recover: no
            # abort either — the revoke bookkeeping keeps its peers
            # detecting/unwinding, and the launcher aggregates.
            failures[rank] = exc
        except CommError as exc:
            # Secondary failure caused by another rank's abort: record only
            # if we are the first (i.e. the genuine origin).
            if not net.aborted or not failures:
                failures[rank] = exc
            net.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            failures[rank] = exc
            net.abort(exc)
        finally:
            try:
                net._on_rank_exit(rank)
                self._check_shrink()
                self._hand_off()
            except BaseException:  # pragma: no cover - invariant violated
                # Fail open: never leave the launcher parked forever.
                try:
                    self._main.release()
                except RuntimeError:
                    pass
                raise


# ---------------------------------------------------------------------------
# Generator engine: continuation-passing without carrier threads
# ---------------------------------------------------------------------------
class _WouldBlock(BaseException):
    """Internal control-flow signal of :class:`GenEngine`: a blocking
    primitive, executed on the trampoline thread, found it would have to
    suspend.  The engine catches it, leaves the rank parked (the
    bookkeeping was already done by the raiser) and retries the same
    operation when the rank is woken.  Every primitive that raises it is
    retry-idempotent: the pre-park section only checks state or registers
    the rank in a wait set, so re-running it after the wake reproduces
    the threaded engine's post-wake code path exactly.

    Derived from ``BaseException`` so a program-level ``except
    Exception`` cannot swallow a suspension.  Note it unwinds through
    the *engine's* frames only — the rank program itself is suspended at
    its ``yield`` and sees nothing.
    """


class Call:
    """Generator-program escape hatch: ``result = yield Call(fn)`` runs
    ``fn()`` on the rank's lazily-spawned carrier thread, where blocking
    communication parks the OS thread exactly as under
    :class:`CoopEngine`.  Needed for subroutines that are *not*
    retry-idempotent — anything that posts messages before it might
    block (``sendrecv``, the dense collectives, reduce sessions).  Plain
    thunks (``yield lambda: ...``) stay on the trampoline and cover
    ``recv``, ``irecv``/``waitall``, ``isend``, compute charges and
    fused collectives."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]):
        self.fn = fn


def drive_program(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Adapt a generator rank-program to a plain blocking one.

    The wrapper trampolines the generator on the calling (rank) thread,
    executing each yielded thunk (or :class:`Call` body) inline — under
    the threaded or cooperative runner the blocking calls simply block
    the rank's own thread.  One program source therefore runs under
    every runner, which is what the four-way equivalence tests compare.
    """

    def driven(comm, *args, **kwargs):
        gen = fn(comm, *args, **kwargs)
        try:
            op = gen.send(None)
            while True:
                if op is None:
                    op = gen.send(None)
                    continue
                target = op.fn if isinstance(op, Call) else op
                try:
                    value = target()
                except _WouldBlock:  # pragma: no cover - inline never parks
                    raise
                except BaseException as exc:  # noqa: BLE001 - into program
                    op = gen.throw(exc)
                else:
                    op = gen.send(value)
        except StopIteration as stop:
            return stop.value

    driven.__name__ = getattr(fn, "__name__", "driven")
    return driven


class GenEngine(CoopEngine):
    """Continuation-passing scheduler for generator rank-programs.

    Rank programs are *generator functions*: they ``yield`` a zero-arg
    thunk at every blocking point and receive the thunk's result back
    from the engine.  All rank continuations live on **one** OS thread
    (the launcher's): a thunk that would block raises
    :class:`_WouldBlock` after registering the rank in the engine's wait
    sets, the trampoline moves on to the next runnable rank, and the
    thunk is re-run when the rank is woken — the per-hand-off lock
    dance (two futex transitions plus an OS context switch) of the
    parked-thread engine disappears entirely.

    Scheduling order, wait-set bookkeeping, abort/death/deadlock
    priorities and the rendezvous protocol are shared with
    :class:`CoopEngine` (same ``_ready`` deque, same ``_next_blocked``),
    so results, counters, clocks and failure attribution are
    bit-identical to the other runners.

    Non-generator programs are delegated to :class:`CoopEngine`
    unchanged; ``yield Call(fn)`` gives generator programs access to
    non-retry-idempotent subroutines via a per-rank carrier thread that
    parks exactly like a coop rank.
    """

    def __init__(self, net: Network, nranks: int, *,
                 fused: Optional[bool] = None,
                 schedule_seed: Optional[int] = None):
        super().__init__(net, nranks, fused=fused,
                         schedule_seed=schedule_seed)
        self._gens: List[Any] = [None] * nranks
        self._pending: List[Optional[Callable[[], Any]]] = [None] * nranks
        self._carrier: List[Optional[threading.Thread]] = [None] * nranks
        self._on_carrier = [False] * nranks
        self._carrier_job: List[Optional[Callable[[], Any]]] = \
            [None] * nranks
        self._carrier_ret: List[Optional[tuple]] = [None] * nranks
        #: results for rendezvous-parked generator ranks, by rank
        self._gen_rv_results: Dict[int, Any] = {}
        #: ranks that already yielded once inside a try_match poll
        self._gen_polled: set[int] = set()
        #: ranks woken from the shrink barrier (retry returns the result)
        self._gen_shrunk: set[int] = set()
        self._tramp_ident: Optional[int] = None
        #: True while the trampoline is executing a yielded thunk — the
        #: only context where a would-park primitive may raise
        #: :class:`_WouldBlock` (a park from plain generator-body code
        #: would destroy the generator frame, see :meth:`_park`).
        self._in_thunk = False
        self._tramp_lock = threading.Lock()
        self._tramp_lock.acquire()
        self._gen_results: Optional[List[Any]] = None
        self._gen_failures: Optional[Dict[int, BaseException]] = None

    # -- program launch -------------------------------------------------
    def run(self, fn: Callable[..., Any], args: tuple, kwargs: dict,
            ) -> Tuple[List[Any], Dict[int, BaseException]]:
        if not inspect.isgeneratorfunction(fn):
            # Ordinary blocking programs: carrier threads for everyone —
            # i.e. exactly the cooperative engine.
            return super().run(fn, args, kwargs)
        net = self.net
        if net._sched is not None:
            raise RuntimeError("network already driven by another engine")
        results: List[Any] = [None] * self.nranks
        failures: Dict[int, BaseException] = {}
        self._gen_results, self._gen_failures = results, failures
        self._tramp_ident = threading.get_ident()
        net._sched = self
        net._begin_section()
        try:
            comms = [SimComm(net, r) for r in range(self.nranks)]
            self._gens = [fn(c, *args, **kwargs) for c in comms]
            self._ready.extend(range(self.nranks))
            self._trampoline()
        finally:
            net._sched = None
            self._tramp_ident = None
            self._drain_loans()
            for r, th in enumerate(self._carrier):
                if th is not None:
                    self._carrier_job[r] = None
                    self._resume[r].release()
                    th.join()
                    self._carrier[r] = None
        return results, failures

    def _trampoline(self) -> None:
        while True:
            if self._ready:
                rank = self._pop_ready()
                if self._on_carrier[rank]:
                    # the continuation is a parked carrier thread: hand
                    # it the token and wait for it to come back
                    self._resume[rank].release()
                    self._tramp_lock.acquire()
                    continue
                self._step(rank)
                continue
            rank = self._next_blocked()
            if rank is None:
                return
            self._ready.append(rank)

    # -- one continuation step ------------------------------------------
    def _run_thunk(self, thunk: Callable[[], Any]) -> Any:
        """Execute a yielded thunk with parking enabled (see ``_in_thunk``)."""
        self._in_thunk = True
        try:
            return thunk()
        finally:
            self._in_thunk = False

    def _step(self, rank: int) -> None:
        gen = self._gens[rank]
        if gen is None:
            return  # stale wake of an already-finished rank
        try:
            ret = self._carrier_ret[rank]
            if ret is not None:
                self._carrier_ret[rank] = None
                kind, value = ret
                op = gen.send(value) if kind == "ok" else gen.throw(value)
            elif self._pending[rank] is not None:
                thunk = self._pending[rank]
                try:
                    value = self._run_thunk(thunk)
                except _WouldBlock:
                    return  # still parked; wait bookkeeping already done
                except BaseException as exc:  # noqa: BLE001 - into program
                    self._pending[rank] = None
                    op = gen.throw(exc)
                else:
                    self._pending[rank] = None
                    op = gen.send(value)
            else:
                op = gen.send(None)
            while True:
                if op is None:
                    # bare cooperative yield: requeue behind the runnable
                    self._ready.append(rank)
                    return
                if isinstance(op, Call):
                    self._dispatch_carrier(rank, op.fn)
                    return
                try:
                    value = self._run_thunk(op)
                except _WouldBlock:
                    self._pending[rank] = op
                    return
                except BaseException as exc:  # noqa: BLE001 - into program
                    op = gen.throw(exc)
                else:
                    op = gen.send(value)
        except StopIteration as stop:
            self._gen_results[rank] = stop.value
            self._finish_rank(rank)
        except SimulatedRankCrash as exc:
            # Planned fail-stop: no abort (see _rank_main).
            self._gen_failures[rank] = exc
            self._finish_rank(rank)
        except RankFailedError as exc:
            self._gen_failures[rank] = exc
            self._finish_rank(rank)
        except CommError as exc:
            if not self.net.aborted or not self._gen_failures:
                self._gen_failures[rank] = exc
            self.net.abort(exc)
            self._finish_rank(rank)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            self._gen_failures[rank] = exc
            self.net.abort(exc)
            self._finish_rank(rank)

    def _finish_rank(self, rank: int) -> None:
        self._gens[rank] = None
        self.net._on_rank_exit(rank)
        self._check_shrink()

    # -- carrier threads (Call escape hatch) ----------------------------
    def _dispatch_carrier(self, rank: int, fn: Callable[[], Any]) -> None:
        self._carrier_job[rank] = fn
        self._on_carrier[rank] = True
        if self._carrier[rank] is None:
            th = threading.Thread(target=self._carrier_main, args=(rank,),
                                  daemon=True, name=f"gen-carrier-{rank}")
            self._carrier[rank] = th
            th.start()
        self._resume[rank].release()
        self._tramp_lock.acquire()

    def _carrier_main(self, rank: int) -> None:
        while True:
            self._resume[rank].acquire()
            job = self._carrier_job[rank]
            if job is None:
                return  # engine shutdown
            self._carrier_job[rank] = None
            try:
                self._carrier_ret[rank] = ("ok", job())
            except BaseException as exc:  # noqa: BLE001 - into program
                self._carrier_ret[rank] = ("err", exc)
            self._on_carrier[rank] = False
            self._ready.append(rank)
            self._hand_off()

    def _on_trampoline(self) -> bool:
        return threading.get_ident() == self._tramp_ident

    def _require_thunk(self) -> None:
        """Guard a would-park path: parking is only legal while executing
        a yielded thunk.  A park raised from plain generator-body code
        would propagate through the generator frame and destroy it, so
        that case is reported as a programming error with the fix
        spelled out."""
        if not self._in_thunk:
            raise RuntimeError(
                "blocking call in a generator rank-program body would "
                "park: yield it as a zero-arg thunk (retry-safe "
                "primitives like recv/waitall/fused_collective) or as "
                "Call(fn) (non-retry-safe subroutines like sendrecv or "
                "the dense collectives) instead")

    def _hand_off(self) -> None:
        """Token passing with a mixed population: parked carrier threads
        are woken directly; generator continuations (and the blocked/
        done logic) belong to the trampoline."""
        if self._tramp_ident is None:
            # non-generator section: plain cooperative behavior
            super()._hand_off()
            return
        if self._sched_rng is None and self._ready \
                and self._on_carrier[self._ready[0]]:
            # Fast path: wake a parked carrier directly.  Skipped under
            # schedule perturbation so every pick funnels through
            # _pop_ready on the trampoline (which handles carriers too) —
            # semantically equivalent, one extra lock round-trip.
            self._resume[self._ready.popleft()].release()
            return
        self._tramp_lock.release()

    # -- blocking primitives, trampoline flavor -------------------------
    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        if not self._on_trampoline():
            return super().match_blocking(dst, source, tag)
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(dst)
        msg = net._pop_match(dst, source, tag)
        if msg is not None:
            return msg
        if net._dead and source in net._failed_peers():
            raise net._fail_detect(dst)
        self._require_thunk()
        self._waiting[dst] = (source, tag)
        raise _WouldBlock()

    def ensure_recvs(self, dst: int, needs) -> None:
        """Pre-flight for ``waitall``: park until every needed channel
        holds enough messages, *without consuming any* — the retried
        ``waitall`` must start from unconsumed state.  No-op on carrier
        threads (their blocking pops park the thread as usual)."""
        if not self._on_trampoline():
            return
        net = self.net
        queues = net._queues[dst]
        failed = net._failed_peers() if net._dead else ()
        for key, count in Counter(needs).items():
            chan = queues.get(key)
            if chan is None or len(chan) < count:
                if key[0] in failed:
                    # This channel can never fill: let the waitall run —
                    # its blocking pop raises RankFailedError at exactly
                    # the request position the threaded engine would.
                    continue
                self._require_thunk()
                self._waiting[dst] = key
                raise _WouldBlock()

    def collective(self, rank: int, sig: tuple, payload, executor):
        if not self._on_trampoline():
            return super().collective(rank, sig, payload, executor)
        slots = self._gen_rv_results
        if rank in slots:
            # woken by rendezvous completion: deliver our result slot
            self.net._check_abort()
            return slots.pop(rank)
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(rank)
        if net._dead:
            raise net._fail_detect(rank)
        rv = self._rv
        if rv is None:
            rv = self._rv = _Rendezvous(sig, self.nranks)
        elif rv.sig != sig:
            exc = CommError(
                f"fused collective mismatch: rank {rank} entered {sig[0]!r} "
                f"{sig!r} while other ranks are in {rv.sig!r} — all ranks "
                f"must run the same collectives in the same order")
            net.abort(exc)
            raise exc
        if rv.count + 1 < self.nranks:
            self._require_thunk()  # this arrival parks: thunk context only
        rv.payloads[rank] = payload
        rv.count += 1
        if rv.count < self.nranks:
            self._rv_parked.append(rank)
            raise _WouldBlock()
        self._rv = None
        rv.results = executor(net, sig, rv.payloads)
        self._finish_rendezvous(rv)
        return rv.results[rank]

    def _finish_rendezvous(self, rv: _Rendezvous) -> None:
        parked = self._rv_parked
        self._rv_parked = []
        parked.sort()
        for r in parked:
            if not self._on_carrier[r]:
                self._gen_rv_results[r] = rv.results[r]
        self._ready.extend(parked)

    def try_match(self, dst: int, source: int, tag: int):
        if not self._on_trampoline():
            return super().try_match(dst, source, tag)
        net = self.net
        if dst in self._gen_polled:
            # second attempt after the fairness yield: answer directly
            # (mirrors the threaded post-wake pop, miss or hit)
            self._gen_polled.discard(dst)
            net._check_abort()
            return net._pop_match(dst, source, tag)
        net._check_abort()
        if net.faults is not None:
            net._crash_check(dst)
        msg = net._pop_match(dst, source, tag)
        if msg is None and net._dead and source in net._failed_peers():
            raise net._fail_detect(dst)
        if msg is not None or not self._ready or not self._in_thunk:
            # direct body-code polls answer immediately (no fairness
            # yield possible without a thunk to retry)
            return msg
        self._gen_polled.add(dst)
        self._ready.append(dst)
        raise _WouldBlock()

    def shrink(self, rank: int) -> tuple:
        if not self._on_trampoline():
            return super().shrink(rank)
        net = self.net
        if rank in self._gen_shrunk:
            # woken from the barrier (completion or abort): post-wake path
            self._gen_shrunk.discard(rank)
            net._check_abort()
            return net._shrink_result
        net._failstop.discard(rank)
        net._shrink_parked.add(rank)
        epoch = net._shrink_epoch
        self._check_shrink()
        if net._shrink_epoch == epoch:
            self._require_thunk()
            self._shrink_waiting.add(rank)
            self._gen_shrunk.add(rank)
            raise _WouldBlock()
        return net._shrink_result
