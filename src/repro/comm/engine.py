"""Deterministic cooperative SPMD engine (the default runner).

The seed simulator ran one free-running OS thread per rank, serialized on a
single network lock, and woke blocked receivers through condition variables
with a 0.2 s poll — so every message paid for lock contention, GIL thrash
and wake-up latency.  This engine replaces that with **cooperative
scheduling**: rank programs still look like ordinary blocking MPI code, but
control switches between ranks only at blocking points (an unmatched
``recv``/``waitall``), driven by a single logical thread of control.

Because ``greenlet``-style stackful coroutines are not available, each rank
continuation is carried by a *parked* OS thread: the thread exists only to
hold the rank's Python stack while it is suspended.  Execution is strictly
serialized — exactly one rank (or the launcher) holds the *token* at any
time, and hand-offs are direct (blocking rank → next runnable rank) with no
scheduler bounce in between.  Consequences:

* the network hot path is single-threaded: no locks, no condition
  variables, no polling (see :mod:`repro.comm.network`);
* immutable payloads and the audited ``sendrecv`` path travel zero-copy,
  and ``isend`` buffers are protected by a write-lock loan ending in a
  single snapshot — see :mod:`repro.comm.communicator`;
* scheduling is deterministic: runnable ranks run in FIFO order, a rank
  blocked on ``(source, tag)`` is made runnable exactly when a matching
  message is posted, and simulated time is schedule-independent anyway
  (links are booked in program order), so results, traffic counters and
  makespans are bit-identical to the threaded runner;
* a global deadlock (every live rank blocked on a receive that can never
  match) is *detected* and reported as :class:`repro.errors.DeadlockError`
  instead of hanging.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Tuple

from typing import Optional

from ..errors import CommError, DeadlockError, RankFailedError, \
    SimulatedRankCrash
from .communicator import SimComm
from .fused import fusion_enabled
from .message import Message
from .network import Network
from .payload import freeze as _freeze


class _Rendezvous:
    """State of one in-progress fused collective (engine-level
    macro-collective).  At most one exists at a time: every rank of the
    network participates in every collective, so a rank cannot reach
    rendezvous ``g + 1`` before generation ``g`` completed."""

    __slots__ = ("sig", "payloads", "results", "count")

    def __init__(self, sig: tuple, nranks: int):
        self.sig = sig
        self.payloads: list = [None] * nranks
        self.results: list = []
        self.count = 0


class CoopEngine:
    """One-shot cooperative scheduler for a single SPMD section."""

    def __init__(self, net: Network, nranks: int, *,
                 fused: Optional[bool] = None):
        self.net = net
        self.nranks = nranks
        #: fused-collective fast path (see repro.comm.fused); resolved
        #: from REPRO_FUSED when not given explicitly
        self.fused = fusion_enabled() if fused is None else bool(fused)
        #: in-progress fused collective, if any
        self._rv: Optional[_Rendezvous] = None
        #: ranks parked at the rendezvous (in arrival order)
        self._rv_parked: list[int] = []
        # Parking slots: raw locks are the cheapest wait/wake primitive in
        # CPython (a bare futex, ~3x cheaper than Event).  Each lock starts
        # acquired; "wake" = release, "park" = acquire.  The engine's
        # ready/waiting bookkeeping guarantees one wake per park, and a
        # wake-before-park simply makes the park fall through, so no
        # wakeups can be lost.
        self._resume = [threading.Lock() for _ in range(nranks)]
        for lock in self._resume:
            lock.acquire()
        self._main = threading.Lock()
        self._main.acquire()
        self._ready: deque[int] = deque()
        #: rank -> (source, tag) it is blocked on
        self._waiting: Dict[int, Tuple[int, int]] = {}
        #: ranks suspended at the elastic shrink barrier
        self._shrink_waiting: set[int] = set()

    # ------------------------------------------------------------------
    #

    def run(self, fn: Callable[..., Any], args: tuple, kwargs: dict,
            ) -> Tuple[List[Any], Dict[int, BaseException]]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank to completion.

        Returns per-rank results and the failure map (same attribution
        rules as the threaded runner: secondary ``CommError`` unwinds
        caused by an abort are suppressed unless they are the origin).
        """
        results: List[Any] = [None] * self.nranks
        failures: Dict[int, BaseException] = {}
        net = self.net
        if net._sched is not None:
            raise RuntimeError("network already driven by another engine")
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, fn, args, kwargs, results, failures),
                daemon=True, name=f"coop-rank-{rank}")
            for rank in range(self.nranks)
        ]
        net._sched = self
        net._begin_section()
        try:
            for t in threads:
                t.start()
            # Hand the token to rank 0; ranks then pass it among themselves
            # and the launcher regains control only when all are done.
            self._ready.extend(range(self.nranks))
            self._hand_off()
            self._main.acquire()
        finally:
            net._sched = None
            self._drain_loans()
        for t in threads:
            t.join()
        return results, failures

    def _drain_loans(self) -> None:
        """End every outstanding loan when the SPMD section closes.

        A message that was posted but never received (legal under eager
        semantics) or orphaned by an abort would otherwise leave its
        sender's buffer read-only forever.  Undelivered loaned payloads are
        sealed first so a network reused for a later section still hands
        receivers data from before the loan ended."""
        net = self.net
        for mailbox in net._queues:
            for chan in mailbox.values():
                for msg in chan:
                    if msg.loans:
                        msg.payload = _freeze(msg.payload, readonly=True)
                        net.release_loans(msg)
        # Entries whose messages are gone (popped but never delivered when
        # an abort unwound the receiver): restore writability directly.
        for key in list(net._loans):
            arr, _count = net._loans.pop(key)
            arr.setflags(write=True)

    # ------------------------------------------------------------------
    # Network-facing hooks (called while a rank thread holds the token)
    # ------------------------------------------------------------------
    def on_post(self, msg: Message) -> None:
        """A message was appended to ``msg.dst``'s mailbox: make the
        destination runnable if this is what it was blocked on."""
        want = self._waiting.get(msg.dst)
        if want is not None and msg.matches(*want):
            del self._waiting[msg.dst]
            self._ready.append(msg.dst)

    def on_post_batch(self, msgs) -> None:
        """Batched :meth:`on_post`: one waiting-map probe per message, no
        per-message call overhead (the :meth:`Network.post_batch` path).
        Semantically identical to calling ``on_post`` in message order —
        once a destination is woken it leaves the waiting map, so later
        messages of the batch cannot re-wake it."""
        waiting = self._waiting
        if not waiting:
            return
        ready = self._ready
        for msg in msgs:
            want = waiting.get(msg.dst)
            if want is not None and msg.matches(*want):
                del waiting[msg.dst]
                ready.append(msg.dst)

    def match_blocking(self, dst: int, source: int, tag: int) -> Message:
        """Pop the earliest matching message for ``dst``, suspending the
        rank until one is available."""
        net = self.net
        while True:
            net._check_abort()
            if net.faults is not None:
                net._crash_check(dst)
            msg = net._pop_match(dst, source, tag)
            if msg is not None:
                return msg
            if net._dead and source in net._failed_peers():
                raise net._fail_detect(dst)
            self._waiting[dst] = (source, tag)
            self._suspend(dst)

    def collective(self, rank: int, sig: tuple, payload, executor):
        """Run a fused collective: park ``rank`` at the rendezvous until
        every rank has arrived, then execute once, centrally.

        ``sig`` is the collective's structural signature — it must be
        identical on every rank (same collective, entered in the same
        global order; SPMD programs satisfy this by construction, and a
        mismatch aborts the run instead of deadlocking rank by rank).
        ``payload`` carries the rank's data contribution and ``executor``
        (a module-level function, identical across ranks) receives
        ``(net, sig, payloads)`` and returns the per-rank results.

        The last arrival executes while holding the token, so the whole
        collective — schedule replay and stacked-numpy reduction — runs
        as one uninterrupted dispatch; the parked ranks are then made
        runnable in rank order.  Aborts (including the deadlock detector,
        which treats rendezvous-parked ranks as blocked) wake parked
        ranks through :meth:`_hand_off`'s abort branch.
        """
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(rank)
        if net._dead:
            # The rendezvous needs every rank; a declared death means it
            # can never complete.
            raise net._fail_detect(rank)
        rv = self._rv
        if rv is None:
            rv = self._rv = _Rendezvous(sig, self.nranks)
        elif rv.sig != sig:
            exc = CommError(
                f"fused collective mismatch: rank {rank} entered {sig[0]!r} "
                f"{sig!r} while other ranks are in {rv.sig!r} — all ranks "
                f"must run the same collectives in the same order")
            net.abort(exc)
            raise exc
        rv.payloads[rank] = payload
        rv.count += 1
        if rv.count < self.nranks:
            self._rv_parked.append(rank)
            self._suspend(rank)
            net._check_abort()
            if not rv.results:
                # Woken by the revoke path, not by completion: a
                # participant died while we were parked.
                raise net._fail_detect(rank)
            return rv.results[rank]
        # Last arrival: run the whole collective as one fused dispatch.
        self._rv = None
        rv.results = executor(net, sig, rv.payloads)
        parked = self._rv_parked
        self._rv_parked = []
        parked.sort()
        self._ready.extend(parked)
        return rv.results[rank]

    def shrink(self, rank: int) -> tuple:
        """Engine side of :meth:`Network.shrink`: park ``rank`` at the
        barrier; the arrival (or exit event) that makes the barrier
        complete finishes the shrink and readies the parked ranks."""
        net = self.net
        net._failstop.discard(rank)
        net._shrink_parked.add(rank)
        epoch = net._shrink_epoch
        self._check_shrink()
        if net._shrink_epoch == epoch:
            self._shrink_waiting.add(rank)
            self._suspend(rank)
            net._check_abort()
        return net._shrink_result

    def _check_shrink(self) -> None:
        """Re-evaluate shrink-barrier completion (called at every park
        and rank-exit event)."""
        if self.net._maybe_finish_shrink():
            woken = sorted(self._shrink_waiting)
            self._shrink_waiting.clear()
            self._ready.extend(woken)

    def try_match(self, dst: int, source: int, tag: int):
        """Non-blocking probe.  On a miss, yield the token once (requeue
        ``dst`` behind the currently runnable ranks) before answering, so
        busy-poll loops (``while not req.test()``) cannot starve the very
        rank that would post the matching message.

        When no other rank is runnable the probe simply answers None —
        never an abort: a miss is a legal answer, and a program may poll a
        bounded number of times and then move on (and thereby unblock its
        peers).  An *unbounded* poll of a receive that can never match
        spins, exactly as it does under the threaded runner; deadlock
        detection applies to blocked receives only, because only there can
        the engine prove nobody can make progress."""
        net = self.net
        net._check_abort()
        if net.faults is not None:
            net._crash_check(dst)
        msg = net._pop_match(dst, source, tag)
        if msg is None and net._dead and source in net._failed_peers():
            raise net._fail_detect(dst)
        if msg is not None or not self._ready:
            return msg
        self._ready.append(dst)
        self._suspend(dst)
        net._check_abort()
        return net._pop_match(dst, source, tag)

    # ------------------------------------------------------------------
    # Token passing
    # ------------------------------------------------------------------
    def _suspend(self, rank: int) -> None:
        """Give up the token and park until resumed."""
        self._hand_off()
        self._resume[rank].acquire()

    def _hand_off(self) -> None:
        """Pass the token to the next runnable rank.

        If nobody is runnable but ranks are still blocked, then (in
        priority order): under a declared death, wake the blocked ranks
        that can now prove their operation will never complete (parked
        rendezvous first — their unwind fail-stops them, which makes
        receives *from* them detectable — then receives whose source is a
        failed peer), one at a time, so each raises ``RankFailedError``
        at its own blocking point; otherwise this is either the tail of
        an abort (wake one so it observes the abort and unwinds, which
        chains to the rest) or a genuine deadlock (declare it with the
        full parked-rank report, then unwind the same way).  With no live
        ranks left, control returns to the launcher.
        """
        if self._ready:
            self._resume[self._ready.popleft()].release()
            return
        if self._waiting or self._rv_parked or self._shrink_waiting:
            net = self.net
            if not net.aborted:
                if net._dead:
                    if self._rv_parked:
                        rank = min(self._rv_parked)
                        self._rv_parked.remove(rank)
                        self._resume[rank].release()
                        return
                    failed = net._failed_peers()
                    cand = [r for r, st in self._waiting.items()
                            if st[0] in failed]
                    if cand:
                        rank = min(cand)
                        del self._waiting[rank]
                        self._resume[rank].release()
                        return
                    # Shrink completion is re-checked at every park and
                    # exit event, so reaching here with only live-source
                    # receives left is a genuine deadlock.
                self._declare_deadlock()
            if self._waiting:
                rank = min(self._waiting)
                del self._waiting[rank]
            elif self._rv_parked:
                rank = min(self._rv_parked)
                self._rv_parked.remove(rank)
            else:
                rank = min(self._shrink_waiting)
                self._shrink_waiting.remove(rank)
            self._resume[rank].release()
            return
        self._main.release()

    def _declare_deadlock(self) -> None:
        """Abort with a :class:`DeadlockError` reporting every parked
        rank: the operation it is blocked on (receive channel, collective
        signature, or the shrink barrier) and its simulated clock."""
        net = self.net
        clocks = net.clocks
        blocked: list[dict] = []
        parts: list[str] = []
        for r, (s, t) in sorted(self._waiting.items()):
            blocked.append({"rank": r, "op": "recv", "source": s,
                            "tag": t, "clock": clocks[r]})
            parts.append(f"rank {r} waiting on recv(source={s}, tag={t}) "
                         f"at t={clocks[r]:.3e}s")
        if self._rv_parked:
            sig = self._rv.sig if self._rv is not None else ("?",)
            for r in sorted(self._rv_parked):
                blocked.append({"rank": r, "op": "collective", "sig": sig,
                                "clock": clocks[r]})
                parts.append(
                    f"rank {r} parked at the {sig[0]!r} fused-collective "
                    f"rendezvous (sig={sig!r}) at t={clocks[r]:.3e}s")
        for r in sorted(self._shrink_waiting):
            blocked.append({"rank": r, "op": "shrink", "clock": clocks[r]})
            parts.append(f"rank {r} parked at the elastic shrink barrier "
                         f"at t={clocks[r]:.3e}s")
        msg = (f"all {len(blocked)} live rank(s) blocked on receives or "
               f"collective rendezvous that can never match: "
               + "; ".join(parts))
        if net._dead:
            msg += f" [dead ranks: {sorted(net._dead)}]"
        net.abort(DeadlockError(msg, blocked=blocked))

    # ------------------------------------------------------------------
    # Per-rank thread body
    # ------------------------------------------------------------------
    def _rank_main(self, rank: int, fn: Callable[..., Any], args: tuple,
                   kwargs: dict, results: List[Any],
                   failures: Dict[int, BaseException]) -> None:
        self._resume[rank].acquire()  # parked until first scheduled
        net = self.net
        comm = SimComm(net, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except SimulatedRankCrash as exc:
            # Planned fail-stop: no abort — survivors detect the death
            # through the revoke state and may recover elastically.
            failures[rank] = exc
        except RankFailedError as exc:
            # A survivor that chose not to (or could not) recover: no
            # abort either — the revoke bookkeeping keeps its peers
            # detecting/unwinding, and the launcher aggregates.
            failures[rank] = exc
        except CommError as exc:
            # Secondary failure caused by another rank's abort: record only
            # if we are the first (i.e. the genuine origin).
            if not net.aborted or not failures:
                failures[rank] = exc
            net.abort(exc)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            failures[rank] = exc
            net.abort(exc)
        finally:
            try:
                net._on_rank_exit(rank)
                self._check_shrink()
                self._hand_off()
            except BaseException:  # pragma: no cover - invariant violated
                # Fail open: never leave the launcher parked forever.
                try:
                    self._main.release()
                except RuntimeError:
                    pass
                raise
