"""Payload size accounting.

The paper measures communication volume in *words*: a sparse gradient in COO
format with ``k`` non-zeros costs ``2k`` (``k`` float values plus ``k``
integer indexes).  We charge one word per 4 bytes, so float32/int32 elements
cost one word each and float64/int64 cost two.  This keeps the accounting
honest: an implementation that ships int64 indexes pays for it.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def nwords(obj: Any) -> int:
    """Number of 4-byte words needed to transfer ``obj``.

    Arrays are charged by element count scaled by element width; small
    control values (ints, floats, bools, short strings) are charged one
    word; containers are charged the sum of their items.  ``None`` is free
    (pure control message).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.size) * max(1, obj.dtype.itemsize // 4)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 1
    if isinstance(obj, (bytes, str)):
        return max(1, (len(obj) + 3) // 4)
    if isinstance(obj, dict):
        return sum(nwords(v) for v in obj.values())
    if isinstance(obj, (tuple, list)):
        return sum(nwords(v) for v in obj)
    custom = getattr(obj, "comm_nwords", None)
    if custom is not None:
        return int(custom() if callable(custom) else custom)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")
