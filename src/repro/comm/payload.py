"""Payload size accounting and snapshotting.

The paper measures communication volume in *words*: a sparse gradient in COO
format with ``k`` non-zeros costs ``2k`` (``k`` float values plus ``k``
integer indexes).  We charge one word per 4 bytes, so float32/int32 elements
cost one word each and float64/int64 cost two.  This keeps the accounting
honest: an implementation that ships int64 indexes pays for it.

:func:`freeze` lives here (rather than in ``communicator``) because both
the communicator and the network's delivery path need it without creating
an import cycle.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def freeze(obj: Any, readonly: bool = False) -> Any:
    """Deep-snapshot mutable payloads (ndarray leaves are copied).

    Self-sizing immutable payloads (``comm_nwords`` protocol, e.g.
    ``COOVector``) pass through untouched.  With ``readonly=True`` the
    snapshots are write-locked, matching the cooperative runner's
    invariant that received arrays are never writable.  The threaded
    runner historically handed receivers *writable* copies; under the
    sanitizer mode (``Network.sanitize``) its post paths pass
    ``readonly=True`` too, so both runners enforce (and repro-lint rule
    RL002 statically checks) the same received-buffer ownership contract.
    """
    if obj is None or hasattr(obj, "comm_nwords"):
        return obj
    if isinstance(obj, np.ndarray):
        out = obj.copy()
        if readonly:
            out.setflags(write=False)
        return out
    if isinstance(obj, tuple):
        return tuple(freeze(v, readonly) for v in obj)
    if isinstance(obj, list):
        return [freeze(v, readonly) for v in obj]
    if isinstance(obj, dict):
        return {k: freeze(v, readonly) for k, v in obj.items()}
    return obj


def nwords(obj: Any) -> int:
    """Number of 4-byte words needed to transfer ``obj``.

    Arrays are charged by element count scaled by element width; small
    control values (ints, floats, bools, short strings) are charged one
    word; containers are charged the sum of their items.  ``None`` is free
    (pure control message).

    Objects exposing ``comm_nwords`` (attribute or method) size themselves;
    this is checked first because such payloads (``COOVector``) dominate
    the sparse-allreduce hot path.
    """
    if obj is None:
        return 0
    custom = getattr(obj, "comm_nwords", None)
    if custom is not None:
        return int(custom() if callable(custom) else custom)
    if isinstance(obj, np.ndarray):
        return int(obj.size) * max(1, obj.dtype.itemsize // 4)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 1
    if isinstance(obj, (bytes, str)):
        return max(1, (len(obj) + 3) // 4)
    if isinstance(obj, dict):
        return sum(nwords(v) for v in obj.values())
    if isinstance(obj, (tuple, list)):
        return sum(nwords(v) for v in obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")
