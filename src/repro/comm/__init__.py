"""Simulated SPMD communication substrate (the paper's MPI layer).

Quick tour::

    from repro.comm import run_spmd, collectives

    def program(comm):
        import numpy as np
        x = np.full(4, comm.rank, dtype=np.float32)
        return collectives.allreduce(comm, x)

    res = run_spmd(8, program)
    res[0]            # reduced vector on rank 0
    res.makespan      # simulated completion time in seconds
    res.stats         # per-rank traffic counters (words/messages)
"""

from . import collectives
from .communicator import SimComm
from .launcher import SpmdResult, run_spmd
from .message import RecvRequest, Request, SendRequest
from .model import NetworkModel
from .network import Network, TrafficStats
from .payload import nwords

__all__ = [
    "collectives",
    "SimComm",
    "SpmdResult",
    "run_spmd",
    "Request",
    "SendRequest",
    "RecvRequest",
    "NetworkModel",
    "Network",
    "TrafficStats",
    "nwords",
]
