"""Simulated SPMD communication substrate (the paper's MPI layer).

Quick tour::

    from repro.comm import run_spmd, collectives

    def program(comm):
        import numpy as np
        x = np.full(4, comm.rank, dtype=np.float32)
        return collectives.allreduce(comm, x)

    res = run_spmd(8, program)
    res[0]            # reduced vector on rank 0
    res.makespan      # simulated completion time in seconds
    res.stats         # per-rank traffic counters (words/messages)

Execution model: programs run under the deterministic **cooperative**
engine by default (single-threaded hot path, zero-copy sends, deadlock
detection); pass ``runner="threads"`` (or set ``REPRO_SPMD_RUNNER``) for
the legacy thread-per-rank runner.  Results, traffic counters and simulated
makespans are identical under both — see :mod:`repro.comm.launcher`.

Collectives additionally run through the **fused fast path** on the
cooperative engine (whole collectives executed as single vectorized
dispatches at an engine rendezvous, bit-identical to the per-message
reference rounds); disable it with ``REPRO_FUSED=0``,
``run_spmd(..., fused=False)`` or ``repro-bench --no-fused`` — see
:mod:`repro.comm.fused`.
"""

from . import collectives
from .communicator import AsyncRegion, SimComm
from .engine import Call, CoopEngine, GenEngine, drive_program
from .faults import ComputeStraggler, FaultPlan, LinkSlowdown, RankCrash
from .fused import FUSED_ENV, fusion_enabled
from .launcher import RUNNER_ENV, SANITIZE_ENV, SpmdResult, \
    resolve_runner, run_spmd, sanitize_enabled
from .message import RecvRequest, Request, SendRequest
from .model import NetworkModel
from .network import Network, TrafficStats
from .payload import nwords

__all__ = [
    "collectives",
    "SimComm",
    "AsyncRegion",
    "SpmdResult",
    "run_spmd",
    "resolve_runner",
    "RUNNER_ENV",
    "SANITIZE_ENV",
    "sanitize_enabled",
    "FUSED_ENV",
    "fusion_enabled",
    "Call",
    "CoopEngine",
    "GenEngine",
    "drive_program",
    "Request",
    "SendRequest",
    "RecvRequest",
    "NetworkModel",
    "Network",
    "TrafficStats",
    "nwords",
    "FaultPlan",
    "LinkSlowdown",
    "ComputeStraggler",
    "RankCrash",
]
