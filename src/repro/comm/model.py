"""Machine and network performance models.

The simulator charges time using the classic latency--bandwidth (alpha-beta)
cost model extended with per-NIC link occupancy (LogGP-style), which is the
model the paper states Table 1 in:

* sending a message of ``L`` words costs ``alpha + beta * L`` end to end,
* a rank's egress (injection) link serializes its outgoing messages at
  ``beta`` seconds/word, and its ingress link serializes incoming messages
  the same way -- this reproduces the *endpoint congestion* that motivates
  the destination-rotation optimization of Ok-Topk (Figure 2 of the paper).

Compute time (local reductions, top-k scans, forward/backward FLOPs) is
charged explicitly by the algorithms through :meth:`repro.comm.communicator.
SimComm.compute` using the ``gamma``/``flop_time`` constants here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetworkModel:
    """Cost constants for the simulated machine.

    Attributes:
        alpha: wire latency per message, seconds.
        beta: transfer time per 4-byte word, seconds/word.
        gamma: local reduction cost per word (e.g. summing received sparse
            gradients), seconds/word.
        scan_time: per-word cost of a linear scan on the accelerator
            (threshold-based selection, compaction), seconds/word.
        sort_time: per-word-per-log-word cost of an accelerator sort, used
            for exact top-k threshold (re-)evaluation, seconds/word.
        flop_time: seconds per floating point operation for model
            forward/backward compute.
        o_send: CPU overhead charged to the sender per blocking send.
        o_inject: CPU overhead charged per non-blocking isend post.
    """

    alpha: float = 1.5e-6
    beta: float = 4.0e-10
    gamma: float = 2.0e-10
    scan_time: float = 1.0e-10
    sort_time: float = 2.5e-10
    flop_time: float = 4.0e-13
    o_send: float = 0.0
    o_inject: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "scan_time", "sort_time",
                     "flop_time", "o_send", "o_inject"):
            if getattr(self, name) < 0:
                raise ValueError(f"NetworkModel.{name} must be >= 0")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def aries(cls) -> "NetworkModel":
        """Cray Aries-like constants (Piz Daint): ~1.5us latency, ~10 GB/s
        effective per-node injection bandwidth."""
        return cls(alpha=1.5e-6, beta=4.0e-10)

    @classmethod
    def commodity(cls) -> "NetworkModel":
        """Commodity cloud Ethernet: ~25us latency, ~1.2 GB/s bandwidth.

        The paper predicts larger Ok-Topk speedups here (Section 6)."""
        return cls(alpha=2.5e-5, beta=3.2e-9)

    @classmethod
    def infiniband(cls) -> "NetworkModel":
        """HDR InfiniBand-like: ~1us latency, ~23 GB/s bandwidth."""
        return cls(alpha=1.0e-6, beta=1.7e-10)

    @classmethod
    def piz_daint_effective(cls) -> "NetworkModel":
        """*Effective* end-to-end constants of the paper's software stack
        (PyTorch tensors staged through host memory into Cray-MPICH, no
        GPUDirect): calibrated so the Dense bar of Figure 12 (~4.5 s for
        the 133.5M-parameter BERT allreduce on 256 nodes) is reproduced.
        Raw Aries link speed is ~40x higher; the gap is the measured
        software overhead the paper's absolute numbers include."""
        return cls(alpha=2.0e-5, beta=1.6e-8, sort_time=5.0e-10)

    def with_(self, **kwargs) -> "NetworkModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Analytic helpers (shared with repro.costmodel)
    # ------------------------------------------------------------------
    def ptp_cost(self, nwords: int) -> float:
        """Cost of a single uncontended point-to-point message."""
        return self.alpha + self.beta * float(nwords)
