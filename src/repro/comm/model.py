"""Machine and network performance models.

The simulator charges time using the classic latency--bandwidth (alpha-beta)
cost model extended with per-NIC link occupancy (LogGP-style), which is the
model the paper states Table 1 in:

* sending a message of ``L`` words costs ``alpha + beta * L`` end to end,
* a rank's egress (injection) link serializes its outgoing messages at
  ``beta`` seconds/word, and its ingress link serializes incoming messages
  the same way -- this reproduces the *endpoint congestion* that motivates
  the destination-rotation optimization of Ok-Topk (Figure 2 of the paper).

Compute time (local reductions, top-k scans, forward/backward FLOPs) is
charged explicitly by the algorithms through :meth:`repro.comm.communicator.
SimComm.compute` using the ``gamma``/``flop_time`` constants here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class NetworkModel:
    """Cost constants for the simulated machine.

    Attributes:
        alpha: wire latency per message, seconds.
        beta: transfer time per 4-byte word, seconds/word.
        gamma: local reduction cost per word (e.g. summing received sparse
            gradients), seconds/word.
        scan_time: per-word cost of a linear scan on the accelerator
            (threshold-based selection, compaction), seconds/word.
        sort_time: per-word-per-log-word cost of an accelerator sort, used
            for exact top-k threshold (re-)evaluation, seconds/word.
        flop_time: seconds per floating point operation for model
            forward/backward compute.
        o_send: CPU overhead charged to the sender per blocking send.
        o_inject: CPU overhead charged per non-blocking isend post.
    """

    alpha: float = 1.5e-6
    beta: float = 4.0e-10
    gamma: float = 2.0e-10
    scan_time: float = 1.0e-10
    sort_time: float = 2.5e-10
    flop_time: float = 4.0e-13
    o_send: float = 0.0
    o_inject: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "scan_time", "sort_time",
                     "flop_time", "o_send", "o_inject"):
            if getattr(self, name) < 0:
                raise ValueError(f"NetworkModel.{name} must be >= 0")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def aries(cls) -> "NetworkModel":
        """Cray Aries-like constants (Piz Daint): ~1.5us latency, ~10 GB/s
        effective per-node injection bandwidth."""
        return cls(alpha=1.5e-6, beta=4.0e-10)

    @classmethod
    def commodity(cls) -> "NetworkModel":
        """Commodity cloud Ethernet: ~25us latency, ~1.2 GB/s bandwidth.

        The paper predicts larger Ok-Topk speedups here (Section 6)."""
        return cls(alpha=2.5e-5, beta=3.2e-9)

    @classmethod
    def infiniband(cls) -> "NetworkModel":
        """HDR InfiniBand-like: ~1us latency, ~23 GB/s bandwidth."""
        return cls(alpha=1.0e-6, beta=1.7e-10)

    @classmethod
    def piz_daint_effective(cls) -> "NetworkModel":
        """*Effective* end-to-end constants of the paper's software stack
        (PyTorch tensors staged through host memory into Cray-MPICH, no
        GPUDirect): calibrated so the Dense bar of Figure 12 (~4.5 s for
        the 133.5M-parameter BERT allreduce on 256 nodes) is reproduced.
        Raw Aries link speed is ~40x higher; the gap is the measured
        software overhead the paper's absolute numbers include."""
        return cls(alpha=2.0e-5, beta=1.6e-8, sort_time=5.0e-10)

    def with_(self, **kwargs) -> "NetworkModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Analytic helpers (shared with repro.costmodel)
    # ------------------------------------------------------------------
    def ptp_cost(self, nwords: int) -> float:
        """Cost of a single uncontended point-to-point message."""
        return self.alpha + self.beta * float(nwords)

    def topk_seconds(self, n: int, k: int) -> float:
        """Seconds of a GPU top-k selection over ``n`` words.

        Modeled as ``sort_time * n * log2(k)`` — between the bitonic
        ``n log^2 k`` worst case and radix-select's ``n`` (torch.topk,
        the primitive the paper's baselines call, sits in this regime).
        The single source of the formula: charged through
        :meth:`repro.comm.communicator.SimComm.compute_topk` on the
        per-message path and by the fused gtopk tree executor.
        """
        n, k = max(0, n), max(2, k)
        return self.sort_time * n * np.log2(k)

    def isend_avail(self, sender_clock: float, n: int) -> np.ndarray:
        """Egress availability times of ``n`` back-to-back ``isend``
        posts: the sender's clock advances by ``o_inject`` per post, so
        message ``i`` becomes available after ``i`` charges (left-fold
        prefix sum, matching the scalar clock accumulation).  Shared by
        :meth:`repro.comm.network.Network.post_batch` and the fused
        Ok-Topk split-and-reduce executor."""
        if self.o_inject:
            seq = np.full(n, self.o_inject)
            seq[0] = sender_clock
            return seq.cumsum()
        return np.full(n, sender_clock)

    # ------------------------------------------------------------------
    # Batched link booking
    # ------------------------------------------------------------------
    def occupancy_scan(self, free: float, avail: np.ndarray,
                       nwords: np.ndarray) -> np.ndarray:
        """Closed-form link-occupancy scan over a message batch.

        A link that was free at ``free`` serializes messages that become
        available at ``avail[i]`` (sender clock for egress, ``t_first`` for
        ingress) and occupy it for ``beta * nwords[i]`` seconds each::

            end[i] = max(end[i-1], avail[i]) + beta * nwords[i]

        evaluated here without a Python-level fold: with the prefix sums
        ``c[i] = sum_{j<=i} beta*nwords[j]`` the recurrence collapses to
        ``end[i] = c[i] + max(free, max_{j<=i}(avail[j] - c[j-1]))``, one
        ``cumsum`` plus one ``maximum.accumulate``.

        Note the closed form re-associates the additions, so it can differ
        from the message-by-message fold in the final ulp.  The simulator's
        bit-reproducibility contract therefore books real messages through
        :meth:`serialize_batch` (which falls back to the exact fold outside
        its provably-identical fast paths) and keeps this form for batch
        sizing, analysis and cross-checks.
        """
        b = self.beta * np.asarray(nwords, dtype=np.float64)
        c = np.cumsum(b)
        slack = np.asarray(avail, dtype=np.float64) - (c - b)  # avail - c[i-1]
        return c + np.maximum(free, np.maximum.accumulate(slack))

    def serialize_batch(self, free: float, avail: np.ndarray,
                        nwords: np.ndarray,
                        ) -> "tuple[np.ndarray, np.ndarray]":
        """Book a message batch on one link, bit-identical to booking each
        message individually.  Returns ``(starts, ends)``.

        Two vectorized regimes reproduce the scalar fold exactly:

        * **saturated** — every message is already waiting when its
          predecessor ends; the recurrence is the left fold
          ``((free + b0) + b1) + ...``, which is exactly what ``np.cumsum``
          over ``[free, b0, b1, ...]`` computes;
        * **idle** — the link frees before each message becomes available;
          ``end[i] = avail[i] + b[i]`` independently.

        A batch that switches regimes mid-way falls back to the scalar
        fold (plain-float loop): the re-associated closed form
        (:meth:`occupancy_scan`) would drift in the last ulp, breaking the
        bit-identical-across-runners/makespan contract.  Start times are
        the fold's ``max(end[i-1], avail[i])`` selections (never re-derived
        as ``end - beta*nwords``, which would also drift).
        """
        b = self.beta * np.asarray(nwords, dtype=np.float64)
        n = b.size
        avail = np.asarray(avail, dtype=np.float64)
        if n == 0:
            return b, b
        # saturated fast path: prev_end[i] >= avail[i] for all i
        # (ndarray method calls skip the np.* dispatch wrappers — this
        # booking runs 64+ times per fused split-reduce dispatch)
        seq = np.empty(n + 1)
        seq[0] = free
        seq[1:] = b
        chain = seq.cumsum()            # chain[i] = end of message i-1
        if (avail <= chain[:-1]).all():
            return chain[:-1], chain[1:]
        # idle fast path: link free before every message becomes available
        ends = avail + b
        if avail[0] >= free and (n == 1 or (avail[1:] >= ends[:-1]).all()):
            return avail, ends
        # mixed regime: exact scalar fold over plain floats
        end = free
        starts = np.empty(n)
        out = np.empty(n)
        bl = b.tolist()
        al = avail.tolist()
        for i in range(n):
            a = al[i]
            if a > end:
                end = a
            starts[i] = end
            end += bl[i]
            out[i] = end
        return starts, out
