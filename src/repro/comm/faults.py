"""Declarative, seeded fault plans for the simulated cluster.

A :class:`FaultPlan` describes everything that can go wrong in a run —
per-link slowdowns (persistent or transient jitter windows), per-rank
compute stragglers, and rank crashes pinned to a simulated time or a
training iteration.  The plan is *declarative and bound at network
creation* (``run_spmd(..., faults=plan)`` / ``Network(..., faults=plan)``),
so every fault fires at a deterministic program point of the affected rank
and the same plan produces bit-identical clocks, counters and results under
both the cooperative and the threaded runner.

Determinism guarantees
----------------------

* **No plan ⇒ byte-identical to the fault-free simulator.**  Every hot-path
  hook is gated on a single ``net.faults is not None`` test; no fault code
  runs, no formulas change.
* **Slowdowns** scale the ``beta`` term of individual link bookings.  The
  factor is evaluated at each message's booking start time, which is itself
  schedule-independent (links are booked in program order), so slowed runs
  stay bit-identical across runners.
* **Stragglers** scale :meth:`repro.comm.SimComm.compute` charges (and
  therefore every ``compute_*`` helper and the streaming
  ``_BackwardPacer``) while the rank's clock lies inside a window.
* **Crashes** raise :class:`repro.errors.SimulatedRankCrash` in the dying
  rank at its next fault-checked program point (a communication call, a
  ``compute`` charge crossing the crash time, or the trainer's
  per-iteration check for iteration-pinned crashes).  Survivors learn of
  the death only at *blocking* points (receive, ``waitall``, fused
  rendezvous) — eager sends to a dead rank are black-holed, like eager
  MPI buffering onto a NIC that has not yet flagged the peer — and raise
  :class:`repro.errors.RankFailedError` with their clock charged to
  ``death_time + detect_timeout`` (the bounded detection latency).

Seeded generators (:meth:`FaultPlan.straggler_skew`,
:meth:`FaultPlan.jittery`) derive concrete plans from an integer seed, so
benchmark scenarios are reproducible from ``(nranks, seed)`` alone.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from math import inf
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = [
    "LinkSlowdown",
    "ComputeStraggler",
    "RankCrash",
    "FaultPlan",
    "FaultState",
]


def _check_window(t_start: float, t_end: float, what: str) -> None:
    if not t_start < t_end:
        raise ConfigError(
            f"{what}: empty fault window [{t_start}, {t_end})")


@dataclass(frozen=True)
class LinkSlowdown:
    """Scale the bandwidth term of one rank's link by ``factor`` while the
    booking start time lies in ``[t_start, t_end)``.

    ``direction`` selects the egress link, the ingress link, or both; a
    persistent slow link is the default (window = all of time), a transient
    jitter burst is a finite window.  Overlapping windows compose
    multiplicatively.
    """

    rank: int
    factor: float
    direction: str = "both"          # "egress" | "ingress" | "both"
    t_start: float = 0.0
    t_end: float = inf

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ConfigError(f"link slowdown factor must be > 0, "
                              f"got {self.factor}")
        if self.direction not in ("egress", "ingress", "both"):
            raise ConfigError(
                f"unknown link direction {self.direction!r}; expected "
                "'egress', 'ingress' or 'both'")
        _check_window(self.t_start, self.t_end,
                      f"LinkSlowdown(rank={self.rank})")


@dataclass(frozen=True)
class ComputeStraggler:
    """Scale one rank's local compute charges by ``factor`` while its clock
    lies in ``[t_start, t_end)`` (a slow/thermally-throttled GPU)."""

    rank: int
    factor: float
    t_start: float = 0.0
    t_end: float = inf

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ConfigError(f"straggler factor must be > 0, "
                              f"got {self.factor}")
        _check_window(self.t_start, self.t_end,
                      f"ComputeStraggler(rank={self.rank})")


@dataclass(frozen=True)
class RankCrash:
    """Fail-stop one rank, pinned to a simulated ``time`` (the rank dies at
    its first fault-checked program point with ``clock >= time``) or to a
    1-based training ``iteration`` (checked by the trainer at iteration
    start).  Exactly one of the two must be given."""

    rank: int
    time: Optional[float] = None
    iteration: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.time is None) == (self.iteration is None):
            raise ConfigError(
                f"RankCrash(rank={self.rank}): exactly one of time= or "
                "iteration= must be set")
        if self.time is not None and self.time < 0.0:
            raise ConfigError("crash time must be >= 0")
        if self.iteration is not None and self.iteration < 1:
            raise ConfigError("crash iteration must be >= 1 (1-based)")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault scenario for one SPMD run.

    ``detect_timeout`` is the simulated failure-detector latency: a
    survivor that blocks on a dead (or transitively fail-stopped) peer
    raises with its clock charged to at least
    ``death_time + detect_timeout``.
    ``seed`` records the generator seed for provenance (plans built by
    hand may leave it ``None``); it has no runtime effect.
    """

    links: Tuple[LinkSlowdown, ...] = ()
    stragglers: Tuple[ComputeStraggler, ...] = ()
    crashes: Tuple[RankCrash, ...] = ()
    detect_timeout: float = 1e-3
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.detect_timeout < 0.0:
            raise ConfigError("detect_timeout must be >= 0")
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ConfigError(f"duplicate crash for rank {c.rank}")
            seen.add(c.rank)
        # accept lists from hand-written / JSON plans
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        """Build a plan from the JSON-friendly dict shape of
        :meth:`to_dict` (the ``--fault-plan`` file format)."""
        return cls(
            links=tuple(LinkSlowdown(**e) for e in d.get("links", ())),
            stragglers=tuple(ComputeStraggler(**e)
                             for e in d.get("stragglers", ())),
            crashes=tuple(RankCrash(**e) for e in d.get("crashes", ())),
            detect_timeout=float(d.get("detect_timeout", 1e-3)),
            seed=d.get("seed"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict:
        d = asdict(self)
        # inf does not survive strict JSON: drop default windows
        for lst in (d["links"], d["stragglers"]):
            for e in lst:
                if e.get("t_end") == inf:
                    del e["t_end"]
                    if e.get("t_start") == 0.0:
                        del e["t_start"]
        d["crashes"] = [{k: v for k, v in e.items() if v is not None}
                        for e in d["crashes"]]
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    # ------------------------------------------------------------------
    # Seeded scenario generators
    # ------------------------------------------------------------------
    @classmethod
    def straggler_skew(cls, nranks: int, *, seed: int = 0,
                       straggle_factor: float = 4.0,
                       link_factor: float = 4.0,
                       detect_timeout: float = 1e-3) -> "FaultPlan":
        """The benchmark scenario: one seeded p99 compute straggler plus a
        persistent slow link on a different rank."""
        if nranks < 2:
            raise ConfigError("straggler_skew needs nranks >= 2")
        rng = np.random.default_rng(seed)
        straggler = int(rng.integers(nranks))
        slow = int(rng.integers(nranks - 1))
        if slow >= straggler:
            slow += 1                 # distinct rank, uniform over the rest
        return cls(
            links=(LinkSlowdown(rank=slow, factor=link_factor),),
            stragglers=(ComputeStraggler(rank=straggler,
                                         factor=straggle_factor),),
            detect_timeout=detect_timeout,
            seed=seed,
        )

    @classmethod
    def jittery(cls, nranks: int, *, seed: int = 0, windows: int = 4,
                horizon: float = 1.0, factor: float = 3.0,
                window_frac: float = 0.1,
                detect_timeout: float = 1e-3) -> "FaultPlan":
        """Transient network jitter: ``windows`` seeded slowdown bursts,
        each ``window_frac * horizon`` long, on random ranks/directions."""
        if nranks < 1:
            raise ConfigError("jittery needs nranks >= 1")
        rng = np.random.default_rng(seed)
        width = horizon * window_frac
        links: List[LinkSlowdown] = []
        for _ in range(windows):
            t0 = float(rng.uniform(0.0, max(horizon - width, 0.0)))
            links.append(LinkSlowdown(
                rank=int(rng.integers(nranks)), factor=factor,
                direction=("egress", "ingress", "both")[int(rng.integers(3))],
                t_start=t0, t_end=t0 + width))
        return cls(links=tuple(links), detect_timeout=detect_timeout,
                   seed=seed)

    # ------------------------------------------------------------------
    def compile(self, nranks: int) -> "FaultState":
        """Pre-bucket the plan per rank for O(1) hot-path consultation."""
        return FaultState(self, nranks)


def _window_factor(windows: List[Tuple[float, float, float]],
                   t: float) -> float:
    """Compose the factors of every window containing ``t`` (product)."""
    f = 1.0
    for t0, t1, fac in windows:
        if t0 <= t < t1:
            f *= fac
    return f


class FaultState:
    """A :class:`FaultPlan` compiled against a concrete rank count.

    Owned by a :class:`repro.comm.Network`; all lookups are keyed by
    *network slot* (the physical rank id), so shrunk communicators keep
    consulting the right entries after an elastic resize.
    """

    __slots__ = ("plan", "nranks", "detect_timeout",
                 "egress", "ingress", "compute",
                 "link_faulty", "straggler",
                 "crash_time", "crash_iter")

    def __init__(self, plan: FaultPlan, nranks: int):
        self.plan = plan
        self.nranks = nranks
        self.detect_timeout = float(plan.detect_timeout)
        eg: List[List[Tuple[float, float, float]]] = [[] for _ in range(nranks)]
        ig: List[List[Tuple[float, float, float]]] = [[] for _ in range(nranks)]
        cw: List[List[Tuple[float, float, float]]] = [[] for _ in range(nranks)]
        for ls in plan.links:
            if not 0 <= ls.rank < nranks:
                raise ConfigError(
                    f"LinkSlowdown rank {ls.rank} out of range for "
                    f"P={nranks}")
            w = (ls.t_start, ls.t_end, ls.factor)
            if ls.direction in ("egress", "both"):
                eg[ls.rank].append(w)
            if ls.direction in ("ingress", "both"):
                ig[ls.rank].append(w)
        for st in plan.stragglers:
            if not 0 <= st.rank < nranks:
                raise ConfigError(
                    f"ComputeStraggler rank {st.rank} out of range for "
                    f"P={nranks}")
            cw[st.rank].append((st.t_start, st.t_end, st.factor))
        self.egress = eg
        self.ingress = ig
        self.compute = cw
        self.link_faulty = [bool(eg[r]) or bool(ig[r])
                            for r in range(nranks)]
        self.straggler = [bool(cw[r]) for r in range(nranks)]
        self.crash_time = [inf] * nranks
        self.crash_iter: List[Optional[int]] = [None] * nranks
        for c in plan.crashes:
            if not 0 <= c.rank < nranks:
                raise ConfigError(
                    f"RankCrash rank {c.rank} out of range for P={nranks}")
            if c.time is not None:
                self.crash_time[c.rank] = float(c.time)
            else:
                self.crash_iter[c.rank] = int(c.iteration)

    # hot-path lookups ---------------------------------------------------
    def egress_factor(self, rank: int, t: float) -> float:
        return _window_factor(self.egress[rank], t)

    def ingress_factor(self, rank: int, t: float) -> float:
        return _window_factor(self.ingress[rank], t)

    def compute_factor(self, rank: int, t: float) -> float:
        return _window_factor(self.compute[rank], t)
