"""repro: reproduction of "Near-Optimal Sparse Allreduce for Distributed
Deep Learning" (Ok-Topk, Li & Hoefler, PPoPP 2022).

Layers (bottom-up):

* :mod:`repro.comm` — simulated SPMD/MPI substrate with an alpha-beta
  network cost model and link contention.
* :mod:`repro.sparse` — COO sparse gradients, top-k selection, threshold
  estimation, gradient-space partitioning.
* :mod:`repro.allreduce` — the paper's six (sparse) allreduce schemes:
  Dense, DenseOvlp, TopkA, TopkDSA, gTopk, Gaussiank, OkTopk.
* :mod:`repro.optim` / :mod:`repro.train` — Ok-Topk SGD (Algorithm 2) with
  residual accumulation, and the data-parallel trainer.
* :mod:`repro.nn` / :mod:`repro.data` — pure-numpy neural networks (VGG-16,
  LSTM, BERT) and seeded synthetic datasets standing in for CIFAR-10 / AN4 /
  Wikipedia.
* :mod:`repro.costmodel` — the analytic Table 1 model and paper-scale
  projections.
"""

__version__ = "1.0.0"

from .errors import (
    CommError,
    ConfigError,
    MatchError,
    PartitionError,
    RankFailedError,
    ReproError,
    SparseFormatError,
)

__all__ = [
    "__version__",
    "ReproError",
    "CommError",
    "RankFailedError",
    "MatchError",
    "SparseFormatError",
    "PartitionError",
    "ConfigError",
]
