"""Command-line interface: run the paper's experiments without writing code.

Installed as ``repro-bench``::

    repro-bench volume   --scheme oktopk --n 8192 --p 8 --density 0.01
    repro-bench table1   --n 4096 --p 8 --k 64
    repro-bench table2
    repro-bench scaling  --model bert --p 32 64 256
    repro-bench train    --workload vgg16 --scheme oktopk --workers 4
    repro-bench train    --scheme oktopk --bucket-size 4096 \\
                         --overlap-mode stream   # bucketed Ok-Topk,
                         # discrete-event comm/backward overlap
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_volume(args: argparse.Namespace) -> int:
    from .costmodel import comm_cost, measure_steady_state_volume

    k = args.k or max(1, int(args.density * args.n))
    kwargs = {"tau_prime": 64} if args.scheme == "oktopk" else {}
    measured = measure_steady_state_volume(args.scheme, args.n, args.p, k,
                                           **kwargs)
    predicted = comm_cost(args.scheme, args.n, args.p, k).bandwidth_words
    print(f"scheme={args.scheme} n={args.n} P={args.p} k={k}")
    print(f"  analytic bandwidth words : {predicted:.0f}")
    print(f"  measured words per rank  : {measured:.0f}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .allreduce import PAPER_ORDER
    from .bench import format_table
    from .costmodel import validate_against_measurement

    rows = []
    for scheme in PAPER_ORDER:
        cal = validate_against_measurement(scheme, n=args.n, p=args.p,
                                           k=args.k)
        rows.append([scheme, f"{cal.predicted_words:.0f}",
                     f"{cal.measured_words:.0f}", f"{cal.ratio:.2f}"])
    print(format_table(
        ["algorithm", "model words", "measured words", "ratio"], rows,
        title=f"Table 1 at n={args.n}, P={args.p}, k={args.k}"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .bench import format_table
    from .nn.models import (AN4_FULL_HIDDEN, PAPER_BERT_PARAMS,
                            PAPER_LSTM_PARAMS, PAPER_VGG16_PARAMS,
                            bert_base_param_count, lstm_speech_param_count,
                            vgg16_param_count)

    rows = [
        ["VGG-16", f"{vgg16_param_count(1.0):,}",
         f"{PAPER_VGG16_PARAMS:,}"],
        ["LSTM", f"{lstm_speech_param_count(hidden=AN4_FULL_HIDDEN):,}",
         f"{PAPER_LSTM_PARAMS:,}"],
        ["BERT", f"{bert_base_param_count():,}", f"{PAPER_BERT_PARAMS:,}"],
    ]
    print(format_table(["model", "ours", "paper"], rows,
                       title="Table 2: parameter counts"))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .allreduce import PAPER_ORDER
    from .bench import format_table, paper_scale_breakdown

    for p in args.p:
        rows = []
        for scheme in PAPER_ORDER:
            b = paper_scale_breakdown(args.model, scheme, p,
                                      tau_prime=args.tau_prime)
            rows.append([scheme, f"{b['sparsification']:.3f}",
                         f"{b['communication']:.3f}",
                         f"{b['computation+io']:.3f}", f"{b['total']:.3f}"])
        print(format_table(
            ["scheme", "sparsify (s)", "comm (s)", "compute+io (s)",
             "total (s)"], rows,
            title=f"{args.model} weak scaling, {p} GPUs"))
        print()
    return 0


def _parse_rank_factor(spec: str, what: str) -> tuple:
    try:
        rank, _, factor = spec.partition(":")
        return int(rank), float(factor)
    except ValueError:
        raise SystemExit(
            f"bad {what} spec {spec!r}; expected RANK:FACTOR") from None


def _build_fault_plan(args: argparse.Namespace, crash_unit: str = "iteration"):
    """Assemble a FaultPlan from --fault-plan / the shorthand knobs.

    ``crash_unit`` picks the ``--crash`` pinning: training crashes are
    iteration-pinned (``RANK@ITER``), serving crashes are pinned to a
    simulated time (``RANK@TIME`` seconds).
    """
    from .comm.faults import (ComputeStraggler, FaultPlan, LinkSlowdown,
                              RankCrash)

    plan = None
    if args.fault_plan:
        plan = FaultPlan.from_json(open(args.fault_plan).read())
    links = list(plan.links) if plan else []
    stragglers = list(plan.stragglers) if plan else []
    crashes = list(plan.crashes) if plan else []
    for spec in args.slow_link or ():
        rank, factor = _parse_rank_factor(spec, "--slow-link")
        links.append(LinkSlowdown(rank=rank, factor=factor))
    for spec in args.straggler or ():
        rank, factor = _parse_rank_factor(spec, "--straggler")
        stragglers.append(ComputeStraggler(rank=rank, factor=factor))
    for spec in args.crash or ():
        try:
            rank, _, at = spec.partition("@")
            if crash_unit == "time":
                crashes.append(RankCrash(rank=int(rank), time=float(at)))
            else:
                crashes.append(RankCrash(rank=int(rank), iteration=int(at)))
        except ValueError:
            unit = "RANK@TIME" if crash_unit == "time" else "RANK@ITER"
            raise SystemExit(
                f"bad --crash spec {spec!r}; expected {unit}") from None
    if not (links or stragglers or crashes):
        return None
    return FaultPlan(links=links, stragglers=stragglers, crashes=crashes,
                     detect_timeout=plan.detect_timeout if plan else 1e-3,
                     seed=plan.seed if plan else None)


def _cmd_train(args: argparse.Namespace) -> int:
    from .bench import PROXIES, train_scheme
    from .bench.harness import proxy_network

    proxy = PROXIES[args.workload]()
    faults = _build_fault_plan(args)
    rec = train_scheme(proxy, args.scheme, args.workers, args.iters,
                       density=args.density, k=args.k,
                       bucket_size=args.bucket_size,
                       overlap_mode=args.overlap_mode,
                       eval_every=max(1, args.iters // 3),
                       network=proxy_network(),
                       faults=faults, elastic=args.elastic)
    bd = rec.mean_breakdown(skip=1)
    budget = f"k={args.k}" if args.k is not None else f"density={args.density}"
    print(f"workload={args.workload} scheme={args.scheme} "
          f"P={args.workers} iters={args.iters} {budget} "
          f"overlap={args.overlap_mode}")
    if args.bucket_size is not None:
        nb = rec.records[-1].nbuckets
        saved = sum(r.overlap_saved for r in rec.records)
        print(f"  buckets    : {nb} (bucket_size={args.bucket_size} words), "
              f"overlap hid {saved * 1e3:.3f} ms of comm")
    if any(r.stream_fallback for r in rec.records):
        print("  note       : stream mode fell back to the post-backward "
              "delegating adapter (timings are analytic)")
    for ev in rec.events:
        print(f"  fault      : iteration {ev['t']}: rank(s) "
              f"{ev['failed_ranks']} failed, shrank "
              f"{ev['old_size']} -> {ev['new_size']} workers and resumed")
    print(f"  first loss : {rec.losses[0]:.4f}")
    print(f"  final loss : {rec.losses[-1]:.4f}")
    print(f"  sim time   : {rec.total_time:.4f} s")
    print(f"  breakdown  : sparsify {bd['sparsification'] * 1e3:.3f} ms, "
          f"comm {bd['communication'] * 1e3:.3f} ms, "
          f"compute {bd['computation+io'] * 1e3:.3f} ms / iter")
    final = rec.final_eval()
    if final:
        metrics = ", ".join(f"{k}={v:.4f}" for k, v in final.items())
        print(f"  eval       : {metrics}")
    return 0


def _parse_token_spec(spec: str, what: str):
    """``"64"`` -> 64, ``"32:128"`` -> (32, 128) inclusive."""
    try:
        if ":" in spec:
            lo, _, hi = spec.partition(":")
            return (int(lo), int(hi))
        return int(spec)
    except ValueError:
        raise SystemExit(
            f"bad {what} spec {spec!r}; expected N or LO:HI") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, Workload, simulate_serving, sweep_load

    cfg = ServeConfig(
        p=args.workers, rate=args.rate, n_requests=args.requests,
        prompt_tokens=_parse_token_spec(args.prompt_tokens,
                                        "--prompt-tokens"),
        output_tokens=_parse_token_spec(args.output_tokens,
                                        "--output-tokens"),
        max_batch_size=args.max_batch, max_wait=args.max_wait,
        hidden=args.hidden, layers=args.layers,
        algorithm=args.algorithm, seed=args.seed,
        deadline=args.deadline, retry_budget=args.retry_budget)
    faults = _build_fault_plan(args, crash_unit="time")
    workload = None
    if args.trace:
        workload = Workload.from_json(open(args.trace).read())
    if args.sweep:
        print(f"serve sweep: P={cfg.p} algorithm={cfg.algorithm} "
              f"requests={cfg.n_requests}")
        print(f"  {'offered req/s':>14s} {'goodput req/s':>14s} "
              f"{'goodput tok/s':>14s} {'ttft p99 (ms)':>14s} "
              f"{'itl p99 (ms)':>13s}")
        for rep in sweep_load(cfg, args.sweep, faults=faults):
            s = rep.summary()
            print(f"  {s['offered_req_per_s']:14.1f} "
                  f"{s['goodput_req_per_s']:14.1f} "
                  f"{s['goodput_tokens_per_s']:14.1f} "
                  f"{s['ttft_p99'] * 1e3:14.4f} "
                  f"{s['itl_p99'] * 1e3:13.4f}")
        return 0
    rep = simulate_serving(cfg, workload=workload, faults=faults)
    print(rep.format_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-bench",
        description="Ok-Topk reproduction experiment driver")
    ap.add_argument(
        "--runner", choices=["coop", "gen", "threads"], default=None,
        help="SPMD runner: cooperative engine (default), the "
             "generator/trampoline engine on one OS thread, or the "
             "legacy thread-per-rank fallback")
    ap.add_argument(
        "--no-fused", action="store_true",
        help="force the per-message reference path for collectives "
             "(disables the fused fast path; same as REPRO_FUSED=0)")
    ap.add_argument(
        "--sanitize", action="store_true",
        help="run under the runtime sanitizer (same as REPRO_SANITIZE=1): "
             "loan-window write checks, end-of-run mailbox audit, and the "
             "schedule-perturbation race detector")
    sub = ap.add_subparsers(dest="command", required=True)

    vol = sub.add_parser("volume", help="measured vs analytic volume")
    vol.add_argument("--scheme", default="oktopk")
    vol.add_argument("--n", type=int, default=8192)
    vol.add_argument("--p", type=int, default=8)
    vol.add_argument("--k", type=int, default=None)
    vol.add_argument("--density", type=float, default=0.01)
    vol.set_defaults(fn=_cmd_volume)

    t1 = sub.add_parser("table1", help="regenerate Table 1")
    t1.add_argument("--n", type=int, default=4096)
    t1.add_argument("--p", type=int, default=8)
    t1.add_argument("--k", type=int, default=64)
    t1.set_defaults(fn=_cmd_table1)

    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.set_defaults(fn=_cmd_table2)

    sc = sub.add_parser("scaling", help="paper-scale weak scaling tables")
    sc.add_argument("--model", choices=["vgg16", "lstm", "bert"],
                    default="bert")
    sc.add_argument("--p", type=int, nargs="+", default=[32, 256])
    sc.add_argument("--tau-prime", type=int, default=128)
    sc.set_defaults(fn=_cmd_scaling)

    tr = sub.add_parser("train", help="train a proxy workload")
    tr.add_argument("--workload",
                    choices=["vgg16", "lstm", "bert", "perf_mlp"],
                    default="vgg16")
    tr.add_argument("--scheme", default="oktopk")
    tr.add_argument("--workers", type=int, default=4)
    tr.add_argument("--iters", type=int, default=12)
    tr.add_argument("--density", type=float, default=0.02)
    tr.add_argument("--k", type=int, default=None,
                    help="sparsification budget; overrides --density")
    tr.add_argument("--bucket-size", type=int, default=None,
                    help="fuse per-layer gradients into buckets of this "
                         "many words (session-based allreduce with "
                         "comm/backward overlap); default: one bucket")
    tr.add_argument("--overlap-mode", choices=["analytic", "stream"],
                    default="analytic",
                    help="comm/backward overlap model: 'analytic' replays "
                         "bucket communication against release times after "
                         "the fact (default); 'stream' runs bucket "
                         "reductions on the simulated clock during "
                         "backward (discrete-event overlap, contends with "
                         "other traffic)")
    tr.add_argument("--fault-plan", default=None, metavar="PATH",
                    help="JSON fault plan (repro.comm.FaultPlan schema): "
                         "seeded link slowdowns, compute stragglers and "
                         "rank crashes, deterministic per seed and "
                         "identical across runners")
    tr.add_argument("--slow-link", action="append", metavar="RANK:FACTOR",
                    help="slow down RANK's links by FACTOR (repeatable; "
                         "merged into the fault plan)")
    tr.add_argument("--straggler", action="append", metavar="RANK:FACTOR",
                    help="scale RANK's compute time by FACTOR (repeatable)")
    tr.add_argument("--crash", action="append", metavar="RANK@ITER",
                    help="fail-stop RANK at the start of iteration ITER "
                         "(1-based; repeatable)")
    tr.add_argument("--elastic", action="store_true",
                    help="survive planned crashes: shrink to the remaining "
                         "workers, re-key the scheme state and data shards, "
                         "and resume training")
    tr.set_defaults(fn=_cmd_train)

    sv = sub.add_parser(
        "serve",
        help="tensor-parallel inference serving under open-loop traffic")
    sv.add_argument("--workers", type=int, default=4,
                    help="tensor-parallel group size P")
    sv.add_argument("--requests", type=int, default=32,
                    help="open-loop requests to generate")
    sv.add_argument("--rate", type=float, default=2000.0,
                    help="offered load in requests per simulated second")
    sv.add_argument("--prompt-tokens", default="64", metavar="N|LO:HI",
                    help="prompt length (fixed, or uniform inclusive range)")
    sv.add_argument("--output-tokens", default="4", metavar="N|LO:HI",
                    help="tokens to generate per request")
    sv.add_argument("--max-batch", type=int, default=8,
                    help="dynamic batcher: max batch size")
    sv.add_argument("--max-wait", type=float, default=5e-4,
                    help="dynamic batcher: max wait in simulated seconds "
                         "before a partial batch fires")
    sv.add_argument("--hidden", type=int, default=256)
    sv.add_argument("--layers", type=int, default=4)
    sv.add_argument("--algorithm", default="adaptive",
                    choices=["adaptive", "latency", "bandwidth", "auto",
                             "recursive_doubling", "rabenseifner", "ring"],
                    help="per-layer allreduce schedule: size-adaptive "
                         "(default), a forced role, or a concrete algorithm")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--trace", default=None, metavar="PATH",
                    help="JSON arrival trace (overrides the Poisson "
                         "generator; see repro.serve.Workload.to_json)")
    sv.add_argument("--sweep", type=float, nargs="+", default=None,
                    metavar="RATE",
                    help="goodput-vs-offered-load sweep over these rates "
                         "(prints one table row per rate)")
    sv.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="per-request completion SLO relative to arrival "
                         "(simulated seconds); enables timeout reaping and "
                         "deadline-aware admission shedding")
    sv.add_argument("--retry-budget", type=int, default=2,
                    help="re-enqueue attempts per request after a rank "
                         "crash before it is shed")
    sv.add_argument("--fault-plan", default=None, metavar="PATH",
                    help="JSON fault plan (repro.comm.FaultPlan schema); "
                         "crashes trigger elastic shrink-and-resume under "
                         "live traffic")
    sv.add_argument("--slow-link", action="append", metavar="RANK:FACTOR",
                    help="multiply RANK's link latency+inverse-bandwidth "
                         "(merged into the fault plan)")
    sv.add_argument("--straggler", action="append", metavar="RANK:FACTOR",
                    help="multiply RANK's compute time")
    sv.add_argument("--crash", action="append", metavar="RANK@TIME",
                    help="crash RANK at the given simulated time in "
                         "seconds; survivors shrink and resume")
    sv.set_defaults(fn=_cmd_serve)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.runner:
        import os

        from .comm import RUNNER_ENV
        os.environ[RUNNER_ENV] = args.runner
    if args.no_fused:
        import os

        from .comm import FUSED_ENV
        os.environ[FUSED_ENV] = "0"
    if args.sanitize:
        import os

        from .comm import SANITIZE_ENV
        os.environ[SANITIZE_ENV] = "1"
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
