"""Shared experiment drivers for the paper-figure benchmarks.

Two tiers, as laid out in DESIGN.md:

* **executed proxies** — the real algorithms, real numpy models and the
  simulated network at reduced scale (P <= 32, width-reduced models).
  These produce measured volumes, simulated times and convergence curves.
* **paper-scale projections** — the calibrated analytic model evaluated at
  the paper's n/P (e.g. BERT n=133.5M on P=256), cross-checked against the
  executed tier by the calibration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from ..comm import FaultPlan, NetworkModel, run_spmd
from ..costmodel import PAPER_COMPUTE_SECONDS, iteration_seconds
from ..data import ShardedLoader, make_an4_like, make_cifar_like, \
    make_wikipedia_like
from ..nn.models import BertConfig, make_bert_model, \
    make_lstm_speech_model, make_vgg16_model
from ..train import RunRecord, Trainer, TrainerConfig, collapse_repeats, \
    top1_accuracy, word_error_rate


# ---------------------------------------------------------------------------
# Shared synthetic-dataset cache
# ---------------------------------------------------------------------------
#: (builder name, args) -> (train, test).  Every rank of an SPMD run — and
#: every repetition of a benchmark — used to regenerate the *identical*
#: seeded dataset from scratch; at P=16 that is 16 redundant generations
#: per call.  Splits are immutable (arrays are write-locked here), so one
#: shared instance per configuration is safe across ranks and runs.
_SPLITS_MEMO: Dict[tuple, tuple] = {}


def _memoized_splits(key: tuple, builder: Callable[[], tuple]) -> tuple:
    out = _SPLITS_MEMO.get(key)
    if out is None:
        out = builder()
        for split in out:
            split.x.setflags(write=False)
            split.y.setflags(write=False)
        _SPLITS_MEMO[key] = out
    return out


# ---------------------------------------------------------------------------
# Proxy task definitions (the three paper workloads, numpy-sized)
# ---------------------------------------------------------------------------
@dataclass
class ProxySpec:
    """A reduced-scale stand-in for one of the paper's workloads."""

    name: str
    make_model: Callable[[], Any]
    make_splits: Callable[[], tuple]
    global_batch: int
    lr: float
    mode: str = "sgd"
    eval_builder: Optional[Callable[[Any], Callable]] = None


def vgg_proxy(width_mult: float = 0.05, n_train: int = 128,
              noise: float = 0.6) -> ProxySpec:
    def make_splits():
        return _memoized_splits(
            ("cifar", n_train, 32, 32, noise, 0),
            lambda: make_cifar_like(n_train, 32, image_size=32, noise=noise,
                                    seed=0))

    def eval_builder(test):
        def evaluate(model):
            return {"acc": top1_accuracy(model.predict(test.x), test.y),
                    "loss": model.eval_loss(test.x, test.y)}
        return evaluate

    return ProxySpec(
        name="vgg16",
        make_model=lambda: make_vgg16_model(width_mult=width_mult, seed=42),
        make_splits=make_splits,
        global_batch=16, lr=0.05, mode="sgd", eval_builder=eval_builder)


def lstm_proxy(hidden: int = 32, n_train: int = 96) -> ProxySpec:
    def make_splits():
        return _memoized_splits(
            ("an4", n_train, 24, 12, 12, 8, 2),
            lambda: make_an4_like(n_train, 24, features=12, seq_len=12,
                                  n_phones=8, seed=2))

    def eval_builder(test):
        def evaluate(model):
            logits = model.predict(test.x)
            hyp = np.argmax(logits, axis=-1)
            hyps = [collapse_repeats(h) for h in hyp]
            refs = [collapse_repeats(r) for r in test.y]
            return {"wer": word_error_rate(hyps, refs),
                    "loss": model.eval_loss(test.x, test.y)}
        return evaluate

    return ProxySpec(
        name="lstm",
        make_model=lambda: make_lstm_speech_model(
            features=12, hidden=hidden, layers=1, classes=8, seq_len=12,
            seed=3),
        make_splits=make_splits,
        global_batch=16, lr=0.3, mode="sgd", eval_builder=eval_builder)


def bert_proxy(hidden: int = 32, layers: int = 2,
               n_train: int = 128) -> ProxySpec:
    cfg = BertConfig(vocab=200, hidden=hidden, layers=layers, heads=4,
                     intermediate=2 * hidden, max_seq=16)

    def make_splits():
        return _memoized_splits(
            ("wiki", n_train, 32, 200, 16, 4),
            lambda: make_wikipedia_like(n_train, 32, vocab=200, seq_len=16,
                                        seed=4))

    def eval_builder(test):
        def evaluate(model):
            return {"loss": model.eval_loss(test.x, test.y)}
        return evaluate

    return ProxySpec(
        name="bert",
        make_model=lambda: make_bert_model(cfg, seq_len=16, seed=5),
        make_splits=make_splits,
        global_batch=16, lr=2e-3, mode="adam", eval_builder=eval_builder)


def perf_proxy(hidden: int = 64, image_size: int = 16,
               n_train: int = 64, global_batch: int = 16) -> ProxySpec:
    """Comm-dominated probe for wall-clock perf tracking.

    A deliberately tiny MLP (~50k params, microseconds of numpy compute per
    iteration) so that `train_scheme` wall time is dominated by the
    simulator's communication layer — the thing `bench_perf_wallclock.py`
    tracks across PRs.  Not one of the paper's workloads.

    ``global_batch``/``n_train`` exist for the P >= 64 scale cases:
    :class:`~repro.data.ShardedLoader` requires ``size <= global_batch <=
    n_train``, so e.g. ``perf_proxy(n_train=128, global_batch=128)`` runs
    a P=128 world at one sample per rank.  The P <= 16 perf-trajectory
    rows keep the historical defaults.
    """
    from ..nn.activation import ReLU
    from ..nn.linear import Linear
    from ..nn.losses import SoftmaxCrossEntropy
    from ..nn.module import FlatModel, Flatten, Sequential

    feats = 3 * image_size * image_size

    def make_model():
        rng = np.random.default_rng(7)
        mod = Sequential(Flatten(), Linear(feats, hidden, rng=rng), ReLU(),
                         Linear(hidden, 10, rng=rng))
        return FlatModel(mod, SoftmaxCrossEntropy(),
                         flops_per_sample=2.0 * feats * hidden)

    def make_splits():
        return _memoized_splits(
            ("cifar", n_train, 16, image_size, 0.6, 0),
            lambda: make_cifar_like(n_train, 16, image_size=image_size,
                                    noise=0.6, seed=0))

    if global_batch > n_train:
        raise ValueError(f"global_batch {global_batch} > n_train {n_train}")
    return ProxySpec(name="perf_mlp", make_model=make_model,
                     make_splits=make_splits, global_batch=global_batch,
                     lr=0.05, mode="sgd")


PROXIES = {"vgg16": vgg_proxy, "lstm": lstm_proxy, "bert": bert_proxy,
           "perf_mlp": perf_proxy}


# ---------------------------------------------------------------------------
# Executed training runs
# ---------------------------------------------------------------------------
def train_scheme(proxy: ProxySpec, scheme: str, p: int, iterations: int, *,
                 density: Optional[float] = 0.02,
                 k: Optional[int] = None,
                 bucket_size: Optional[int] = None,
                 overlap_mode: str = "analytic",
                 scheme_kwargs: Optional[Dict[str, Any]] = None,
                 eval_every: int = 0, xi_every: int = 0,
                 network: Optional[NetworkModel] = None,
                 faults: Optional[FaultPlan] = None,
                 elastic: bool = False,
                 seed: int = 0) -> RunRecord:
    """Run one scheme on P simulated ranks; returns rank 0's RunRecord.

    ``k`` overrides ``density`` as the sparsification budget;
    ``bucket_size`` (words) turns on bucketed session execution with the
    generic communication/backward overlap timeline, and
    ``overlap_mode="stream"`` runs the buckets on the simulated clock
    during backward (discrete-event overlap) instead of replaying them
    analytically.  ``faults`` injects a deterministic
    :class:`~repro.comm.FaultPlan`; with ``elastic=True`` survivors
    shrink past planned crashes and the returned record is the first
    survivor's (rank 0 may be the one that died).
    """

    def worker(comm):
        train, test = proxy.make_splits()
        model = proxy.make_model()
        loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                               comm.size, seed=seed)
        eval_fn = (proxy.eval_builder(test)
                   if proxy.eval_builder is not None else None)
        cfg = TrainerConfig(
            iterations=iterations, scheme=scheme,
            scheme_kwargs=scheme_kwargs or {},
            density=density, k=k, bucket_size=bucket_size,
            overlap_mode=overlap_mode,
            lr=proxy.lr, mode=proxy.mode,
            eval_every=eval_every, xi_every=xi_every,
            elastic=elastic)
        return Trainer(comm, model, loader, cfg, eval_fn=eval_fn).run()

    res = run_spmd(p, worker, model=network, faults=faults)
    for rec in res.results:
        if rec is not None:
            return rec
    raise RuntimeError("no surviving rank produced a RunRecord")


# ---------------------------------------------------------------------------
# Paper-scale projections (Figures 8 / 10 / 12)
# ---------------------------------------------------------------------------
PAPER_MODEL_SIZES = {"vgg16": 14_728_266, "lstm": 27_569_568,
                     "bert": 133_547_324}
PAPER_DENSITIES = {"vgg16": 0.02, "lstm": 0.02, "bert": 0.01}
PAPER_LOCAL_BATCH = {"vgg16": 16, "lstm": 2, "bert": 8}


def paper_scale_breakdown(model_kind: str, scheme: str, p: int, *,
                          network: Optional[NetworkModel] = None,
                          tau_prime: int = 32) -> Dict[str, float]:
    """Analytic per-iteration breakdown at the paper's model size, using
    the effective (software-stack-calibrated) network constants."""
    model = network or NetworkModel.piz_daint_effective()
    n = PAPER_MODEL_SIZES[model_kind]
    k = max(1, int(PAPER_DENSITIES[model_kind] * n))
    compute = (PAPER_COMPUTE_SECONDS[model_kind]
               * PAPER_LOCAL_BATCH[model_kind])
    return iteration_seconds(scheme, n, p, k, model,
                             compute_seconds=compute, tau_prime=tau_prime)


#: bandwidth-scaled network for the executed convergence runs: the proxy
#: models are ~400x smaller than the paper's, so beta (and the per-flop
#: time) are scaled up to keep the communication/computation balance of
#: the paper's figures (dense comm ~ compute at small P).
def proxy_network() -> NetworkModel:
    return NetworkModel(alpha=2.0e-6, beta=2.0e-7, flop_time=1.0e-10)


# ---------------------------------------------------------------------------
# Text table formatting (the "same rows the paper reports")
# ---------------------------------------------------------------------------
def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    cols = [[str(h)] + [_fmt(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append("  ".join(_fmt(v).ljust(w)
                               for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)
