"""Instrumented training loops for the threshold/selection figures.

These replicate the trainer's inner loop but expose the accumulator state
that Figures 4 and 6 visualize (threshold predictions, selected counts),
which the production `Trainer` does not need to keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..allreduce import make_allreduce
from ..comm import run_spmd
from ..data import ShardedLoader
from ..optim import TopkSGD
from ..sparse import exact_threshold, gaussian_threshold
from ..sparse.threshold import adjusted_gaussian_threshold
from .harness import ProxySpec


@dataclass
class ThresholdSnapshot:
    """Figure 4: threshold predictions on a late-training accumulator,
    using a deliberately stale Ok-Topk threshold (age tau' - 1)."""

    k: int
    accurate: float
    gaussian: float
    oktopk_reused: float
    selected_accurate: int
    selected_gaussian: int
    selected_oktopk: int
    percentiles: Dict[str, float]


def threshold_snapshot(proxy: ProxySpec, *, p: int = 2, iterations: int = 8,
                       tau_prime: int = 8,
                       density: float = 0.02) -> ThresholdSnapshot:
    """Train for ``iterations`` steps so the Ok-Topk threshold is
    ``iterations-1`` iterations old, then compare the three estimators on
    the fresh accumulator."""

    def worker(comm):
        train, _ = proxy.make_splits()
        model = proxy.make_model()
        loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                               comm.size, seed=11)
        algo = make_allreduce("oktopk", density=density,
                              tau_prime=tau_prime,
                              selection_guard=1e9)  # keep it stale
        driver = TopkSGD(algo, proxy.lr, model.nparams)
        for t in range(1, iterations + 1):
            x, y = loader.next_batch(t)
            _, grad = model.loss_and_grad(x, y)
            if t == iterations:
                lr = driver.lr(t)
                acc = driver.residual + lr * grad
                k = algo.resolve_k(acc.size)
                accurate = exact_threshold(acc, k)
                gauss = gaussian_threshold(acc, k)
                reused = algo._local_th
                mag = np.abs(acc)
                return ThresholdSnapshot(
                    k=k,
                    accurate=accurate,
                    gaussian=gauss,
                    oktopk_reused=float(reused),
                    selected_accurate=int((mag >= accurate).sum()),
                    selected_gaussian=int((mag >= gauss).sum()),
                    selected_oktopk=int((mag >= reused).sum()),
                    percentiles={
                        "p50": float(np.percentile(mag, 50)),
                        "p99": float(np.percentile(mag, 99)),
                        "max": float(mag.max()),
                    })
            driver.step(comm, model.params_flat, grad)
        raise AssertionError("unreachable")

    return run_spmd(p, worker)[0]


@dataclass
class SelectionCurves:
    """Figure 6: per-iteration selected-value counts."""

    k: int
    accurate: List[int]          # == k by definition
    gaussian: List[int]
    oktopk_local: List[int]
    oktopk_global: List[int]


def selection_curves(proxy: ProxySpec, *, p: int = 2, iterations: int = 16,
                     tau_prime: int = 8,
                     density: float = 0.02) -> SelectionCurves:
    """Track how many values each estimator selects during a real
    training run (Ok-Topk runs the training; Gaussian-k evaluated on the
    same accumulators)."""

    def worker(comm):
        train, _ = proxy.make_splits()
        model = proxy.make_model()
        loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                               comm.size, seed=13)
        algo = make_allreduce("oktopk", density=density,
                              tau_prime=tau_prime)
        driver = TopkSGD(algo, proxy.lr, model.nparams)
        k = algo.resolve_k(model.nparams)
        gauss_counts, local_counts, global_counts = [], [], []
        for t in range(1, iterations + 1):
            x, y = loader.next_batch(t)
            _, grad = model.loss_and_grad(x, y)
            lr = driver.lr(t)
            acc = driver.residual + lr * grad
            g_th = adjusted_gaussian_threshold(acc, k)
            gauss_counts.append(int((np.abs(acc) >= g_th).sum()))
            info = driver.step(comm, model.params_flat, grad)
            local_counts.append(info.result.info["selected_local"])
            global_counts.append(info.result.info["selected_global"])
        return SelectionCurves(
            k=k, accurate=[k] * iterations, gaussian=gauss_counts,
            oktopk_local=local_counts, oktopk_global=global_counts)

    return run_spmd(p, worker)[0]


def output_density_stats(proxy: ProxySpec, *, p: int = 4,
                         iterations: int = 6,
                         density: float = 0.02) -> Dict[str, float]:
    """Section 5.2: output-buffer density expansion (fill-in) of
    TopkA/TopkDSA during a real training run."""

    def worker(comm):
        train, _ = proxy.make_splits()
        model = proxy.make_model()
        loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                               comm.size, seed=17)
        algo = make_allreduce("topka", density=density)
        driver = TopkSGD(algo, proxy.lr, model.nparams)
        ratios = []
        for t in range(1, iterations + 1):
            x, y = loader.next_batch(t)
            _, grad = model.loss_and_grad(x, y)
            info = driver.step(comm, model.params_flat, grad)
            out_nnz = info.result.info["output_nnz"]
            ratios.append(out_nnz / model.nparams)
        return float(np.mean(ratios))

    out_density = run_spmd(p, worker)[0]
    return {"local_density": density, "output_density": out_density,
            "expansion": out_density / density}
