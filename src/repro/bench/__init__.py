"""Experiment drivers shared by the benchmarks/ directory."""

from .harness import (
    PAPER_DENSITIES,
    PAPER_LOCAL_BATCH,
    PAPER_MODEL_SIZES,
    PROXIES,
    ProxySpec,
    bert_proxy,
    format_table,
    lstm_proxy,
    paper_scale_breakdown,
    perf_proxy,
    train_scheme,
    vgg_proxy,
)

__all__ = [
    "ProxySpec",
    "vgg_proxy",
    "lstm_proxy",
    "bert_proxy",
    "perf_proxy",
    "PROXIES",
    "train_scheme",
    "paper_scale_breakdown",
    "PAPER_MODEL_SIZES",
    "PAPER_DENSITIES",
    "PAPER_LOCAL_BATCH",
    "format_table",
]
