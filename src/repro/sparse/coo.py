"""COO (coordinate) sparse gradient vectors.

The paper stores sparse gradients in COO format: ``k`` values plus ``k``
indexes, i.e. ``2k`` words on the wire (Section 2).  We use int32 indexes
and float32 values so the simulator's word accounting matches the paper's.

Invariants (checked by :meth:`COOVector.validate`):

* ``indices`` strictly increasing, within ``[0, n)``;
* ``indices`` int32, ``values`` float32, same length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import SparseFormatError

INDEX_DTYPE = np.int32
VALUE_DTYPE = np.float32


@dataclass(frozen=True)
class COOVector:
    """An immutable sparse vector of logical length ``n``."""

    n: int
    indices: np.ndarray
    values: np.ndarray

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int) -> "COOVector":
        return cls(n, np.empty(0, INDEX_DTYPE), np.empty(0, VALUE_DTYPE))

    @classmethod
    def from_arrays(cls, n: int, indices: np.ndarray,
                    values: np.ndarray, *, sort: bool = True) -> "COOVector":
        """Build from possibly-unsorted (but duplicate-free) arrays."""
        idx = np.asarray(indices, dtype=INDEX_DTYPE)
        val = np.asarray(values, dtype=VALUE_DTYPE)
        if sort and idx.size > 1:
            order = np.argsort(idx, kind="stable")
            idx, val = idx[order], val[order]
        vec = cls(int(n), idx, val)
        vec.validate()
        return vec

    @classmethod
    def from_dense(cls, dense: np.ndarray,
                   indices: np.ndarray) -> "COOVector":
        """Gather ``dense[indices]`` into a sparse vector."""
        idx = np.sort(np.asarray(indices, dtype=INDEX_DTYPE))
        return cls.from_arrays(dense.size, idx,
                               dense[idx].astype(VALUE_DTYPE), sort=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def density(self) -> float:
        return self.nnz / self.n if self.n else 0.0

    def comm_nwords(self) -> int:
        """Wire size: one word per value plus one per index (COO, 2k)."""
        return 2 * self.nnz

    def validate(self) -> None:
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise SparseFormatError("indices/values must be 1-D, same length")
        if self.indices.dtype != INDEX_DTYPE:
            raise SparseFormatError(f"indices must be {INDEX_DTYPE}")
        if self.values.dtype != VALUE_DTYPE:
            raise SparseFormatError(f"values must be {VALUE_DTYPE}")
        if self.nnz:
            if int(self.indices[0]) < 0 or int(self.indices[-1]) >= self.n:
                raise SparseFormatError("index out of range")
            if np.any(np.diff(self.indices) <= 0):
                raise SparseFormatError("indices must be strictly increasing")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            out = np.zeros(self.n, dtype=VALUE_DTYPE)
        out[self.indices] = self.values
        return out

    def scatter_add(self, dense: np.ndarray) -> None:
        """Add this vector into a dense buffer in place."""
        dense[self.indices] += self.values

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def combine(self, other: "COOVector") -> "COOVector":
        """Sparse sum of two vectors (union of supports)."""
        return combine_sum([self, other])

    def scale(self, factor: float) -> "COOVector":
        return COOVector(self.n, self.indices,
                         (self.values * VALUE_DTYPE(factor)))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def topk(self, k: int) -> "COOVector":
        """Keep the ``k`` entries of largest magnitude (ties broken toward
        lower index, deterministically)."""
        if k >= self.nnz:
            return self
        if k <= 0:
            return COOVector.empty(self.n)
        mag = np.abs(self.values)
        # Partition, then break ties at the threshold by lowest index.
        kth = np.partition(mag, self.nnz - k)[self.nnz - k]
        strictly = mag > kth
        need = k - int(strictly.sum())
        sel = strictly.copy()
        if need > 0:
            at_kth = np.flatnonzero(mag == kth)
            sel[at_kth[:need]] = True
        pick = np.flatnonzero(sel)
        return COOVector(self.n, self.indices[pick], self.values[pick])

    def select_threshold(self, threshold: float) -> "COOVector":
        """Keep entries with ``|value| >= threshold``."""
        pick = np.abs(self.values) >= threshold
        return COOVector(self.n, self.indices[pick], self.values[pick])

    def restrict(self, lo: int, hi: int) -> "COOVector":
        """Entries with index in ``[lo, hi)`` (absolute indices kept)."""
        a = int(np.searchsorted(self.indices, lo, side="left"))
        b = int(np.searchsorted(self.indices, hi, side="left"))
        return COOVector(self.n, self.indices[a:b], self.values[a:b])

    def split(self, boundaries: Sequence[int]) -> list["COOVector"]:
        """Split by region boundaries (length P+1, ``boundaries[0] == 0``,
        ``boundaries[-1] == n``) into P region vectors.

        One ``searchsorted`` over the inner boundaries, then direct slicing
        (``np.split`` pays ~10x this in bookkeeping on small vectors)."""
        cuts = self.indices.searchsorted(np.asarray(boundaries[1:-1])).tolist()
        n, idx, val = self.n, self.indices, self.values
        lo = 0
        out = []
        for hi in cuts:
            out.append(COOVector(n, idx[lo:hi], val[lo:hi]))
            lo = hi
        out.append(COOVector(n, idx[lo:], val[lo:]))
        return out

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOVector):
            return NotImplemented
        return (self.n == other.n
                and np.array_equal(self.indices, other.indices)
                and np.array_equal(self.values, other.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"COOVector(n={self.n}, nnz={self.nnz})"


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two strictly-increasing index arrays.

    Equivalent to ``np.intersect1d(a, b, assume_unique=True)`` but exploits
    that COO index arrays are already sorted: one ``searchsorted`` instead
    of concatenate + sort.  This is Algorithm 1 line 14 (the contributed
    index set), executed every iteration on every rank.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=a.dtype)
    if a.size > b.size:  # probe the smaller array into the larger
        a, b = b, a
    pos = np.searchsorted(b, a)
    pos[pos == b.size] = b.size - 1
    return a[b[pos] == a]


def combine_sum(vectors: Iterable[COOVector]) -> COOVector:
    """Sparse sum of many COO vectors (duplicate indices accumulate).

    Vectorized as one stable ``argsort`` over the concatenated indices plus
    ``np.add.reduceat`` over the run boundaries.  Accumulation happens in
    **float64** (``reduceat``'s ``dtype`` argument) before the single final
    cast back to float32 — same precision as the historical
    ``bincount(weights=...astype(float64))`` path, but without materializing
    the float64 temporary or ``np.unique``'s inverse array.  The stable sort
    preserves appearance order within an index, so sums are bit-identical to
    the bincount formulation.

    This is the local reduction performed by the owner rank in
    split-and-reduce, and the source of the *fill-in* effect for
    TopkA/TopkDSA (union of supports grows).
    """
    vecs = [v for v in vectors]
    if not vecs:
        raise ValueError("combine_sum needs at least one vector")
    n = vecs[0].n
    for v in vecs:
        if v.n != n:
            raise SparseFormatError(
                f"mismatched logical lengths: {v.n} != {n}")
    live = [v for v in vecs if v.nnz]
    if not live:
        return COOVector.empty(n)
    if len(live) == 1:
        return live[0]
    all_idx = np.concatenate([v.indices for v in live])
    all_val = np.concatenate([v.values for v in live])
    order = np.argsort(all_idx, kind="stable")
    idx_sorted = all_idx[order]
    val_sorted = all_val[order]
    starts = np.empty(0, dtype=np.intp)
    if idx_sorted.size:
        boundary = np.empty(idx_sorted.size, dtype=bool)
        boundary[0] = True
        np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
    sums = np.add.reduceat(val_sorted, starts, dtype=np.float64)
    return COOVector(n, idx_sorted[starts], sums.astype(VALUE_DTYPE))
