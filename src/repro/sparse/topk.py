"""Top-k selection primitives on dense gradients.

The paper distinguishes (Section 3.1.3):

* *exact* top-k: sort-based, accurate but expensive on accelerators;
* *threshold* selection: a single linear scan ``|g| >= t``, cheap, used
  every iteration with a periodically re-evaluated threshold.

All selections are deterministic: ties at the threshold magnitude break
toward the lower index.
"""

from __future__ import annotations

import numpy as np

from .coo import COOVector, INDEX_DTYPE


def kth_largest_abs(x: np.ndarray, k: int) -> float:
    """The k-th largest ``|x|`` — the paper's "accurate threshold".

    For ``k > x.size`` returns 0 (everything selected); ``k <= 0`` is an
    error because no finite threshold selects nothing in general.
    """
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    n = x.size
    if k > n:
        return 0.0
    mag = np.abs(x).ravel()
    return float(np.partition(mag, n - k)[n - k])


def topk_indices(x: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries, sorted ascending."""
    n = x.size
    if k <= 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if k >= n:
        return np.arange(n, dtype=INDEX_DTYPE)
    mag = np.abs(x).ravel()
    kth = np.partition(mag, n - k)[n - k]
    strictly = mag > kth
    need = k - int(strictly.sum())
    sel = strictly
    if need > 0:
        at_kth = np.flatnonzero(mag == kth)
        sel = strictly.copy()
        sel[at_kth[:need]] = True
    return np.flatnonzero(sel).astype(INDEX_DTYPE)


def exact_topk(x: np.ndarray, k: int) -> COOVector:
    """Exact top-k sparsification of a dense vector."""
    idx = topk_indices(x, k)
    return COOVector.from_arrays(x.size, idx,
                                 x.ravel()[idx], sort=False)


def threshold_indices(x: np.ndarray, threshold: float) -> np.ndarray:
    """Indices with ``|x| >= threshold`` (one linear scan)."""
    return np.flatnonzero(np.abs(x).ravel() >= threshold).astype(INDEX_DTYPE)


def threshold_select(x: np.ndarray, threshold: float) -> COOVector:
    """Threshold sparsification — Ok-Topk's per-iteration selection."""
    idx = threshold_indices(x, threshold)
    return COOVector.from_arrays(x.size, idx,
                                 x.ravel()[idx], sort=False)
