"""Top-k selection primitives on dense gradients.

The paper distinguishes (Section 3.1.3):

* *exact* top-k: sort-based, accurate but expensive on accelerators;
* *threshold* selection: a single linear scan ``|g| >= t``, cheap, used
  every iteration with a periodically re-evaluated threshold.

All selections are deterministic: ties at the threshold magnitude break
toward the lower index.
"""

from __future__ import annotations

import numpy as np

from .coo import COOVector, INDEX_DTYPE, VALUE_DTYPE


def kth_largest_abs(x: np.ndarray, k: int) -> float:
    """The k-th largest ``|x|`` — the paper's "accurate threshold".

    For ``k > x.size`` returns 0 (everything selected); ``k <= 0`` is an
    error because no finite threshold selects nothing in general.
    """
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    n = x.size
    if k > n:
        return 0.0
    mag = np.abs(x).ravel()
    return float(np.partition(mag, n - k)[n - k])


def topk_indices(x: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries, sorted ascending."""
    n = x.size
    if k <= 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if k >= n:
        return np.arange(n, dtype=INDEX_DTYPE)
    mag = np.abs(x).ravel()
    kth = np.partition(mag, n - k)[n - k]
    strictly = mag > kth
    need = k - int(strictly.sum())
    sel = strictly
    if need > 0:
        at_kth = np.flatnonzero(mag == kth)
        sel = strictly.copy()
        sel[at_kth[:need]] = True
    return np.flatnonzero(sel).astype(INDEX_DTYPE)


def exact_topk(x: np.ndarray, k: int) -> COOVector:
    """Exact top-k sparsification of a dense vector."""
    idx = topk_indices(x, k)
    # direct construction: indices are sorted/unique/in-range by build
    return COOVector(x.size, idx,
                     x.ravel()[idx].astype(VALUE_DTYPE, copy=False))


def threshold_indices(x: np.ndarray, threshold: float) -> np.ndarray:
    """Indices with ``|x| >= threshold`` (one linear scan)."""
    return np.flatnonzero(np.abs(x).ravel() >= threshold).astype(INDEX_DTYPE)


def threshold_select(x: np.ndarray, threshold: float) -> COOVector:
    """Threshold sparsification — Ok-Topk's per-iteration selection."""
    idx = threshold_indices(x, threshold)
    # direct construction: flatnonzero output is sorted/unique/in-range
    return COOVector(x.size, idx,
                     x.ravel()[idx].astype(VALUE_DTYPE, copy=False))


# ---------------------------------------------------------------------------
# Rank-batched variants: one numpy pass over a (P, n) matrix whose rows are
# the per-rank vectors.  Each row's result is bit-identical to the scalar
# function applied to that row alone (partition and comparisons are
# row-independent).
# ---------------------------------------------------------------------------
def batched_kth_largest_abs(xs: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`kth_largest_abs` — one ``np.partition`` call.

    Returns a float64 array of per-row thresholds.
    """
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    nranks, n = xs.shape
    if k > n:
        return np.zeros(nranks, dtype=np.float64)
    mag = np.abs(xs)
    return np.partition(mag, n - k, axis=1)[:, n - k].astype(np.float64)


def batched_threshold_select(xs: np.ndarray,
                             thresholds: "np.ndarray | list",
                             ) -> "list[COOVector]":
    """Row-wise :func:`threshold_select` — one mask + one ``nonzero`` pass.

    The per-rank path compares float32 data against a Python float, which
    numpy evaluates as a float32 comparison (weak scalar promotion); to
    match it bit-for-bit the batched comparison casts the thresholds to a
    float32 column first.
    """
    nranks, n = xs.shape
    ths = np.asarray(thresholds, dtype=xs.dtype).reshape(nranks, 1)
    mask = np.abs(xs) >= ths
    # 1-D nonzero is several times faster than the 2-D path; recover the
    # per-row split points from the flat indices afterwards.
    flat = np.flatnonzero(mask)
    cols = (flat % n).astype(INDEX_DTYPE)
    vals = np.ascontiguousarray(xs).reshape(-1)[flat]
    starts = np.searchsorted(flat, np.arange(1, nranks) * n)
    # direct construction (no validate): per-row flat indices are sorted,
    # unique and in-range by construction; dtypes already canonical
    return [COOVector(n, c, v)
            for c, v in zip(np.split(cols, starts), np.split(vals, starts))]
