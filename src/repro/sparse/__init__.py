"""Sparse gradient primitives: COO vectors, top-k selection, threshold
estimation and gradient-space partitioning."""

from .coo import (
    COOVector,
    INDEX_DTYPE,
    VALUE_DTYPE,
    combine_sum,
    intersect_sorted,
)
from .metrics import SelectionStats, density, fill_in_ratio, selection_stats
from .partition import (
    balanced_boundaries_local,
    equal_boundaries,
    imbalance,
    region_counts,
    region_of,
    sanitize_boundaries,
    validate_boundaries,
)
from .threshold import (
    ReusedThreshold,
    adjusted_gaussian_threshold,
    exact_threshold,
    gaussian_threshold,
)
from .topk import (
    exact_topk,
    kth_largest_abs,
    threshold_indices,
    threshold_select,
    topk_indices,
)

__all__ = [
    "COOVector",
    "combine_sum",
    "intersect_sorted",
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "exact_topk",
    "kth_largest_abs",
    "topk_indices",
    "threshold_indices",
    "threshold_select",
    "exact_threshold",
    "gaussian_threshold",
    "adjusted_gaussian_threshold",
    "ReusedThreshold",
    "equal_boundaries",
    "balanced_boundaries_local",
    "sanitize_boundaries",
    "region_of",
    "region_counts",
    "imbalance",
    "validate_boundaries",
    "SelectionStats",
    "density",
    "fill_in_ratio",
    "selection_stats",
]
