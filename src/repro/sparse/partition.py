"""Gradient-space partitioning for split-and-reduce (Section 3.1.1).

The gradient index space ``[0, n)`` is cut into ``P`` contiguous regions;
worker ``i`` owns the reduction of region ``i``.  A *naive* equal split can
be badly imbalanced because local top-k coordinates cluster (e.g. in
specific layers).  The *balanced* split puts approximately ``k/P`` of each
worker's local top-k coordinates into every region; workers agree by
averaging their boundary vectors with a small allreduce (P words), repeated
every ``tau`` iterations.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError


def equal_boundaries(n: int, p: int) -> np.ndarray:
    """Naive split: P near-equal contiguous regions of ``[0, n)``."""
    if p < 1 or n < 0:
        raise PartitionError(f"invalid partition request n={n}, P={p}")
    return np.linspace(0, n, p + 1).astype(np.int64)


def balanced_boundaries_local(indices: np.ndarray, n: int,
                              p: int) -> np.ndarray:
    """One worker's proposal: boundaries that equalize its own local top-k
    coordinate counts across regions (quantiles of the index distribution).

    Returns a float vector of length ``P+1`` suitable for consensus
    averaging; degenerates to the equal split when the worker has no
    selected coordinates.
    """
    if p < 1:
        raise PartitionError(f"invalid partition request P={p}")
    idx = np.sort(np.asarray(indices))
    if idx.size == 0:
        return equal_boundaries(n, p).astype(np.float64)
    # Quantile positions: boundary j should sit after j*k/P selected coords.
    qpos = np.arange(1, p) * idx.size / p
    inner = idx[np.minimum(np.floor(qpos).astype(np.int64),
                           idx.size - 1)].astype(np.float64)
    return np.concatenate(([0.0], inner, [float(n)]))


def sanitize_boundaries(raw: np.ndarray, n: int) -> np.ndarray:
    """Turn an averaged (float, possibly unordered after rounding) boundary
    vector into a valid integer partition of ``[0, n)``."""
    b = np.asarray(raw, dtype=np.float64).copy()
    b = np.clip(b, 0.0, float(n))
    b = np.maximum.accumulate(b)  # enforce monotonicity
    out = np.rint(b).astype(np.int64)
    out[0] = 0
    out[-1] = n
    out = np.maximum.accumulate(out)
    return out


def region_of(boundaries: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Region id for each index under the given boundaries."""
    return np.searchsorted(boundaries[1:-1], indices, side="right")


def region_counts(boundaries: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Number of the given indices falling into each region."""
    p = len(boundaries) - 1
    return np.bincount(region_of(boundaries, indices), minlength=p)


def imbalance(boundaries: np.ndarray, indices: np.ndarray) -> float:
    """Max/mean ratio of per-region selected-coordinate counts (1.0 is
    perfectly balanced; the naive split can reach P)."""
    counts = region_counts(boundaries, indices)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)


def validate_boundaries(boundaries: np.ndarray, n: int) -> None:
    b = np.asarray(boundaries)
    if b.ndim != 1 or b.size < 2:
        raise PartitionError("boundaries must be a 1-D vector of length P+1")
    if b[0] != 0 or b[-1] != n:
        raise PartitionError(
            f"boundaries must span [0, {n}], got [{b[0]}, {b[-1]}]")
    if np.any(np.diff(b) < 0):
        raise PartitionError("boundaries must be non-decreasing")
