"""Threshold estimation strategies for top-k selection.

Three estimators, matching Section 3.1.3 and Figure 4 of the paper:

* :func:`exact_threshold` — sort/partition based k-th largest magnitude
  ("accurate threshold");
* :class:`ReusedThreshold` — Ok-Topk's strategy: re-evaluate the accurate
  threshold every ``tau_prime`` iterations and reuse it in between, because
  gradient statistics form a slowly changing stochastic process;
* :func:`gaussian_threshold` — Gaussian-k's strategy: fit a normal
  distribution (same mean/std) and invert its tail with the percent-point
  function.  Real gradient distributions have lighter tails than a Gaussian
  late in training, so this *over*-estimates the threshold and thus
  *under*-estimates k (Figure 4/6 shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
from scipy import stats

from .topk import kth_largest_abs


def exact_threshold(x: np.ndarray, k: int) -> float:
    """Accurate threshold: the k-th largest ``|x|``."""
    return kth_largest_abs(x, k)


def gaussian_threshold(x: np.ndarray, k: int) -> float:
    """Gaussian-k threshold estimate via the normal percent-point function.

    With ``X ~ N(mu, sigma)`` fitted to the gradient values, the two-sided
    tail ``P(|X - mu| > t) = k/n`` gives ``t = sigma * ppf(1 - k/(2n))``.
    """
    n = x.size
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n:
        return 0.0
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0.0:
        return abs(mu)
    q = 1.0 - 0.5 * k / n
    return abs(mu) + sigma * float(stats.norm.ppf(q))


def adjusted_gaussian_threshold(x: np.ndarray, k: int, *,
                                min_fraction: float = 0.75,
                                shrink: float = 0.8,
                                max_rounds: int = 32) -> float:
    """Gaussian threshold with the paper's fairness adjustment (Section 5.4):
    scale the predicted threshold down until at least ``min_fraction * k``
    values are selected.  Each extra round costs one more scan, charged by
    the caller.
    """
    t = gaussian_threshold(x, k)
    if t == 0.0:
        return t
    mag = np.abs(x).ravel()
    target = min_fraction * min(k, x.size)
    for _ in range(max_rounds):
        if np.count_nonzero(mag >= t) >= target:
            return t
        t *= shrink
    return t


@dataclass
class ReusedThreshold:
    """Periodically re-evaluated threshold (Ok-Topk, Algorithm 1 lines 2-4).

    ``get(x, k, t)`` returns the active threshold for iteration ``t``
    (1-based, as in the paper): re-evaluated exactly when
    ``(t - 1) % tau_prime == 0``, otherwise the cached value is reused.

    Attributes:
        tau_prime: re-evaluation period (the paper uses 32 for VGG/LSTM and
            128 for BERT).
        compute: the accurate estimator to call on re-evaluation.
        evaluations: how many times the expensive path ran (for the
            sparsification-overhead accounting).
    """

    tau_prime: int = 32
    compute: Callable[[np.ndarray, int], float] = exact_threshold
    evaluations: int = 0
    _cached: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.tau_prime < 1:
            raise ValueError("tau_prime must be >= 1")

    def due(self, t: int) -> bool:
        """Is a re-evaluation scheduled at iteration ``t`` (1-based)?"""
        return self._cached is None or (t - 1) % self.tau_prime == 0

    def get(self, x: np.ndarray, k: int, t: int) -> float:
        if self.due(t):
            self._cached = float(self.compute(x, k))
            self.evaluations += 1
        return self._cached

    @property
    def current(self) -> Optional[float]:
        return self._cached
