"""Sparsity statistics used by the Figure 6 / Section 5.2 analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coo import COOVector


def density(vec: COOVector) -> float:
    """Fraction of non-zeros, the paper's ``k/n``."""
    return vec.density


def fill_in_ratio(output: COOVector, k: int) -> float:
    """How much the reduction output support grew relative to ``k``.

    TopkA/TopkDSA suffer from fill-in: the union of P workers' top-k
    supports can approach ``min(P*k, n)`` (13.2% / 34.5% output density
    reported in Section 5.2).
    """
    if k <= 0:
        raise ValueError("k must be >= 1")
    return output.nnz / k


@dataclass(frozen=True)
class SelectionStats:
    """Accuracy of a threshold-based selection against the target k."""

    target_k: int
    selected: int

    @property
    def deviation(self) -> float:
        """Relative deviation |selected - k| / k (paper reports <11%)."""
        return abs(self.selected - self.target_k) / self.target_k

    @property
    def underestimated(self) -> bool:
        return self.selected < self.target_k


def selection_stats(x: np.ndarray, threshold: float,
                    k: int) -> SelectionStats:
    selected = int(np.count_nonzero(np.abs(x) >= threshold))
    return SelectionStats(target_k=k, selected=selected)
