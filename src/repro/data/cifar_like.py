"""CIFAR-10-like synthetic image classification data.

Class-conditional Gaussian images: each of the 10 classes has a smooth
random template; samples are template + noise.  Same shapes as CIFAR-10
(3x32x32 float32, labels 0..9), linearly separable enough for a small VGG
to make steady accuracy progress within a numpy-friendly budget.
"""

from __future__ import annotations

import numpy as np

from .synthetic import Split, class_templates


def make_cifar_like(n_train: int = 512, n_test: int = 128, *,
                    n_classes: int = 10, image_size: int = 32,
                    noise: float = 1.0, seed: int = 0) -> tuple[Split, Split]:
    """Returns (train, test) splits with disjoint noise draws."""
    rng = np.random.default_rng(seed)
    shape = (3, image_size, image_size)
    templates = class_templates(rng, n_classes, shape, smooth=2) * 2.0

    def draw(n: int) -> Split:
        y = rng.integers(0, n_classes, size=n)
        x = templates[y] + noise * rng.normal(size=(n,) + shape).astype(
            np.float32)
        return Split(x.astype(np.float32), y.astype(np.int64))

    return draw(n_train), draw(n_test)
