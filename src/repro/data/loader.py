"""Sharded mini-batch loading for data-parallel training.

Every worker holds the full (synthetic) dataset and draws its disjoint
shard of each global mini-batch: with global batch size ``B`` and ``P``
workers, worker ``i`` takes rows ``[i*B/P, (i+1)*B/P)`` of the shared
shuffled order.  All workers shuffle with the same seed so the epoch
permutation is coordinated (what a distributed sampler does in PyTorch).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .synthetic import Split


class ShardedLoader:
    """Deterministic per-rank batch source (satisfies
    :class:`repro.train.BatchSource`)."""

    def __init__(self, split: Split, global_batch: int, rank: int,
                 size: int, *, seed: int = 0):
        if global_batch < size:
            raise ConfigError(
                f"global batch {global_batch} < number of workers {size}")
        if global_batch > len(split):
            raise ConfigError(
                f"global batch {global_batch} > dataset size {len(split)}")
        self.split = split
        self.global_batch = global_batch
        self.rank = rank
        self.size = size
        self.seed = seed
        self.batches_per_epoch = len(split) // global_batch
        self._epoch = -1
        self._order: np.ndarray | None = None
        # shard bounds are static per (rank, size): computed once, not on
        # every next_batch (this sat on the per-iteration hot path)
        bounds = np.linspace(0, global_batch, size + 1).astype(int)
        self._bounds = (int(bounds[rank]), int(bounds[rank + 1]))

    @property
    def local_batch(self) -> int:
        lo, hi = self._shard_bounds()
        return hi - lo

    def reshard(self, rank: int, size: int) -> None:
        """Re-key this loader to a resized world (elastic recovery).

        The global batch size and the seeded epoch permutation are
        unchanged — the survivors simply split each global batch ``size``
        ways instead, so the union of shards still covers exactly the
        same global batches in the same order.
        """
        if self.global_batch < size:
            raise ConfigError(
                f"global batch {self.global_batch} < number of workers "
                f"{size}")
        if not 0 <= rank < size:
            raise ConfigError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        bounds = np.linspace(0, self.global_batch, size + 1).astype(int)
        self._bounds = (int(bounds[rank]), int(bounds[rank + 1]))

    def _shard_bounds(self) -> tuple[int, int]:
        return self._bounds

    def _ensure_epoch(self, epoch: int) -> None:
        if epoch != self._epoch:
            rng = np.random.default_rng(self.seed + epoch)
            self._order = rng.permutation(len(self.split))
            self._epoch = epoch

    def next_batch(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """The rank's shard of global batch ``t`` (1-based iteration)."""
        step = t - 1
        epoch = step // self.batches_per_epoch
        pos = step % self.batches_per_epoch
        self._ensure_epoch(epoch)
        base = pos * self.global_batch
        lo, hi = self._shard_bounds()
        idx = self._order[base + lo:base + hi]
        return self.split.x[idx], self.split.y[idx]
