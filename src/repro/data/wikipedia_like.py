"""Wikipedia-like synthetic token corpus for masked-LM pre-training.

Token sequences follow a sparse first-order Markov chain over a Zipf-ish
vocabulary: each token has a handful of likely successors, so masked
positions are genuinely predictable from context — the structure BERT's
MLM objective needs to show a decreasing loss curve (Figure 13).
"""

from __future__ import annotations

import numpy as np

from .synthetic import Split

MASK_TOKEN = 0          # reserved id
IGNORE = -100


def _transition_table(rng: np.random.Generator, vocab: int,
                      branching: int) -> np.ndarray:
    """For each token, `branching` likely successors (first one dominant)."""
    return rng.integers(1, vocab, size=(vocab, branching))


def make_wikipedia_like(n_train: int = 256, n_test: int = 64, *,
                        vocab: int = 1000, seq_len: int = 32,
                        branching: int = 3, mask_prob: float = 0.15,
                        seed: int = 0) -> tuple[Split, Split]:
    """Returns (train, test): x is (N, T) int64 token ids with ~15% of
    positions replaced by MASK; y is (N, T) with the original token at
    masked positions and IGNORE elsewhere."""
    rng = np.random.default_rng(seed)
    table = _transition_table(rng, vocab, branching)

    def draw(n: int) -> Split:
        seqs = np.empty((n, seq_len), dtype=np.int64)
        cur = rng.integers(1, vocab, size=n)
        seqs[:, 0] = cur
        for t in range(1, seq_len):
            # mostly follow the dominant successor, sometimes branch
            choice = rng.integers(0, table.shape[1], size=n)
            choice[rng.random(n) < 0.6] = 0
            cur = table[cur, choice]
            seqs[:, t] = cur
        mask = rng.random((n, seq_len)) < mask_prob
        mask[:, 0] = False  # keep at least the first token visible
        y = np.where(mask, seqs, IGNORE)
        x = seqs.copy()
        x[mask] = MASK_TOKEN
        return Split(x, y)

    return draw(n_train), draw(n_test)
