"""Shared helpers for the seeded synthetic datasets.

The paper trains on CIFAR-10, AN4 and Wikipedia; with no network access we
substitute seeded synthetic datasets with the same tensor shapes and the
statistical structure each task needs to be *learnable* (so convergence
comparisons between allreduce schemes are meaningful).  Substitutions are
documented in DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Split:
    """A (features, labels) pair."""

    x: np.ndarray
    y: np.ndarray

    def __len__(self) -> int:
        return len(self.x)


def class_templates(rng: np.random.Generator, n_classes: int,
                    shape: tuple, smooth: int = 0) -> np.ndarray:
    """Per-class mean patterns; optional box smoothing along the last two
    axes makes image-like templates."""
    t = rng.normal(size=(n_classes,) + shape).astype(np.float32)
    if smooth:
        for _ in range(smooth):
            t = (t + np.roll(t, 1, axis=-1) + np.roll(t, -1, axis=-1)
                 + np.roll(t, 1, axis=-2) + np.roll(t, -1, axis=-2)) / 5.0
    return t
