"""Seeded synthetic datasets standing in for CIFAR-10 / AN4 / Wikipedia."""

from .an4_like import make_an4_like
from .cifar_like import make_cifar_like
from .loader import ShardedLoader
from .synthetic import Split, class_templates
from .wikipedia_like import IGNORE, MASK_TOKEN, make_wikipedia_like

__all__ = [
    "Split",
    "class_templates",
    "make_cifar_like",
    "make_an4_like",
    "make_wikipedia_like",
    "MASK_TOKEN",
    "IGNORE",
    "ShardedLoader",
]
