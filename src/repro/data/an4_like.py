"""AN4-like synthetic speech data: framed feature sequences with framewise
phone labels.

Each utterance is a random sequence of "phones"; each phone spans a few
frames and emits its template feature vector plus noise.  The model
classifies frames; WER is computed between collapsed framewise decodes and
the collapsed reference — exercising the recurrent model, sequence batching
and the WER metric exactly like the paper's AN4 task does.
"""

from __future__ import annotations

import numpy as np

from .synthetic import Split, class_templates


def make_an4_like(n_train: int = 256, n_test: int = 64, *,
                  n_phones: int = 12, features: int = 40, seq_len: int = 20,
                  min_span: int = 2, max_span: int = 4, noise: float = 0.5,
                  seed: int = 0) -> tuple[Split, Split]:
    """Returns (train, test); x is (N, T, F) float32, y is (N, T) int64
    framewise phone labels."""
    rng = np.random.default_rng(seed)
    templates = class_templates(rng, n_phones, (features,)) * 2.0

    def draw(n: int) -> Split:
        x = np.empty((n, seq_len, features), dtype=np.float32)
        y = np.empty((n, seq_len), dtype=np.int64)
        for i in range(n):
            t = 0
            while t < seq_len:
                phone = int(rng.integers(0, n_phones))
                span = int(rng.integers(min_span, max_span + 1))
                span = min(span, seq_len - t)
                y[i, t:t + span] = phone
                x[i, t:t + span] = templates[phone]
                t += span
        x += noise * rng.normal(size=x.shape).astype(np.float32)
        return Split(x, y)

    return draw(n_train), draw(n_test)
