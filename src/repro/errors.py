"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so downstream users can catch library failures separately from programming
errors (``ValueError``/``TypeError`` are still used for plain argument
validation at API boundaries).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CommError(ReproError):
    """Errors raised by the simulated communication runtime."""


class RankFailedError(CommError):
    """One or more SPMD ranks failed.

    Raised by the launcher when rank programs raised genuine errors, and
    on every *surviving* rank when a peer fail-stops under a fault plan
    (see :mod:`repro.comm.faults`) — there ``failures`` maps each dead
    rank to its :class:`SimulatedRankCrash`.

    Attributes:
        failures: mapping ``rank -> exception``, in ascending rank order.
        failed_ranks: the sorted tuple of failed rank ids.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(sorted(failures.items()))
        self.failed_ranks = tuple(self.failures)
        ranks = ", ".join(str(r) for r in self.failed_ranks)
        parts = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}"
            for r, e in self.failures.items())
        super().__init__(
            f"{len(self.failures)} rank(s) failed (ranks {ranks}); "
            f"{parts}"
        )


class SimulatedRankCrash(CommError):
    """A rank fail-stopped on schedule under a :class:`FaultPlan`.

    Raised *in the crashing rank* at a deterministic program point; never
    treated as a genuine program error by the launcher (survivors either
    recover elastically or raise :class:`RankFailedError` naming this
    rank).

    Attributes:
        rank: the dead rank's network slot.
        time: the simulated death time in seconds.
    """

    def __init__(self, rank: int, time: float):
        self.rank = rank
        self.time = float(time)
        super().__init__(
            f"rank {rank} crashed at simulated t={self.time:.6e}s "
            f"(fault plan)")


class MatchError(CommError):
    """A receive could not be matched (e.g. negative source, bad tag)."""


class DeadlockError(CommError):
    """Every live rank is blocked on a receive that can never be matched.

    Only the cooperative runner can prove this (it sees the global blocked
    set); the threaded runner would simply hang until interrupted.

    Attributes:
        blocked: one dict per parked rank —
            ``{"rank", "op", "clock", ...}`` where ``op`` is ``"recv"``
            (with ``"source"``/``"tag"``), ``"collective"`` (with
            ``"sig"``) or ``"shrink"``, and ``clock`` is the rank's
            simulated time at the moment it parked.  Empty when raised
            outside the cooperative engine.
    """

    def __init__(self, msg: str, blocked: list[dict] | None = None):
        super().__init__(msg)
        self.blocked = list(blocked or ())


class SparseFormatError(ReproError):
    """A sparse vector violated its format invariants."""


class PartitionError(ReproError):
    """Invalid region boundaries for gradient-space partitioning."""


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration.

    Also raised for violations of documented API contracts whose silent
    acceptance would corrupt algorithm behavior — e.g. the 1-based
    iteration numbering of ``GradientAllreduce.reduce``/``begin`` (a
    non-positive ``t`` would shift every periodic schedule by a full
    period).  Plain shape/type argument validation stays ``ValueError``.
    """
