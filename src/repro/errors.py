"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so downstream users can catch library failures separately from programming
errors (``ValueError``/``TypeError`` are still used for plain argument
validation at API boundaries).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CommError(ReproError):
    """Errors raised by the simulated communication runtime."""


class RankFailedError(CommError):
    """One or more SPMD ranks raised an exception.

    Attributes:
        failures: mapping ``rank -> exception`` for every failed rank.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = next(iter(self.failures.values()))
        super().__init__(
            f"{len(self.failures)} rank(s) failed (ranks {ranks}); "
            f"first error: {type(first).__name__}: {first}"
        )


class MatchError(CommError):
    """A receive could not be matched (e.g. negative source, bad tag)."""


class DeadlockError(CommError):
    """Every live rank is blocked on a receive that can never be matched.

    Only the cooperative runner can prove this (it sees the global blocked
    set); the threaded runner would simply hang until interrupted.
    """


class SparseFormatError(ReproError):
    """A sparse vector violated its format invariants."""


class PartitionError(ReproError):
    """Invalid region boundaries for gradient-space partitioning."""


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration.

    Also raised for violations of documented API contracts whose silent
    acceptance would corrupt algorithm behavior — e.g. the 1-based
    iteration numbering of ``GradientAllreduce.reduce``/``begin`` (a
    non-positive ``t`` would shift every periodic schedule by a full
    period).  Plain shape/type argument validation stays ``ValueError``.
    """
