"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so downstream users can catch library failures separately from programming
errors (``ValueError``/``TypeError`` are still used for plain argument
validation at API boundaries).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CommError(ReproError):
    """Errors raised by the simulated communication runtime."""


class RankFailedError(CommError):
    """One or more SPMD ranks failed.

    Raised by the launcher when rank programs raised genuine errors, and
    on every *surviving* rank when a peer fail-stops under a fault plan
    (see :mod:`repro.comm.faults`) — there ``failures`` maps each dead
    rank to its :class:`SimulatedRankCrash`.  Elastic recovery loops (the
    trainer's shrink-and-resume and the fault-aware serving loop in
    :mod:`repro.serve.loop`) catch this on the survivors, ``shrink()``
    the communicator and continue; request-level outcomes under serving
    (shed/timeout/retry) are terminal record states, never exceptions.

    Attributes:
        failures: mapping ``rank -> exception``, in ascending rank order.
        failed_ranks: the sorted tuple of failed rank ids.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(sorted(failures.items()))
        self.failed_ranks = tuple(self.failures)
        ranks = ", ".join(str(r) for r in self.failed_ranks)
        parts = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}"
            for r, e in self.failures.items())
        super().__init__(
            f"{len(self.failures)} rank(s) failed (ranks {ranks}); "
            f"{parts}"
        )


class SimulatedRankCrash(CommError):
    """A rank fail-stopped on schedule under a :class:`FaultPlan`.

    Raised *in the crashing rank* at a deterministic program point; never
    treated as a genuine program error by the launcher (survivors either
    recover elastically or raise :class:`RankFailedError` naming this
    rank).

    Attributes:
        rank: the dead rank's network slot.
        time: the simulated death time in seconds.
    """

    def __init__(self, rank: int, time: float):
        self.rank = rank
        self.time = float(time)
        super().__init__(
            f"rank {rank} crashed at simulated t={self.time:.6e}s "
            f"(fault plan)")


class MatchError(CommError):
    """A receive could not be matched (e.g. negative source, bad tag)."""


class DeadlockError(CommError):
    """Every live rank is blocked on a receive that can never be matched.

    Only the cooperative runner can prove this (it sees the global blocked
    set); the threaded runner would simply hang until interrupted.

    Attributes:
        blocked: one dict per parked rank —
            ``{"rank", "op", "clock", ...}`` where ``op`` is ``"recv"``
            (with ``"source"``/``"tag"``), ``"collective"`` (with
            ``"sig"``) or ``"shrink"``, and ``clock`` is the rank's
            simulated time at the moment it parked.  Empty when raised
            outside the cooperative engine.
    """

    def __init__(self, msg: str, blocked: list[dict] | None = None):
        super().__init__(msg)
        self.blocked = list(blocked or ())


class SanitizerError(CommError):
    """Base class for violations detected by the runtime sanitizer mode
    (``REPRO_SANITIZE=1`` / ``run_spmd(sanitize=True)``; see
    :mod:`repro.comm.launcher`).  A sanitizer error means the SPMD
    section *completed* but broke a runtime invariant the normal mode
    does not pay to check."""


class LoanViolationError(SanitizerError):
    """A loaned ``isend`` buffer was made writable during its loan window.

    The loan protocol write-locks a sender's array from ``isend`` until
    delivery (or seal); a direct write already raises ``ValueError`` in
    the offending rank.  This error catches the sneakier bypass — code
    that calls ``setflags(write=True)`` on a loaned array — detected at
    loan release by the sanitizer.

    Attributes:
        violations: one human-readable record per violating loan.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        super().__init__(
            f"{len(self.violations)} loaned send buffer(s) were made "
            f"writable during their loan window: "
            + "; ".join(self.violations))


class MailboxLeakError(SanitizerError):
    """Messages were still undelivered when the SPMD section completed.

    Eager semantics make posting without a matching receive *legal*, but
    a scheme that finishes an iteration with traffic still in flight is
    almost always mismatched send/recv bookkeeping (wrong tag, wrong
    round count) that happens not to deadlock.

    Attributes:
        leaks: one dict per undelivered message with keys
            ``src``/``dst``/``tag``/``seq``/``nwords``.
    """

    def __init__(self, leaks: list[dict]):
        self.leaks = list(leaks)
        head = ", ".join(
            f"{m['src']}->{m['dst']} tag={m['tag']} seq={m['seq']} "
            f"({m['nwords']}w)" for m in self.leaks[:8])
        more = f" (+{len(self.leaks) - 8} more)" if len(self.leaks) > 8 \
            else ""
        super().__init__(
            f"{len(self.leaks)} message(s) left undelivered at section "
            f"end: {head}{more}")


class ScheduleRaceError(SanitizerError):
    """A rank program's outcome depends on the scheduling order.

    The sanitizer re-runs the section on a fresh network with a seeded
    perturbation of the engine's ready queue; simulated time is
    schedule-independent by construction, so results, clocks and traffic
    counters must be bit-identical.  Any difference means the program
    communicates through shared Python state (a message race) instead of
    the simulated network.

    Attributes:
        differences: human-readable list of what diverged.
    """

    def __init__(self, differences: list[str]):
        self.differences = list(differences)
        super().__init__(
            "outcome depends on scheduling order (message race): "
            + "; ".join(self.differences))


class SparseFormatError(ReproError):
    """A sparse vector violated its format invariants."""


class PartitionError(ReproError):
    """Invalid region boundaries for gradient-space partitioning."""


class ConfigError(ReproError):
    """Invalid experiment or algorithm configuration.

    Also raised for violations of documented API contracts whose silent
    acceptance would corrupt algorithm behavior — e.g. the 1-based
    iteration numbering of ``GradientAllreduce.reduce``/``begin`` (a
    non-positive ``t`` would shift every periodic schedule by a full
    period).  Plain shape/type argument validation stays ``ValueError``.
    """
