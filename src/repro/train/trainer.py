"""Data-parallel SPMD trainer gluing model, optimizer and allreduce.

Each rank runs :class:`Trainer` inside an SPMD program (see
:func:`repro.comm.run_spmd`).  An iteration:

1. draw the rank's mini-batch shard,
2. forward/backward (real numpy math) and charge the simulated compute
   time from the model's FLOP estimate,
3. distributed optimizer step — Algorithm 2 (``TopkSGD``) or the
   error-feedback wrapper around Adam (the paper's BERT mode) — which runs
   the configured allreduce scheme through a bucketed
   :class:`~repro.allreduce.ReduceSession` (per-layer gradients pushed in
   backward order; ``bucket_size`` configures the fusion policy, and the
   default ``None`` is bit-identical to the one-shot ``reduce``) and
   charges sparsification + communication time,
4. record the per-phase breakdown under one of two overlap models
   (``overlap_mode``):

   * ``"analytic"`` (default) — the PR-2 replay: the backward lump is
     charged up front, buckets reduce afterwards, and
     :func:`repro.allreduce.visible_comm_time` replays their
     communication against release times
     ``T_b = compute * (1 - f * (1 - release_frac_b))``
     (``f = overlap_backward_fraction``; forward compute never
     overlaps).  DenseOvlp's legacy credit ``max(0, comm - f*compute)``
     falls out of the same timeline; bucketed sparse schemes gain
     overlap the same way.
   * ``"stream"`` — discrete-event overlap on the simulated clock: the
     trainer charges backward compute *incrementally per pushed
     segment* (:class:`_BackwardPacer` keeps the clock on the backward
     timeline), each bucket's reduction is issued inside an async
     region the moment its last segment arrives — its messages book
     links mid-backward and contend with any other traffic — and
     ``finish()`` waits for the outstanding buckets.
     ``iteration_time`` is then the *measured* clock delta; the
     analytic replay is still evaluated on the same bucket stats and
     recorded as ``IterationRecord.analytic_visible_comm`` as a
     cross-check.  The two agree under zero contention; under
     contention the measurement may fall on either side of the replay
     (message-granularity pipelining vs head-of-line blocking between
     interleaved collective rounds — see
     :mod:`repro.allreduce.session`).

Evaluation and ξ measurement are diagnostics and do not consume simulated
time (the paper also excludes them from the runtime-per-iteration bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol

import numpy as np

from ..allreduce import ParamLayout, make_allreduce, visible_comm_time
from ..comm import SimComm
from ..errors import ConfigError, RankFailedError
from ..optim import Adam, SparseOptimWrapper, TopkSGD
from .rankbatch import RankBatch
from .records import IterationRecord, RunRecord
from .xi import measure_xi


class TrainableModel(Protocol):
    """What the trainer needs from a model (see repro.nn.FlatModel).

    Models may additionally expose a ``layout`` property (a
    :class:`repro.allreduce.ParamLayout` of named parameter segments);
    the trainer falls back to a single-segment layout otherwise.
    """

    @property
    def nparams(self) -> int: ...

    @property
    def params_flat(self) -> np.ndarray: ...

    def loss_and_grad(self, x: np.ndarray,
                      y: np.ndarray) -> tuple[float, np.ndarray]: ...

    def train_flops(self, batch_size: int) -> float: ...


class BatchSource(Protocol):
    def next_batch(self, t: int) -> tuple[np.ndarray, np.ndarray]: ...


@dataclass
class TrainerConfig:
    """Configuration of one training run."""

    iterations: int
    scheme: str = "oktopk"
    scheme_kwargs: Dict[str, Any] = field(default_factory=dict)
    density: Optional[float] = 0.01
    k: Optional[int] = None
    mode: str = "sgd"                 # "sgd" (Algorithm 2) | "adam" (wrapped)
    lr: Any = 0.1
    momentum: float = 0.0
    weight_decay: float = 0.0
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    eval_every: int = 0
    xi_every: int = 0
    overlap_backward_fraction: float = 2.0 / 3.0
    #: bucket-fusion threshold in words for the session-based allreduce;
    #: None = one bucket (bit-identical to the one-shot reduce)
    bucket_size: Optional[int] = None
    #: "analytic" (default, PR-2 replay accounting) or "stream"
    #: (discrete-event overlap on the simulated clock; see module doc)
    overlap_mode: str = "analytic"
    #: survive peer fail-stops (fault plans, see :mod:`repro.comm.faults`):
    #: on :class:`~repro.errors.RankFailedError` the trainer checkpoints,
    #: shrinks the communicator to the survivors, re-keys the allreduce
    #: state and data shards to P-1 and redoes the interrupted iteration.
    #: Off (default) the error propagates to the launcher.
    elastic: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if self.mode not in ("sgd", "adam"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.bucket_size is not None and self.bucket_size < 1:
            raise ConfigError("bucket_size must be >= 1")
        if self.overlap_mode not in ("analytic", "stream"):
            raise ConfigError(
                f"unknown overlap_mode {self.overlap_mode!r}; "
                "expected 'analytic' or 'stream'")


DENSE_SCHEMES = {"dense", "dense_ovlp"}


class _BackwardPacer:
    """Charges backward compute incrementally as segments are pushed.

    Keeps the rank's clock on the backward timeline of the analytic
    model: after segment pushes totalling fraction ``frac`` of the
    parameter mass, the clock sits at
    ``t0 + compute * (1 - f * (1 - frac))`` — exactly the release time
    :func:`repro.allreduce.visible_comm_time` attributes to a bucket
    closing there (same expression, so the streamed and analytic
    timelines agree bit-for-bit on releases).  The non-overlappable
    share ``(1 - f) * compute`` (forward + the backward part that cannot
    overlap) is charged by the first call; ``f = 0`` degenerates to the
    whole lump before the first push.
    """

    __slots__ = ("comm", "compute_time", "f", "n", "_t0", "_emitted")

    def __init__(self, comm: SimComm, compute_time: float,
                 overlap_fraction: float, total_words: int):
        self.comm = comm
        self.compute_time = compute_time
        self.f = min(max(float(overlap_fraction), 0.0), 1.0)
        self.n = total_words
        self._t0 = comm.clock
        self._emitted = 0

    def __call__(self, segment) -> None:
        self._emitted += segment.size
        frac = self._emitted / self.n
        target = self._t0 + self.compute_time * (1.0 - self.f * (1.0 - frac))
        dt = target - self.comm.clock
        if dt > 0.0:
            self.comm.compute(dt)


def build_allreduce(cfg: TrainerConfig):
    kwargs = dict(cfg.scheme_kwargs)
    if cfg.scheme not in DENSE_SCHEMES:
        if cfg.k is not None:
            kwargs["k"] = cfg.k
        elif cfg.density is not None:
            kwargs["density"] = cfg.density
    return make_allreduce(cfg.scheme, **kwargs)


class Trainer:
    """Per-rank training driver."""

    def __init__(self, comm: SimComm, model: TrainableModel,
                 batches: BatchSource, cfg: TrainerConfig,
                 eval_fn: Optional[Callable[[Any], Dict[str, float]]] = None):
        self.comm = comm
        self.model = model
        self.batches = batches
        self.cfg = cfg
        self.eval_fn = eval_fn
        self.allreduce = build_allreduce(cfg)
        n = model.nparams
        layout = getattr(model, "layout", None)
        if layout is None:
            layout = ParamLayout.single(n)
        self.layout = layout
        if cfg.mode == "adam":
            inner = Adam(lr=cfg.lr, beta1=cfg.adam_beta1,
                         beta2=cfg.adam_beta2,
                         weight_decay=cfg.weight_decay)
            self.driver = SparseOptimWrapper(self.allreduce, inner, n,
                                             layout=layout,
                                             bucket_size=cfg.bucket_size)
            self._alpha_for_xi = 1.0
        else:
            self.driver = TopkSGD(self.allreduce, cfg.lr, n, layout=layout,
                                  bucket_size=cfg.bucket_size)
            self._alpha_for_xi = None  # use the schedule value per step
        self.record = RunRecord(scheme=cfg.scheme, p=comm.size)
        # Lockstep rank-batched compute (see repro.train.rankbatch):
        # published on the communicator so deeper layers (Ok-Topk local
        # selection) can join the batch.  Disengages itself whenever
        # batching is unsupported or ranks can diverge.
        self._rb = RankBatch(comm, model)
        comm.rank_batch = self._rb

    # ------------------------------------------------------------------
    def run(self) -> RunRecord:
        cfg = self.cfg
        t = 1
        while t <= cfg.iterations:
            # Iteration-pinned planned crashes fire here (no-op without a
            # fault plan); survivors detect the death inside the
            # iteration's first blocking communication.
            self.comm.maybe_crash(iteration=t)
            try:
                self._run_iteration(t)
            except RankFailedError as exc:
                if not cfg.elastic:
                    raise
                self._recover(exc, t)
                continue  # redo the interrupted iteration at P-1
            t += 1
        return self.record

    def _run_iteration(self, t: int) -> None:
        comm, cfg, model = self.comm, self.cfg, self.model
        stream = cfg.overlap_mode == "stream"
        x, y = self.batches.next_batch(t)
        batched = self._rb.loss_and_grad(t, x, y)
        if batched is None:
            loss, grad = model.loss_and_grad(x, y)
        else:
            loss, grad = batched

        clock0 = comm.clock
        recv0 = int(comm.net.words_recv[comm.slot])
        if stream:
            # The compute lump is charged incrementally by the pacer
            # between segment pushes (inside driver.step), so the
            # clock tracks the backward timeline while buckets issue.
            compute_time = comm.net.model.flop_time * max(
                0.0, model.train_flops(len(x)))
        else:
            comm.compute(0.0)  # anchor
            with comm.phase("compute"):
                comm.compute_flops(model.train_flops(len(x)))
            compute_time = comm.clock - clock0

        xi = None
        if cfg.xi_every and t % cfg.xi_every == 0:
            xi = self._measure_xi(grad, t)

        analytic_visible: Optional[float] = None
        stream_fallback = False
        if stream:
            pacer = _BackwardPacer(comm, compute_time,
                                   cfg.overlap_backward_fraction,
                                   self.layout.n)
            info = self.driver.step(comm, model.params_flat, grad,
                                    pacer=pacer, rb=self._rb)
            res = info.result
            sparsify = res.sparsify_time
            comm_t = res.comm_time
            # The discrete-event timeline *is* the measurement.
            iter_time = comm.clock - clock0
            visible_comm = max(0.0,
                               iter_time - compute_time - sparsify)
            # Cross-check: the analytic replay over the same bucket
            # stats; equal under zero contention, diverges in either
            # direction once transfers contend (see module doc).
            analytic_visible = visible_comm_time(
                res.bucket_stats, compute_time,
                cfg.overlap_backward_fraction, comm_t)
            # Surface a session that could not stream (delegating
            # adapter ran post-backward): these timings are analytic.
            stream_fallback = bool(
                res.bucket_stats
                and res.bucket_stats[0].info.get("stream_fallback"))
        else:
            step_clock = comm.clock
            info = self.driver.step(comm, model.params_flat, grad,
                                    rb=self._rb)
            step_time = comm.clock - step_clock
            res = info.result

            sparsify = res.sparsify_time
            comm_t = max(0.0, step_time - sparsify)
            if res.bucket_stats is not None:
                # Generic timeline: replay the buckets' communication
                # against their backward-release times.
                visible_comm = visible_comm_time(
                    res.bucket_stats, compute_time,
                    cfg.overlap_backward_fraction, comm_t)
            elif res.overlappable:
                # Legacy one-shot path (direct reduce, no session).
                credit = cfg.overlap_backward_fraction * compute_time
                visible_comm = max(0.0, comm_t - credit)
            else:
                visible_comm = comm_t
            iter_time = compute_time + sparsify + visible_comm

        rec = IterationRecord(
            t=t, loss=float(loss), lr=float(info.lr),
            compute_time=compute_time, sparsify_time=sparsify,
            comm_time=comm_t, iteration_time=iter_time,
            words_recv=int(comm.net.words_recv[comm.slot]) - recv0,
            selected=res.info.get("selected",
                                  res.info.get("selected_local")),
            xi=xi,
            overlap_saved=max(0.0, comm_t - visible_comm),
            nbuckets=res.nbuckets,
            analytic_visible_comm=analytic_visible,
            stream_fallback=stream_fallback,
        )
        if cfg.eval_every and self.eval_fn is not None and (
                t % cfg.eval_every == 0 or t == cfg.iterations):
            rec.eval_metrics = self.eval_fn(model)
        self.record.append(rec)

    # ------------------------------------------------------------------
    def _recover(self, exc: RankFailedError, t: int) -> None:
        """Elastic recovery from peer fail-stops (ULFM shrink-and-go).

        The optimizer drivers mutate params/residual only *after* a
        completed allreduce, so when the failure surfaces mid-iteration
        both still hold their iteration ``t-1`` values; the step counter
        is the one thing already advanced (``TopkSGD``/
        ``SparseOptimWrapper`` increment it on entry).  Recovery:
        checkpoint the surviving state, shrink the communicator over the
        remaining live ranks (a deterministic barrier that also flushes
        in-flight traffic and syncs clocks), re-key the allreduce's
        per-world state and the data shards to the new size, roll the
        step counter back, and let :meth:`run` redo iteration ``t``.
        """
        old = self.comm
        ckpt = self.checkpoint()
        new = old.shrink()
        self.comm = new
        self._rb = RankBatch(new, self.model)
        new.rank_batch = self._rb
        self.model.params_flat[:] = ckpt["params"]
        self.driver.residual[:] = ckpt["residual"]
        self.driver.t = t - 1
        self.allreduce.on_world_resize(new.size)
        reshard = getattr(self.batches, "reshard", None)
        if reshard is not None:
            reshard(new.rank, new.size)
        self.record.events.append({
            "event": "shrink", "t": t,
            "failed_ranks": list(exc.failed_ranks),
            "old_size": old.size, "new_size": new.size,
            "clock": new.clock,
        })

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the state a survivor needs to redo an iteration:
        parameters, error-feedback residual, step counter, clock."""
        return {
            "t": self.driver.t,
            "params": np.array(self.model.params_flat, copy=True),
            "residual": np.array(self.driver.residual, copy=True),
            "clock": self.comm.clock,
        }

    # ------------------------------------------------------------------
    def _measure_xi(self, grad: np.ndarray, t: int) -> float:
        cfg = self.cfg
        if cfg.mode == "adam":
            alpha = 1.0
        else:
            alpha = self.driver.lr(self.driver.t + 1)
        scaled = (alpha * grad).astype(np.float32)
        acc = self.driver.residual + scaled
        k = self.allreduce.resolve_k(self.model.nparams)
        return measure_xi(self.comm, acc, scaled, k)
