"""Empirical ξ of Assumption 1 (Section 4.1, evaluated in Figure 5).

Assumption 1 bounds the gap between the *true* global top-k of the summed
accumulators and what Top-k SGD actually applies::

    || Topk(1/P sum_i acc_i)  -  Topk(1/P sum_i Topk(acc_i)) ||
        <=  xi * || alpha * G_t(w_t) ||

with ``acc_i = alpha*G_i + eps_i``.  If ξ stays small (relative to P), the
convergence proof of Alistarh et al. applies.

Measurement requires cross-worker state, so it gathers the dense
accumulators to rank 0.  To keep this *diagnostic* from polluting the
simulated timing/volume statistics, every rank checkpoints and restores
**its own** slice of the network state around the measurement (all ranks
must call this collectively).

Why per-rank checkpoints: each rank's clock, link occupancy and traffic
counters are mutated only by that rank's own program actions (posts touch
sender entries, deliveries receiver entries).  A rank that restores its
slice *after its last receive of the measurement* is therefore guaranteed
clean — no later peer activity can reach its entries.  The previous
global-checkpoint scheme (rank 0 saves/restores everything, barriers
around it) was subtly wrong twice over: the trailing barrier ran *after*
the restore (its messages and latency stayed in the clocks and message
counters), and peers could still be draining barrier traffic when rank 0
restored, leaving their deliveries un-rolled-back.  Both leaks made a run
with ``xi_every=N`` drift from the identical run without instrumentation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import exact_topk


def xi_value(accs: list[np.ndarray], scaled_grads: list[np.ndarray],
             k: int) -> float:
    """Compute ξ centrally from every worker's accumulator and α-scaled
    gradient."""
    mean_acc = np.mean(accs, axis=0)
    true_topk = exact_topk(mean_acc, k).to_dense()
    mean_of_topk = np.mean([exact_topk(a, k).to_dense() for a in accs],
                           axis=0)
    applied = exact_topk(mean_of_topk, k).to_dense()
    gap = float(np.linalg.norm(true_topk - applied))
    denom = float(np.linalg.norm(np.mean(scaled_grads, axis=0)))
    if denom == 0.0:
        return 0.0 if gap == 0.0 else float("inf")
    return gap / denom


def measure_xi(comm: SimComm, acc: np.ndarray, scaled_grad: np.ndarray,
               k: int) -> float:
    """Collective ξ measurement; returns the same value on every rank.

    Timing/volume side effects of the gathers and the broadcast are
    rolled back via the rank's own network checkpoint
    (:meth:`repro.comm.Network.save_rank_state`), taken before the first
    message and restored after this rank's part of the broadcast has
    completed — the rank's last measurement receive, so nothing later can
    touch its slice (see the module docstring).  A run instrumented with
    ``xi_every=N`` is bit-identical — clocks, link occupancy, traffic
    counters, results — to the same run without instrumentation.  No
    barriers are needed: every message the measurement posts is consumed
    by the measurement's own collectives.
    """
    state = comm.net.save_rank_state(comm.slot)
    accs = coll.gather(comm, acc, root=0)
    grads = coll.gather(comm, scaled_grad, root=0)
    xi: Optional[float] = None
    if comm.rank == 0:
        xi = xi_value(accs, grads, k)
    xi = coll.bcast(comm, xi, root=0)
    comm.net.restore_rank_state(comm.slot, state)
    return float(xi)
