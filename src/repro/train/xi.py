"""Empirical ξ of Assumption 1 (Section 4.1, evaluated in Figure 5).

Assumption 1 bounds the gap between the *true* global top-k of the summed
accumulators and what Top-k SGD actually applies::

    || Topk(1/P sum_i acc_i)  -  Topk(1/P sum_i Topk(acc_i)) ||
        <=  xi * || alpha * G_t(w_t) ||

with ``acc_i = alpha*G_i + eps_i``.  If ξ stays small (relative to P), the
convergence proof of Alistarh et al. applies.

Measurement requires cross-worker state, so it gathers the dense
accumulators to rank 0.  To keep this *diagnostic* from polluting the
simulated timing/volume statistics, the network state is checkpointed and
restored around the measurement (all ranks must call this collectively).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import exact_topk


def xi_value(accs: list[np.ndarray], scaled_grads: list[np.ndarray],
             k: int) -> float:
    """Compute ξ centrally from every worker's accumulator and α-scaled
    gradient."""
    p = len(accs)
    mean_acc = np.mean(accs, axis=0)
    true_topk = exact_topk(mean_acc, k).to_dense()
    mean_of_topk = np.mean([exact_topk(a, k).to_dense() for a in accs],
                           axis=0)
    applied = exact_topk(mean_of_topk, k).to_dense()
    gap = float(np.linalg.norm(true_topk - applied))
    denom = float(np.linalg.norm(np.mean(scaled_grads, axis=0)))
    if denom == 0.0:
        return 0.0 if gap == 0.0 else float("inf")
    return gap / denom


def measure_xi(comm: SimComm, acc: np.ndarray, scaled_grad: np.ndarray,
               k: int) -> float:
    """Collective ξ measurement; returns the same value on every rank.

    Timing/volume side effects of the gathers are rolled back via the
    network checkpoint, so Figure 5 instrumentation does not change the
    Figure 8-13 numbers.
    """
    coll.barrier(comm)
    state: Optional[dict] = None
    if comm.rank == 0:
        state = comm.net.save_state()
    accs = coll.gather(comm, acc, root=0)
    grads = coll.gather(comm, scaled_grad, root=0)
    xi: Optional[float] = None
    if comm.rank == 0:
        xi = xi_value(accs, grads, k)
    xi = coll.bcast(comm, xi, root=0)
    coll.barrier(comm)
    if comm.rank == 0:
        comm.net.restore_state(state)
    coll.barrier(comm)
    return float(xi)
