"""Run records: everything the paper's figures need, JSON-serializable."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class IterationRecord:
    """Per-iteration diagnostics of the data-parallel trainer."""

    t: int
    loss: float
    lr: float
    compute_time: float
    sparsify_time: float
    comm_time: float               # raw communication time (no overlap)
    iteration_time: float          # with the overlap credit applied
    words_recv: int = 0
    selected: Optional[int] = None
    xi: Optional[float] = None
    eval_metrics: Optional[Dict[str, float]] = None
    #: communication hidden behind backward compute by the generic
    #: bucketed-overlap timeline (``comm_time - visible communication``)
    overlap_saved: float = 0.0
    #: session buckets the allreduce ran in (1 = one-shot equivalent)
    nbuckets: int = 1
    #: streaming runs only: the analytic ``visible_comm_time`` replay
    #: evaluated on the same bucket stats, kept as a cross-check against
    #: the measured discrete-event timeline (equal under zero contention;
    #: under contention the measurement may fall on either side of the
    #: replay); ``None`` in analytic mode
    analytic_visible_comm: Optional[float] = None
    #: True when ``overlap_mode="stream"`` was requested but the session
    #: fell back to the post-backward delegating adapter (non-bucketable
    #: scheme or one-bucket plan) — the timings of this iteration are
    #: analytic, not discrete-event; never True in analytic mode
    stream_fallback: bool = False


@dataclass
class RunRecord:
    """One full training run of one scheme on P workers."""

    scheme: str
    p: int
    records: List[IterationRecord] = field(default_factory=list)
    #: world-change events (elastic recovery): one dict per shrink with
    #: ``{"event", "t", "failed_ranks", "old_size", "new_size", "clock"}``
    events: List[dict] = field(default_factory=list)

    def append(self, rec: IterationRecord) -> None:
        self.records.append(rec)

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return float(sum(r.iteration_time for r in self.records))

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records])

    @property
    def times(self) -> np.ndarray:
        """Cumulative simulated training time after each iteration."""
        return np.cumsum([r.iteration_time for r in self.records])

    def mean_breakdown(self, skip: int = 0) -> Dict[str, float]:
        """Average per-iteration phase times (Figure 8/10/12 bars);
        ``skip`` drops warmup iterations."""
        recs = self.records[skip:] or self.records
        return {
            "sparsification": float(np.mean([r.sparsify_time for r in recs])),
            "communication": float(np.mean(
                [r.iteration_time - r.compute_time - r.sparsify_time
                 for r in recs])),
            "computation+io": float(np.mean([r.compute_time for r in recs])),
            "total": float(np.mean([r.iteration_time for r in recs])),
        }

    def final_eval(self) -> Optional[Dict[str, float]]:
        for r in reversed(self.records):
            if r.eval_metrics is not None:
                return r.eval_metrics
        return None

    def eval_curve(self, key: str) -> List[tuple]:
        """(cumulative time, metric) pairs (Figure 9/11/13 curves)."""
        times = self.times
        return [(float(times[i]), r.eval_metrics[key])
                for i, r in enumerate(self.records)
                if r.eval_metrics is not None and key in r.eval_metrics]

    def to_dict(self) -> dict:
        return {"scheme": self.scheme, "p": self.p,
                "records": [asdict(r) for r in self.records]}

    def to_csv(self, path) -> None:
        """Dump the per-iteration series for external plotting (the
        figures' curves: loss/metrics vs cumulative simulated time)."""
        import csv

        times = self.times
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["t", "cum_time", "loss", "lr", "compute_time",
                        "sparsify_time", "comm_time", "iteration_time",
                        "overlap_saved", "nbuckets", "selected", "xi",
                        "analytic_visible_comm", "stream_fallback"])
            for i, r in enumerate(self.records):
                w.writerow([r.t, times[i], r.loss, r.lr, r.compute_time,
                            r.sparsify_time, r.comm_time,
                            r.iteration_time, r.overlap_saved, r.nbuckets,
                            r.selected, r.xi, r.analytic_visible_comm,
                            r.stream_fallback])
