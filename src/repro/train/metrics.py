"""Evaluation metrics: top-1 accuracy (VGG), word error rate (LSTM),
masked-LM loss (BERT)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    return float(np.mean(np.argmax(logits, axis=1) == labels))


def edit_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Levenshtein distance via the classic DP, vectorized per row."""
    a, b = list(a), list(b)
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = np.arange(len(b) + 1)
    bv = np.asarray(b)
    for i, ca in enumerate(a, start=1):
        cur = np.empty(len(b) + 1, dtype=np.int64)
        cur[0] = i
        sub = prev[:-1] + (bv != ca)
        dele = prev[1:] + 1
        # insertion needs a sequential pass: cur[j] depends on cur[j-1]
        best = np.minimum(sub, dele)
        running = cur[0]
        for j in range(1, len(b) + 1):
            running = min(best[j - 1], running + 1)
            cur[j] = running
        prev = cur
    return int(prev[-1])


def word_error_rate(hyps: Sequence[Sequence[int]],
                    refs: Sequence[Sequence[int]]) -> float:
    """Corpus-level WER: total edit distance / total reference length.

    Stands in for the paper's AN4 WER; our speech proxy decodes framewise
    label sequences (collapsed repeats) — same metric, synthetic task.
    """
    if len(hyps) != len(refs):
        raise ValueError("hypothesis/reference count mismatch")
    dist = sum(edit_distance(h, r) for h, r in zip(hyps, refs))
    total = sum(len(r) for r in refs)
    return dist / max(1, total)


def collapse_repeats(seq: Sequence[int]) -> list:
    """CTC-style collapse of consecutive duplicates (no blank symbol)."""
    out = []
    prev = None
    for s in seq:
        if s != prev:
            out.append(int(s))
        prev = s
    return out
