"""Data-parallel training: trainer, metrics, records, ξ measurement."""

from .metrics import (
    collapse_repeats,
    edit_distance,
    top1_accuracy,
    word_error_rate,
)
from .records import IterationRecord, RunRecord
from .trainer import (
    DENSE_SCHEMES,
    BatchSource,
    TrainableModel,
    Trainer,
    TrainerConfig,
    build_allreduce,
)
from .xi import measure_xi, xi_value

__all__ = [
    "Trainer",
    "TrainerConfig",
    "TrainableModel",
    "BatchSource",
    "build_allreduce",
    "DENSE_SCHEMES",
    "IterationRecord",
    "RunRecord",
    "top1_accuracy",
    "word_error_rate",
    "edit_distance",
    "collapse_repeats",
    "measure_xi",
    "xi_value",
]
