"""Lockstep rank-batched compute: per-world numpy instead of per-rank.

SPMD data-parallel ranks execute the same numpy kernels at the same
program points on different data.  Under a rendezvous-capable engine
(:class:`repro.comm.engine.CoopEngine` and subclasses) this module turns
the three per-rank compute hot spots of a training iteration — model
fwd/bwd, the optimizer's residual accumulation and Ok-Topk's local
selection — into *one* stacked numpy dispatch over a ``(P, ...)``
rank-major axis, using the same engine-level rendezvous that carries the
fused collectives of :mod:`repro.comm.fused` (the last rank to arrive
executes for the whole world, then readies the others in rank order).

Bit-identity contract: every batched kernel is elementwise,
row-independent or a gufunc looping the identical 2-D kernel per rank
slice, and all simulated-time charges run through each rank's own
:class:`~repro.comm.SimComm` (straggler scaling and phase attribution
included), so results, traffic counters, clocks and phase times are
bit-identical to per-rank execution under any runner.

Fallback rules (``engaged()``): batching disengages — deterministically
and identically on every rank — whenever ranks can diverge: fault plans,
a revoked world, group communicators (``comm.size != net.nranks``),
message tracing, the threaded/inline runners (no rendezvous engine), or
a model without a stacked execution path.  A disengaged call returns
``None`` and the caller runs the ordinary per-rank code; mid-run
divergence (e.g. elastic shrink) therefore lands on exactly the code a
never-batched run executes.  ``REPRO_RANK_BATCH=0`` disables batching
globally.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence

import numpy as np

from ..nn.stacked import StackedModel, supports_stacking

#: set to ``0``/``false``/``off`` to force per-rank execution everywhere
RANK_BATCH_ENV = "REPRO_RANK_BATCH"


def rank_batching_enabled() -> bool:
    return os.environ.get(RANK_BATCH_ENV, "1").strip().lower() not in (
        "0", "false", "off")


def stack_rows(rows: Sequence[np.ndarray]) -> np.ndarray:
    """A ``(P, n)`` matrix over per-rank vectors.

    Zero-copy when the vectors already are the consecutive rows of one
    shared base matrix (the steady state: gradients live in the stacked
    model's gradient matrix, residuals in the accumulate buffers);
    ``np.stack`` copy otherwise.
    """
    base = rows[0].base
    if (base is not None and base.ndim == 2
            and base.shape[0] == len(rows)
            and all(r.base is base
                    and r.strides == base.strides[1:]
                    and r.ctypes.data == base.ctypes.data + i * base.strides[0]
                    for i, r in enumerate(rows))):
        return base
    return np.stack(rows)


class _WorldState:
    """Per-network lockstep state shared by the executors: the stacked
    model and the double-buffered accumulate matrices (two buffers
    alternate so the new accumulator never overwrites the residual rows
    that still point into the previous one)."""

    __slots__ = ("stacked", "bufs", "flip")

    def __init__(self):
        self.stacked: Optional[StackedModel] = None
        self.bufs: List[Optional[np.ndarray]] = [None, None]
        self.flip = 0


def _world_state(net) -> _WorldState:
    st = getattr(net, "_rank_batch_state", None)
    if st is None:
        st = net._rank_batch_state = _WorldState()
    return st


# ---------------------------------------------------------------------------
# Executors (module-level, identical across ranks — rendezvous contract)
# ---------------------------------------------------------------------------
def _exec_fwd_bwd(net, sig, payloads):
    st = _world_state(net)
    models = [p[0] for p in payloads]
    xs = [p[1] for p in payloads]
    ys = [p[2] for p in payloads]
    stacked = st.stacked
    if stacked is None or stacked.models != models:
        try:
            stacked = st.stacked = StackedModel(models)
        except ValueError:
            # Not actually SPMD (diverged weights/shapes): run each
            # rank's own math — identical kernels, identical results.
            return [m.loss_and_grad(x, y) for m, x, y in zip(models, xs, ys)]
    if (any(x.shape != xs[0].shape for x in xs)
            or any(y.shape != ys[0].shape for y in ys)):
        # Uneven shards cannot stack; per-rank fallback (same kernels).
        return [m.loss_and_grad(x, y) for m, x, y in zip(models, xs, ys)]
    losses, gmat = stacked.loss_and_grad(np.stack(xs), np.stack(ys))
    return [(float(losses[r]), gmat[r]) for r in range(len(payloads))]


def _exec_accumulate(net, sig, payloads):
    st = _world_state(net)
    scale = payloads[0][1]
    if any(p[1] != scale for p in payloads):
        # Diverged schedules: per-rank arithmetic (same expression).
        return [res + s * g.astype(np.float32, copy=False)
                for res, s, g in payloads]
    res = stack_rows([p[0] for p in payloads])
    grads = stack_rows([p[2].astype(np.float32, copy=False)
                        for p in payloads])
    buf = st.bufs[st.flip]
    if buf is None or buf.shape != res.shape or buf is res or buf is grads:
        buf = np.empty_like(res)
    st.bufs[st.flip] = buf
    st.flip ^= 1
    # Same expression as the per-rank path (``residual + scale * grad``):
    # scalar-times-float32 stays float32, and IEEE addition commutes
    # bit-for-bit.
    if scale == 1.0:
        np.add(res, grads, out=buf)
    else:
        np.multiply(grads, scale, out=buf)
        buf += res
    return [buf[r] for r in range(res.shape[0])]


# ---------------------------------------------------------------------------
# Per-rank handle
# ---------------------------------------------------------------------------
class RankBatch:
    """One rank's handle on the world's lockstep batched compute.

    Created by the trainer and published as ``comm.rank_batch`` so that
    deeper layers (the Ok-Topk local selection) can join the batch.  All
    entry points return ``None`` when lockstep execution is not engaged;
    callers then run their ordinary per-rank code.
    """

    def __init__(self, comm, model: Any = None):
        self.comm = comm
        self.model = model
        self._supported = rank_batching_enabled() and (
            model is None or supports_stacking(model))

    def engaged(self) -> bool:
        """Deterministic, rank-uniform gate (see module docstring)."""
        if not self._supported:
            return False
        comm = self.comm
        net = comm.net
        sched = net._sched
        return (sched is not None and hasattr(sched, "collective")
                and comm.size > 1
                and comm.size == net.nranks
                and net.faults is None and not net.revoked
                and not net.trace_enabled)

    # -- trainer entry points ------------------------------------------
    def loss_and_grad(self, t: int, x: np.ndarray, y: np.ndarray):
        """World-stacked fwd/bwd.  Returns ``(loss, grad_row_view)`` or
        ``None`` when not engaged.  The gradient is a row view of the
        stacked gradient matrix, valid until the next iteration's
        fwd/bwd (the trainer consumes it within the iteration)."""
        if self.model is None or not self.engaged():
            return None
        return self.comm.fused_collective(
            ("rb_fwdbwd", t), (self.model, x, y), _exec_fwd_bwd)

    def accumulate(self, t: int, residual: np.ndarray, scale: float,
                   grad: np.ndarray):
        """World-stacked ``residual + scale * grad``.  Returns this
        rank's accumulator row (a view of a shared double-buffered
        matrix) or ``None`` when not engaged."""
        if not self.engaged():
            return None
        return self.comm.fused_collective(
            ("rb_accumulate", t), (residual, scale, grad), _exec_accumulate)
