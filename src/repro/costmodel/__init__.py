"""Analytic Table 1 cost model and paper-scale projections."""

from .calibrate import (
    PAPER_COMPUTE_SECONDS,
    CalibrationResult,
    measure_steady_state_volume,
    validate_against_measurement,
)
from .model import (
    COST_FUNCTIONS,
    CommCost,
    comm_cost,
    dense_cost,
    expected_union,
    gaussiank_cost,
    gtopk_cost,
    iteration_seconds,
    oktopk_cost,
    sparsify_cost_seconds,
    topka_cost,
    topkdsa_cost,
)

__all__ = [
    "CommCost",
    "comm_cost",
    "COST_FUNCTIONS",
    "dense_cost",
    "topka_cost",
    "topkdsa_cost",
    "gtopk_cost",
    "gaussiank_cost",
    "oktopk_cost",
    "expected_union",
    "sparsify_cost_seconds",
    "iteration_seconds",
    "CalibrationResult",
    "measure_steady_state_volume",
    "validate_against_measurement",
    "PAPER_COMPUTE_SECONDS",
]
