"""Analytic alpha-beta cost model — Table 1 of the paper, programmable.

Every scheme's per-iteration communication cost is expressed in the
latency-bandwidth model (message of L words costs ``alpha + beta L``).  The
model is used three ways:

1. regenerate Table 1 symbolically (``benchmarks/bench_table1_volume.py``),
2. cross-check the *measured* volumes of the executed algorithms,
3. project the executed small-scale results to paper scale (n = 14.7M /
   27.6M / 133.5M parameters, P up to 256) for the Figure 8/10/12 weak
   scaling bars, where running 256 real ranks in one process is infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict

from ..comm import NetworkModel


@dataclass(frozen=True)
class CommCost:
    """Latency and bandwidth components of one allreduce invocation."""

    latency_terms: float     # number of alpha terms on the critical path
    bandwidth_words: float   # words transferred per rank (critical path)

    def seconds(self, model: NetworkModel) -> float:
        return (self.latency_terms * model.alpha
                + self.bandwidth_words * model.beta)


def _logp(p: int) -> float:
    return max(1.0, ceil(log2(max(2, p))))


def dense_cost(n: int, p: int) -> CommCost:
    """Rabenseifner: 2(log P) alpha + 2n(P-1)/P beta."""
    return CommCost(2 * _logp(p), 2.0 * n * (p - 1) / p)


def topka_cost(n: int, p: int, k: int) -> CommCost:
    """Allgather of P sparse vectors: (log P) alpha + 2k(P-1) beta."""
    return CommCost(_logp(p), 2.0 * k * (p - 1))


def expected_union(n: int, k: int, m: int) -> float:
    """Expected support size of the union of ``m`` random k-subsets of
    [0, n): n (1 - (1 - k/n)^m).  Models TopkDSA/TopkA fill-in for
    uncorrelated supports (an upper bound for correlated real gradients)."""
    if n <= 0:
        return 0.0
    return n * (1.0 - (1.0 - min(1.0, k / n)) ** m)


def topkdsa_cost(n: int, p: int, k: int, *,
                 overlap: float = 0.0) -> CommCost:
    """SparCML recursive halving with fill-in.

    At level j (1-based) each rank exchanges a half-range whose support is
    the union of 2^(j-1) workers' selections restricted to half the current
    range; ``overlap`` in [0, 1] interpolates between fully random supports
    (0) and fully overlapping supports (1, the paper's 4k best case).
    Plus the final allgather of the reduced ranges (~union/P each -> about
    the union in total).
    """
    levels = int(_logp(p))
    words = 0.0
    for j in range(1, levels + 1):
        range_size = n / (2 ** j)
        contributors = 2 ** (j - 1)
        k_in_range = k / (2 ** j)
        union = expected_union(range_size, k_in_range, contributors)
        best = k_in_range
        support = overlap * best + (1 - overlap) * union
        support = min(support, range_size)  # dense switch bound
        words += 2.0 * support
    final_union = min(expected_union(n, k, p) * (1 - overlap) + overlap * k,
                      n)
    words += 2.0 * final_union * (p - 1) / p
    return CommCost(p + 2 * _logp(p), words)


def gtopk_cost(n: int, p: int, k: int) -> CommCost:
    """Reduction tree + broadcast tree with per-level re-selection:
    4k(log P) beta, 2(log P) alpha."""
    return CommCost(2 * _logp(p), 4.0 * k * _logp(p))


def gaussiank_cost(n: int, p: int, k: int) -> CommCost:
    """Same exchange as TopkA (with its own selection path)."""
    return topka_cost(n, p, k)


def oktopk_cost(n: int, p: int, k: int, *,
                balanced: bool = True) -> CommCost:
    """Ok-Topk: split-and-reduce (<= 2k(P-1)/P) + balance-and-allgatherv
    (<= 4k(P-1)/P); (2P + 2 log P) alpha.

    Without the balanced partition the split phase can degrade to
    2k(P-1)/P * P/1 in the worst case; we model the paper's observed naive
    penalty as a P-dependent imbalance factor on the reduce phase.
    """
    reduce_words = 2.0 * k * (p - 1) / p
    if not balanced:
        # hot region receives up to 2k(P-1) in the extreme; in expectation
        # layer-clustered top-k inflate the critical path by ~log P
        reduce_words *= _logp(p) / 2.0
    gather_words = 4.0 * k * (p - 1) / p
    return CommCost(2 * p + 2 * _logp(p), reduce_words + gather_words)


COST_FUNCTIONS = {
    "dense": lambda n, p, k: dense_cost(n, p),
    "dense_ovlp": lambda n, p, k: dense_cost(n, p),
    "topka": topka_cost,
    "topkdsa": topkdsa_cost,
    "gtopk": gtopk_cost,
    "gaussiank": gaussiank_cost,
    "oktopk": oktopk_cost,
}


def comm_cost(scheme: str, n: int, p: int, k: int) -> CommCost:
    try:
        fn = COST_FUNCTIONS[scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}") from None
    return fn(n, p, k)


def sparsify_cost_seconds(scheme: str, n: int, k: int, p: int,
                          model: NetworkModel, *,
                          tau_prime: int = 32) -> float:
    """Per-iteration selection overhead in seconds (amortized)."""
    if scheme in ("dense", "dense_ovlp"):
        return 0.0
    if scheme in ("topka", "topkdsa"):
        return model.sort_time * n * log2(max(2, k))  # GPU top-k
    if scheme == "gtopk":
        return model.sort_time * n * log2(max(2, k))
    if scheme == "gaussiank":
        return model.scan_time * 3 * n  # mean/std + scan + one adjust
    if scheme == "oktopk":
        amortized_sort = model.sort_time * n * log2(max(2, n)) / tau_prime
        return amortized_sort + model.scan_time * n
    raise ValueError(f"unknown scheme {scheme!r}")


def iteration_seconds(scheme: str, n: int, p: int, k: int,
                      model: NetworkModel, *,
                      compute_seconds: float = 0.0,
                      tau_prime: int = 32,
                      overlap_fraction: float = 2.0 / 3.0) -> Dict[str, float]:
    """Full per-iteration breakdown at paper scale (Figures 8/10/12)."""
    comm = comm_cost(scheme, n, p, k).seconds(model)
    spars = sparsify_cost_seconds(scheme, n, k, p, model,
                                  tau_prime=tau_prime)
    if scheme == "dense_ovlp":
        visible_comm = max(0.0, comm - overlap_fraction * compute_seconds)
    else:
        visible_comm = comm
    return {
        "sparsification": spars,
        "communication": visible_comm,
        "computation+io": compute_seconds,
        "total": spars + visible_comm + compute_seconds,
    }
