"""Calibration: tie the analytic model to measured small-scale runs.

The paper's absolute numbers come from P100 GPUs on Piz Daint; ours come
from the simulator.  What must *transfer* is the shape: who wins at which
scale.  ``validate_against_measurement`` runs an executed allreduce at
small scale and checks the analytic bandwidth prediction against the
measured word counters, giving the paper-scale projections an empirical
anchor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..allreduce import make_allreduce
from ..comm import run_spmd
from .model import comm_cost


@dataclass(frozen=True)
class CalibrationResult:
    scheme: str
    n: int
    p: int
    k: int
    predicted_words: float
    measured_words: float

    @property
    def ratio(self) -> float:
        if self.predicted_words == 0:
            return float("inf")
        return self.measured_words / self.predicted_words


def measure_steady_state_volume(scheme: str, n: int, p: int, k: int,
                                statistic: str = "mean",
                                **kwargs) -> float:
    """Per-rank received words of a steady-state iteration (``mean`` over
    ranks, or ``max`` for tree-structured schemes whose critical path is a
    single rank)."""
    def prog(comm):
        algo = make_allreduce(scheme, k=k, **kwargs) \
            if scheme not in ("dense", "dense_ovlp") \
            else make_allreduce(scheme, **kwargs)
        rng = np.random.default_rng(9 + comm.rank)
        for t in (1, 2):
            acc = rng.normal(size=n).astype(np.float32)
            if t == 2:
                before = int(comm.net.words_recv[comm.slot])
            algo.reduce(comm, acc, t)
        return int(comm.net.words_recv[comm.slot]) - before

    res = run_spmd(p, prog)
    agg = np.max if statistic == "max" else np.mean
    return float(agg(res.results))


def validate_against_measurement(scheme: str, n: int = 4096, p: int = 8,
                                 k: int = 64) -> CalibrationResult:
    predicted = comm_cost(scheme, n, p, k).bandwidth_words
    if scheme == "gtopk":
        # Table 1's 4k log P counts receive+send along the tree critical
        # path (root); the receive-only critical path is half of it.
        predicted /= 2.0
        measured = measure_steady_state_volume(scheme, n, p, k,
                                               statistic="max")
    else:
        measured = measure_steady_state_volume(scheme, n, p, k)
    return CalibrationResult(scheme, n, p, k, predicted, measured)


#: effective per-sample training compute used for paper-scale projections
#: (seconds on one P100-class accelerator, forward+backward+IO), read off
#: the paper's "computation + io" bar segments (Figures 8, 10, 12).
PAPER_COMPUTE_SECONDS: Dict[str, float] = {
    "vgg16": 0.013,        # batch 16/GPU -> ~0.21 s/iter (Figure 8)
    "lstm": 0.55,          # batch 2/GPU  -> ~1.1 s/iter  (Figure 10)
    "bert": 0.045,         # batch 8/GPU  -> ~0.36 s/iter (Figure 12)
}
