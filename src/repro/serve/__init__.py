"""Inference serving over the simulated network (the "millions of users"
axis of ROADMAP open item 3).

The other production face of allreduce, next to synchronous training: a
tensor-parallel decode model whose per-layer partial sums run as
allreduces over the simulated network — one reduction per layer per
generated token — under live open-loop traffic.  Prefill messages are
large (bandwidth-bound), decode messages are small (latency-bound), which
is exactly the regime flip the size-adaptive allreduce selector
(``algorithm="adaptive"``) exploits.

Quick tour::

    from repro.serve import ServeConfig, simulate_serving

    report = simulate_serving(ServeConfig(p=4, rate=2000.0, n_requests=32))
    report.summary()          # p50/p99 TTFT / inter-token / latency, goodput
    report.algorithms         # which allreduce schedule served which sizes

Serving survives the whole PR-6 fault model under live traffic: pass
``simulate_serving(..., faults=FaultPlan(...))`` and slow links and
stragglers degrade the clock honestly while rank crashes trigger elastic
shrink-and-resume (checkpointed batcher state, consensus rollback, model
rebuild at P-1, deterministic re-enqueue with capped backoff).  Request
deadlines, timeout reaping and deadline-aware shedding ride the same
fault-aware loop; the plan-less path stays byte-identical to a loop that
has never heard of faults.

Runs are a pure function of ``(seed, config, plan)`` and bit-identical
across the ``coop``, ``gen`` and ``threads`` runners — see
:mod:`repro.serve.loop` for the decision-clock synchronization that keeps
batching deterministic at non-power-of-two P, and for the recovery
walkthrough.
"""

from .batcher import DynamicBatcher
from .loop import ServeConfig, simulate_serving, sweep_load
from .metrics import RequestRecord, ServeReport, percentile
from .model import TPDecodeModel, TPModelConfig
from .workload import Request, Workload

__all__ = [
    "DynamicBatcher",
    "Request",
    "RequestRecord",
    "ServeConfig",
    "ServeReport",
    "TPDecodeModel",
    "TPModelConfig",
    "Workload",
    "percentile",
    "simulate_serving",
    "sweep_load",
]
