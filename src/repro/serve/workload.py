"""Open-loop request workloads for the serving simulator.

A :class:`Workload` is an immutable, arrival-ordered sequence of
:class:`Request` objects.  Arrivals are *open loop*: request ``i`` shows
up at its pre-drawn time regardless of how the server is doing — the
standard methodology for serving benchmarks (offered load is independent
of achieved goodput, so saturation shows up as growing latency, not as a
throttled generator).

Two sources:

* :meth:`Workload.poisson` — seeded Poisson arrivals with fixed or
  uniformly drawn prompt/output lengths; a pure function of the seed.
* :meth:`Workload.from_json` / :meth:`to_json` — trace-driven arrivals
  (replay a recorded trace, or round-trip a generated one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigError

#: a fixed token count, or an inclusive ``(lo, hi)`` range drawn per request
TokenSpec = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class Request:
    """One inference request of the open-loop stream."""

    rid: int
    #: arrival time in simulated seconds (non-decreasing across the stream)
    arrival: float
    #: prompt length — the prefill activation rows
    prompt_tokens: int
    #: tokens to generate — one decode step each (the first comes out of
    #: the prefill pass)
    output_tokens: int
    #: completion SLO relative to arrival (simulated seconds); ``None``
    #: defers to the serving config's global deadline (which may also be
    #: ``None`` — no deadline).  Consulted by the fault-aware serving
    #: loop for timeout detection and deadline-aware admission control.
    deadline: Optional[float] = None

    def deadline_at(self, default: Optional[float] = None) -> Optional[float]:
        """Absolute completion deadline, or ``None`` when neither the
        request nor ``default`` carries an SLO."""
        rel = self.deadline if self.deadline is not None else default
        return None if rel is None else self.arrival + rel


def _draw_tokens(rng: np.random.Generator, spec: TokenSpec,
                 n: int, what: str) -> np.ndarray:
    if isinstance(spec, (tuple, list)):
        lo, hi = int(spec[0]), int(spec[1])
        if lo < 1 or hi < lo:
            raise ConfigError(f"{what} range must satisfy 1 <= lo <= hi, "
                              f"got {spec!r}")
        return rng.integers(lo, hi + 1, size=n)
    k = int(spec)
    if k < 1:
        raise ConfigError(f"{what} must be >= 1, got {spec!r}")
    return np.full(n, k, dtype=np.int64)


@dataclass(frozen=True)
class Workload:
    """An arrival-ordered open-loop request stream."""

    requests: Tuple[Request, ...]

    def __post_init__(self):
        last = 0.0
        for rq in self.requests:
            if rq.arrival < last:
                raise ConfigError("workload arrivals must be non-decreasing")
            if rq.prompt_tokens < 1 or rq.output_tokens < 1:
                raise ConfigError(
                    f"request {rq.rid} needs >= 1 prompt and output token")
            if rq.deadline is not None and rq.deadline <= 0:
                raise ConfigError(
                    f"request {rq.rid} deadline must be > 0, "
                    f"got {rq.deadline}")
            last = rq.arrival

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(rq.output_tokens for rq in self.requests)

    @property
    def max_prompt_tokens(self) -> int:
        return max((rq.prompt_tokens for rq in self.requests), default=0)

    @property
    def span(self) -> float:
        """Arrival span in simulated seconds (last arrival; the first is
        at or after time zero)."""
        return self.requests[-1].arrival if self.requests else 0.0

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def poisson(cls, n_requests: int, rate: float, *,
                prompt_tokens: TokenSpec = 64,
                output_tokens: TokenSpec = 4,
                deadline: Optional[float] = None,
                seed: int = 0) -> "Workload":
        """Seeded Poisson arrivals at ``rate`` requests per simulated
        second; deterministic per ``(n_requests, rate, specs, seed)``.
        ``deadline`` (optional) stamps every request with the same
        relative completion SLO."""
        if n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {n_requests}")
        if rate <= 0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate, size=n_requests)
        arrivals = np.cumsum(gaps)
        prompts = _draw_tokens(rng, prompt_tokens, n_requests, "prompt_tokens")
        outputs = _draw_tokens(rng, output_tokens, n_requests, "output_tokens")
        return cls(tuple(
            Request(i, float(arrivals[i]), int(prompts[i]), int(outputs[i]),
                    deadline)
            for i in range(n_requests)))

    @classmethod
    def from_arrivals(cls, arrivals: Sequence[float],
                      prompt_tokens: Sequence[int],
                      output_tokens: Sequence[int],
                      deadlines: Optional[Sequence[Optional[float]]] = None,
                      ) -> "Workload":
        """Trace-driven workload from explicit per-request columns."""
        if not (len(arrivals) == len(prompt_tokens) == len(output_tokens)):
            raise ConfigError("trace columns must have equal length")
        if deadlines is not None and len(deadlines) != len(arrivals):
            raise ConfigError("trace columns must have equal length")
        return cls(tuple(
            Request(i, float(arrivals[i]), int(prompt_tokens[i]),
                    int(output_tokens[i]),
                    (None if deadlines is None or deadlines[i] is None
                     else float(deadlines[i])))
            for i in range(len(arrivals))))

    # ------------------------------------------------------------------
    # Trace round-trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        rows = []
        for rq in self.requests:
            row = {"arrival": rq.arrival, "prompt_tokens": rq.prompt_tokens,
                   "output_tokens": rq.output_tokens}
            if rq.deadline is not None:
                row["deadline"] = rq.deadline
            rows.append(row)
        return json.dumps(rows)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        rows = json.loads(text)
        return cls.from_arrivals(
            [row["arrival"] for row in rows],
            [row["prompt_tokens"] for row in rows],
            [row["output_tokens"] for row in rows],
            [row.get("deadline") for row in rows])
