"""Tensor-parallel decode model over the simulated network.

Megatron-style tensor parallelism: each of the P ranks holds a 1/P shard
of every layer's weights, computes a *partial* activation for its shard,
and the partial sums are combined with **one allreduce of the
[tokens, hidden] activations per layer** — the per-token reduction that
dominates TP inference.  Prefill pushes all prompt tokens of the admitted
batch through at once (large message, bandwidth-bound); each decode step
pushes one token per active request (small message, latency-bound) —
exactly the size regimes the adaptive allreduce selector
(:func:`repro.comm.fused.select_allreduce_algorithm`) targets.

The arithmetic is a surrogate (a per-(layer, rank) gain plus a bounded
nonlinearity, carried across steps), but it is *real data moving through
the real collectives*: the reduced values chain into the next layer and
into a float64 checksum, so bit-identity across runners and fused/unfused
paths is a meaningful end-to-end assertion, not a clock comparison.
Compute is charged analytically as this rank's 1/P shard of the dense
transformer FLOPs (attention projections + MLP; attention scores are
sequence-length dependent and deliberately excluded — the reduction
traffic, not the FLOP model, is the object of study here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..comm import collectives as coll
from ..comm.communicator import SimComm
from ..comm.fused import (LATENCY_OPTIMAL, allreduce_analytic_seconds,
                          bandwidth_optimal)
from ..errors import ConfigError


@dataclass(frozen=True)
class TPModelConfig:
    """Shape of the simulated decoder."""

    hidden: int = 256
    layers: int = 4
    #: MLP expansion factor (2 matmuls of ``hidden x hidden*ffn_mult``)
    ffn_mult: int = 4

    def __post_init__(self):
        if self.hidden < 1 or self.layers < 1 or self.ffn_mult < 1:
            raise ConfigError(f"invalid TPModelConfig {self}")

    @property
    def flops_per_token_layer(self) -> float:
        """Dense FLOPs of one token through one layer (all ranks
        combined): 4 projection matmuls (q/k/v/o, ``2 h^2`` each) plus the
        two MLP matmuls (``2 h * ffn`` each)."""
        h = float(self.hidden)
        return 8.0 * h * h + 4.0 * h * h * self.ffn_mult

    @property
    def words_per_token_layer(self) -> int:
        """Allreduce payload words one activation row contributes per
        layer (float32 activations: one word per hidden element)."""
        return self.hidden


class TPDecodeModel:
    """Rank-local shard of the tensor-parallel decoder."""

    def __init__(self, cfg: TPModelConfig, comm: SimComm, *,
                 algorithm: str = "adaptive", seed: int = 0):
        self.cfg = cfg
        self.comm = comm
        self.algorithm = algorithm
        rng = np.random.default_rng(seed)
        # Every rank draws the identical tables (same seed) and uses its
        # own column — the usual replicated-init trick, no weight bcast.
        self._gain = (rng.standard_normal((cfg.layers, comm.size))
                      .astype(np.float32) / np.float32(comm.size))
        self._base = rng.standard_normal(cfg.hidden).astype(np.float32)
        self._carry = np.float32(1.0)
        #: float64 sum over every activation this model emitted — the
        #: bit-identity witness across runners and fused/unfused paths
        self.checksum = 0.0

    def step(self, tokens: int) -> None:
        """Run ``tokens`` activation rows through every layer.

        One call serves both phases: prefill passes the admitted batch's
        summed prompt length, a decode step passes the active batch size
        (one new token per request).  Per layer: charge this rank's 1/P
        FLOP shard, then allreduce the ``tokens * hidden`` partial sums
        with the configured algorithm choice.
        """
        if tokens < 1:
            raise ConfigError(f"step needs >= 1 token, got {tokens}")
        comm, cfg = self.comm, self.cfg
        acts = np.tile(self._base, tokens) * self._carry
        flops_shard = cfg.flops_per_token_layer * tokens / comm.size
        for layer in range(cfg.layers):
            comm.compute_flops(flops_shard)
            partial = acts * self._gain[layer, comm.rank]
            reduced = coll.allreduce(comm, partial,
                                     algorithm=self.algorithm)
            acts = np.tanh(reduced)
        # Chain steps: the next step's input scale depends on this step's
        # reduced output, so any cross-runner divergence compounds.
        self._carry = np.float32(1.0) + np.float32(0.5) * np.tanh(acts.mean())
        self.checksum += float(np.asarray(acts, dtype=np.float64).sum())

    # ------------------------------------------------------------------
    # Elastic recovery support (see repro.serve.loop)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[float, float]:
        """The cross-step state ``(carry, checksum)``.  World-size
        independent, so a snapshot taken at P restores into a model
        rebuilt at the shrunken P-1 (gain tables are re-derived there by
        consensus from the replicated seed)."""
        return (float(self._carry), self.checksum)

    def restore(self, snap: Tuple[float, float]) -> None:
        """Restore :meth:`snapshot` state into this (possibly resized)
        model; the checksum keeps accumulating across the failure."""
        self._carry = np.float32(snap[0])
        self.checksum = float(snap[1])

    def min_service_seconds(self, prompt_tokens: int,
                            output_tokens: int) -> float:
        """Analytic lower bound on serving one request alone at the
        current world size: per step, this rank's 1/P FLOP shard plus the
        cheaper of the latency-/bandwidth-optimal allreduce schedules
        (what ``algorithm="adaptive"`` would pick).  A pure function of
        ``(cfg, comm.size, net.model)`` — every rank computes the same
        bound, which is what makes deadline-aware shedding deterministic.
        """
        cfg, p = self.cfg, self.comm.size
        net_model = self.comm.net.model

        def step_seconds(tokens: int) -> float:
            flops = cfg.flops_per_token_layer * tokens / p
            words = tokens * cfg.words_per_token_layer
            ar = min(
                allreduce_analytic_seconds(p, words, net_model,
                                           LATENCY_OPTIMAL),
                allreduce_analytic_seconds(p, words, net_model,
                                           bandwidth_optimal(p)))
            return cfg.layers * (flops * net_model.flop_time + ar)

        return (step_seconds(prompt_tokens)
                + (output_tokens - 1) * step_seconds(1))
