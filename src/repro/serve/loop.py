"""The serving engine: open-loop arrivals -> dynamic batches -> TP steps.

One SPMD program runs on every rank of the tensor-parallel group.  Each
engine step is one of:

* **prefill** — admit a batch and push its summed prompt tokens through
  the model (one large, bandwidth-bound allreduce per layer), emitting
  every admitted request's first token;
* **decode** — push one token per active request (one small,
  latency-bound allreduce per layer);
* **idle jump** — no work pending: jump the simulated clock to the next
  admission time (a closed form over the open-loop arrivals).

Determinism contract
--------------------

The repo's core invariant — a run is a pure function of ``(seed,
config)``, bit-identical across the ``coop`` and ``threads`` runners —
has one serving-specific hazard: after a dense allreduce at
non-power-of-two P, the per-rank simulated clocks legitimately *diverge*
(the fold-in/out ranks sit on different dependency chains), so admission
decisions keyed on a rank-local clock would differ across ranks and
deadlock the collectives.  The loop therefore synchronizes a **decision
clock as data** at every step boundary: an ``allgather`` of the per-rank
clocks whose max is the step's decision time on every rank.  All
admissions, token stamps and metrics use that shared value, so the
records are bit-identical on every rank (asserted by the driver) and
across runners; residual per-rank clock skew stays in the network, where
it belongs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..comm import collectives as coll
from ..comm.communicator import SimComm
from ..comm.launcher import run_spmd
from ..comm.model import NetworkModel
from ..errors import ConfigError
from .batcher import DynamicBatcher
from .metrics import RequestRecord, ServeReport
from .model import TPDecodeModel, TPModelConfig
from .workload import TokenSpec, Workload


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving run is a function of (besides the network)."""

    p: int = 4
    # --- workload (ignored when an explicit trace Workload is passed) ---
    rate: float = 2000.0          # offered load, requests per simulated s
    n_requests: int = 32
    prompt_tokens: TokenSpec = 64
    output_tokens: TokenSpec = 4
    # --- batcher ---
    max_batch_size: int = 8
    max_wait: float = 5e-4        # simulated seconds
    # --- model ---
    hidden: int = 256
    layers: int = 4
    ffn_mult: int = 4
    # --- collectives ---
    #: "adaptive" | "latency" | "bandwidth" | "auto" | concrete name
    algorithm: str = "adaptive"
    seed: int = 0

    @property
    def model_config(self) -> TPModelConfig:
        return TPModelConfig(hidden=self.hidden, layers=self.layers,
                             ffn_mult=self.ffn_mult)

    def workload(self) -> Workload:
        return Workload.poisson(
            self.n_requests, self.rate, prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens, seed=self.seed)


def _sync_decision_time(comm: SimComm) -> float:
    """Synchronize the step's decision clock as *data*: every rank posts
    its clock, everyone takes the max, and local clocks advance to it.
    The gathered set is identical on all ranks, so the max is too."""
    clocks = coll.allgather_object(comm, comm.clock)
    t = max(clocks)
    comm._advance_clock(t)
    return t


def _rank_serve(comm: SimComm, cfg: ServeConfig, workload: Workload) -> Dict:
    model = TPDecodeModel(cfg.model_config, comm,
                          algorithm=cfg.algorithm, seed=cfg.seed)
    batcher = DynamicBatcher(workload, cfg.max_batch_size, cfg.max_wait)
    admitted_at: Dict[int, float] = {}
    token_times: Dict[int, List[float]] = {}
    active: List[List] = []  # [request, tokens_emitted]
    prefill_batches = 0
    decode_steps = 0

    with comm.phase("serve"):
        t = _sync_decision_time(comm)
        while True:
            batch = batcher.admit(t, cfg.max_batch_size - len(active),
                                  bool(active))
            if batch:
                for rq in batch:
                    admitted_at[rq.rid] = t
                model.step(sum(rq.prompt_tokens for rq in batch))
                prefill_batches += 1
                t = _sync_decision_time(comm)
                for rq in batch:
                    token_times[rq.rid] = [t]
                    if rq.output_tokens > 1:
                        active.append([rq, 1])
                continue
            if active:
                model.step(len(active))
                decode_steps += 1
                t = _sync_decision_time(comm)
                still: List[List] = []
                for rq, emitted in active:
                    emitted += 1
                    token_times[rq.rid].append(t)
                    if emitted < rq.output_tokens:
                        still.append([rq, emitted])
                active = still
                continue
            t_next = batcher.next_decision(t)
            if t_next is None:
                break
            comm._advance_clock(t_next)
            t = _sync_decision_time(comm)

    records = [
        RequestRecord(rq.rid, rq.arrival, rq.prompt_tokens,
                      rq.output_tokens, admitted_at[rq.rid],
                      tuple(token_times[rq.rid]))
        for rq in workload.requests]
    return {
        "records": records,
        "checksum": model.checksum,
        "steps": {"prefill_batches": prefill_batches,
                  "decode_steps": decode_steps},
    }


def simulate_serving(cfg: ServeConfig, *,
                     workload: Optional[Workload] = None,
                     network: Optional[NetworkModel] = None,
                     runner: Optional[str] = None,
                     fused: Optional[bool] = None) -> ServeReport:
    """Run one serving simulation; a pure function of ``(cfg, workload,
    network)`` — bit-identical across runners and fused/unfused paths."""
    if cfg.p < 1:
        raise ConfigError(f"p must be >= 1, got {cfg.p}")
    wl = workload if workload is not None else cfg.workload()
    if len(wl) == 0:
        raise ConfigError("serving needs a non-empty workload")
    res = run_spmd(cfg.p, _rank_serve, cfg, wl, model=network,
                   runner=runner, fused=fused)
    first = res[0]
    for r in range(1, cfg.p):  # the loop's own cross-rank contract
        if res[r]["records"] != first["records"]:
            raise AssertionError(
                f"rank {r} serving records diverged from rank 0")
    return ServeReport(
        p=cfg.p,
        algorithm=cfg.algorithm,
        requests=first["records"],
        makespan=res.makespan,
        checksum=first["checksum"],
        algorithms=res.network.algorithm_provenance(),
        steps=first["steps"],
        config={"rate": cfg.rate, "n_requests": cfg.n_requests,
                "max_batch_size": cfg.max_batch_size,
                "max_wait": cfg.max_wait, "hidden": cfg.hidden,
                "layers": cfg.layers, "seed": cfg.seed},
    )


def sweep_load(cfg: ServeConfig, rates: Sequence[float], *,
               network: Optional[NetworkModel] = None,
               runner: Optional[str] = None,
               fused: Optional[bool] = None) -> List[ServeReport]:
    """Goodput-vs-offered-load sweep: one serving run per rate (same seed
    and shapes, fresh network each — runs are independent)."""
    return [simulate_serving(replace(cfg, rate=float(rate)),
                             network=network, runner=runner, fused=fused)
            for rate in rates]
