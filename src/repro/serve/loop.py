"""The serving engine: open-loop arrivals -> dynamic batches -> TP steps.

One SPMD program runs on every rank of the tensor-parallel group.  Each
engine step is one of:

* **prefill** — admit a batch and push its summed prompt tokens through
  the model (one large, bandwidth-bound allreduce per layer), emitting
  every admitted request's first token;
* **decode** — push one token per active request (one small,
  latency-bound allreduce per layer);
* **idle jump** — no work pending: jump the simulated clock to the next
  admission time (a closed form over the open-loop arrivals).

Determinism contract
--------------------

The repo's core invariant — a run is a pure function of ``(seed,
config)``, bit-identical across the ``coop``, ``gen`` and ``threads``
runners — has one serving-specific hazard: after a dense allreduce at
non-power-of-two P, the per-rank simulated clocks legitimately *diverge*
(the fold-in/out ranks sit on different dependency chains), so admission
decisions keyed on a rank-local clock would differ across ranks and
deadlock the collectives.  The loop therefore synchronizes a **decision
clock as data** at every step boundary: an ``allgather`` of the per-rank
clocks whose max is the step's decision time on every rank.  All
admissions, token stamps and metrics use that shared value, so the
records are bit-identical on every rank (asserted by the driver) and
across runners; residual per-rank clock skew stays in the network, where
it belongs.

Fault tolerance
---------------

``simulate_serving(..., faults=FaultPlan)`` threads the PR-6 fault model
into the section: slow links and stragglers degrade the clock honestly,
and a ``RankCrash`` fail-stops a rank mid-traffic.  Survivors catch the
resulting :class:`~repro.errors.RankFailedError` at the decision-clock
synchronization points and run elastic recovery:

1. ``comm.shrink()`` — agree on the survivor set (ULFM-style), flush the
   dead world's messages, synchronize clocks past the detection bound;
2. **rollback consensus** — each survivor may have caught the failure a
   step apart (the dead rank's last eager sends can complete one
   survivor's collective but not another's), so survivors allgather their
   last completed step boundary and every rank rolls back to the
   *minimum* — a checkpoint of batcher queue, active set, token stamps
   and model carry taken at each boundary (only the last three are
   retained; the spread is bounded by the decision-clock sync, which
   requires a post from every rank);
3. **rebuild** :class:`~repro.serve.model.TPDecodeModel` at the shrunken
   world — gain tables re-derived by consensus from the replicated seed,
   flops re-sharded 1/(P-1), and the adaptive allreduce crossover
   re-computed for the new P by the selector itself;
4. **re-enqueue** — in-flight requests whose generated tokens died with
   the crash go back to the batcher with capped exponential backoff
   (seeded jitter, bounded retry budget); requests that exhaust the
   budget are shed.

Request-level robustness (deadlines, timeout reaping, deadline-aware
admission shedding) rides the same fault-aware loop.  The fault-free
path is dispatched by a single ``faults is not None`` test (RL003-checked
for this module) and stays byte-identical to a loop that has never heard
of faults.  A faulted run remains a pure function of ``(seed, config,
plan)``: recovery decisions only consume synchronized or consensus data,
so reports stay bit-identical across runners and fused/unfused paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..comm import collectives as coll
from ..comm.communicator import SimComm
from ..comm.faults import FaultPlan
from ..comm.launcher import run_spmd
from ..comm.model import NetworkModel
from ..errors import ConfigError, RankFailedError
from .batcher import DynamicBatcher
from .metrics import RequestRecord, ServeReport
from .model import TPDecodeModel, TPModelConfig
from .workload import Request, TokenSpec, Workload


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving run is a function of (besides the network)."""

    p: int = 4
    # --- workload (ignored when an explicit trace Workload is passed) ---
    rate: float = 2000.0          # offered load, requests per simulated s
    n_requests: int = 32
    prompt_tokens: TokenSpec = 64
    output_tokens: TokenSpec = 4
    # --- batcher ---
    max_batch_size: int = 8
    max_wait: float = 5e-4        # simulated seconds
    # --- model ---
    hidden: int = 256
    layers: int = 4
    ffn_mult: int = 4
    # --- collectives ---
    #: "adaptive" | "latency" | "bandwidth" | "auto" | concrete name
    algorithm: str = "adaptive"
    seed: int = 0
    # --- request-level robustness (consulted by the fault-aware loop;
    # --- the plan-less fast path never reads them) ---
    #: completion SLO relative to arrival (simulated s); ``None`` = none.
    #: Per-request ``Request.deadline`` values override it.
    deadline: Optional[float] = None
    #: crash re-enqueues allowed per request before it is shed
    retry_budget: int = 2
    #: base / cap of the capped exponential retry backoff (simulated s)
    retry_backoff: float = 2e-4
    retry_backoff_cap: float = 2e-3

    @property
    def model_config(self) -> TPModelConfig:
        return TPModelConfig(hidden=self.hidden, layers=self.layers,
                             ffn_mult=self.ffn_mult)

    def workload(self) -> Workload:
        return Workload.poisson(
            self.n_requests, self.rate, prompt_tokens=self.prompt_tokens,
            output_tokens=self.output_tokens, seed=self.seed)


def _sync_decision_time(comm: SimComm) -> float:
    """Synchronize the step's decision clock as *data*: every rank posts
    its clock, everyone takes the max, and local clocks advance to it.
    The gathered set is identical on all ranks, so the max is too."""
    clocks = coll.allgather_object(comm, comm.clock)
    t = max(clocks)
    comm._advance_clock(t)
    return t


def _retry_release(cfg: ServeConfig, rid: int, attempt: int,
                   now: float) -> float:
    """Release time of retry ``attempt`` (1-based) for request ``rid``:
    capped exponential backoff with seeded jitter — a pure function of
    ``(cfg.seed, rid, attempt, now)``, identical on every rank."""
    delay = min(cfg.retry_backoff * (2.0 ** (attempt - 1)),
                cfg.retry_backoff_cap)
    jitter = np.random.default_rng(
        [cfg.seed & 0x7FFFFFFF, rid, attempt]).random()
    return now + delay * (1.0 + jitter)


def _rank_serve(comm: SimComm, cfg: ServeConfig, workload: Workload) -> Dict:
    faults = comm.net.faults
    if faults is not None:  # the plan-less fast path stays this one test
        return _rank_serve_faulted(comm, cfg, workload, faults)
    model = TPDecodeModel(cfg.model_config, comm,
                          algorithm=cfg.algorithm, seed=cfg.seed)
    batcher = DynamicBatcher(workload, cfg.max_batch_size, cfg.max_wait)
    admitted_at: Dict[int, float] = {}
    token_times: Dict[int, List[float]] = {}
    active: List[List] = []  # [request, tokens_emitted]
    prefill_batches = 0
    decode_steps = 0

    with comm.phase("serve"):
        t = _sync_decision_time(comm)
        while True:
            batch = batcher.admit(t, cfg.max_batch_size - len(active),
                                  bool(active))
            if batch:
                for rq in batch:
                    admitted_at[rq.rid] = t
                model.step(sum(rq.prompt_tokens for rq in batch))
                prefill_batches += 1
                t = _sync_decision_time(comm)
                for rq in batch:
                    token_times[rq.rid] = [t]
                    if rq.output_tokens > 1:
                        active.append([rq, 1])
                continue
            if active:
                model.step(len(active))
                decode_steps += 1
                t = _sync_decision_time(comm)
                still: List[List] = []
                for rq, emitted in active:
                    emitted += 1
                    token_times[rq.rid].append(t)
                    if emitted < rq.output_tokens:
                        still.append([rq, emitted])
                active = still
                continue
            t_next = batcher.next_decision(t)
            if t_next is None:
                break
            comm._advance_clock(t_next)
            t = _sync_decision_time(comm)

    records = [
        RequestRecord(rq.rid, rq.arrival, rq.prompt_tokens,
                      rq.output_tokens, admitted_at[rq.rid],
                      tuple(token_times[rq.rid]))
        for rq in workload.requests]
    return {
        "records": records,
        "checksum": model.checksum,
        "steps": {"prefill_batches": prefill_batches,
                  "decode_steps": decode_steps},
    }


def _rank_serve_faulted(comm: SimComm, cfg: ServeConfig,
                        workload: Workload, faults) -> Dict:
    """The fault-aware serving loop (see the module docstring's recovery
    walkthrough).  Same decision structure as :func:`_rank_serve`, plus
    per-boundary checkpoints, deadline/timeout/shed handling, and elastic
    shrink-and-resume on :class:`~repro.errors.RankFailedError`."""
    assert faults is not None  # dispatch contract; guards every deref below
    detect_timeout = faults.detect_timeout
    model = TPDecodeModel(cfg.model_config, comm,
                          algorithm=cfg.algorithm, seed=cfg.seed)
    batcher = DynamicBatcher(workload, cfg.max_batch_size, cfg.max_wait)
    admitted_at: Dict[int, float] = {}
    token_times: Dict[int, List[float]] = {}
    retries: Dict[int, int] = {}
    terminal: Dict[int, str] = {}       # rid -> "timeout" | "shed"
    active: List[List] = []             # [request, tokens_emitted]
    events: List[Dict] = []
    known_dead: set = set()
    prefill_batches = 0
    decode_steps = 0
    step_no = 0                         # decision-loop pass (1-based)

    def deadline_at(rq: Request) -> Optional[float]:
        return rq.deadline_at(cfg.deadline)

    def snap() -> Dict:
        """Checkpoint of everything a step boundary determines.  The
        model part is world-size independent, so it restores into a
        rebuilt post-shrink model."""
        return {
            "queue": batcher.snapshot(),
            "active": [list(pair) for pair in active],
            "token_times": {rid: list(ts)
                            for rid, ts in token_times.items()},
            "admitted_at": dict(admitted_at),
            "retries": dict(retries),
            "terminal": dict(terminal),
            "prefill_batches": prefill_batches,
            "decode_steps": decode_steps,
            "step_no": step_no,
            "model": model.snapshot(),
        }

    boundary = 0                        # completed stamping boundaries
    ckpts: Dict[int, Dict] = {0: snap()}
    failure: Optional[RankFailedError] = None
    t: Optional[float] = None

    def commit_boundary() -> None:
        nonlocal boundary
        boundary += 1
        ckpts[boundary] = snap()
        ckpts.pop(boundary - 3, None)
        # first stamp after a shrink closes that event's recovery window
        if events and "recovery_time" not in events[-1]:
            events[-1]["first_token"] = t
            events[-1]["recovery_time"] = t - events[-1]["detected"]

    while True:
        try:
            if failure is not None:
                exc, failure = failure, None
                new_failed = sorted(set(exc.failures) - known_dead)
                if not new_failed:
                    raise AssertionError(
                        "RankFailedError without fresh failures after "
                        "recovery") from exc
                detected = max(exc.failures[r].time
                               for r in new_failed) + detect_timeout
                old_size = comm.size
                comm = comm.shrink()
                # Rollback consensus: survivors may have caught the
                # failure one boundary apart; everyone resumes from the
                # minimum completed boundary.
                resume = min(coll.allgather_object(comm, boundary))
                s = ckpts[resume]
                batcher.restore(s["queue"])
                active = [list(pair) for pair in s["active"]]
                token_times = {rid: list(ts)
                               for rid, ts in s["token_times"].items()}
                admitted_at = dict(s["admitted_at"])
                retries = dict(s["retries"])
                terminal = dict(s["terminal"])
                prefill_batches = s["prefill_batches"]
                decode_steps = s["decode_steps"]
                step_no = s["step_no"]
                model = TPDecodeModel(cfg.model_config, comm,
                                      algorithm=cfg.algorithm,
                                      seed=cfg.seed)
                model.restore(s["model"])
                rollback = boundary - resume
                boundary = resume
                ckpts = {i: c for i, c in ckpts.items() if i <= resume}
                known_dead |= set(exc.failures)
                # Record the event before the post-shrink sync so a
                # cascading crash during recovery still leaves a trace.
                events.append({
                    "event": "shrink", "failed_ranks": new_failed,
                    "old_size": old_size, "new_size": comm.size,
                    "detected": detected, "rollback": rollback,
                })
                t = _sync_decision_time(comm)
                # In-flight requests' tokens died with the crashed world:
                # deterministically re-enqueue (or shed at budget).
                requeued: List[int] = []
                dropped: List[int] = []
                for rq, _emitted in active:
                    attempt = retries.get(rq.rid, 0) + 1
                    retries[rq.rid] = attempt
                    token_times.pop(rq.rid, None)
                    admitted_at.pop(rq.rid, None)
                    if attempt > cfg.retry_budget:
                        terminal[rq.rid] = "shed"
                        dropped.append(rq.rid)
                    else:
                        batcher.requeue(
                            rq, _retry_release(cfg, rq.rid, attempt, t))
                        requeued.append(rq.rid)
                active = []
                events[-1].update(resumed=t, requeued=requeued,
                                  dropped=dropped)
            elif t is None:
                t = _sync_decision_time(comm)
            step_no += 1
            comm.maybe_crash(iteration=step_no)
            # Timeout detection on the simulated clock: queued requests
            # whose completion deadline already passed are reaped here.
            for rq in batcher.expire(t, deadline_at):
                terminal[rq.rid] = "timeout"
            batch = batcher.admit(t, cfg.max_batch_size - len(active),
                                  bool(active))
            if batch:
                # Deadline-aware admission control: shed what even an
                # uncontended run at the current world size cannot finish
                # in time (post-shrink capacity raises this bound).
                kept: List[Request] = []
                for rq in batch:
                    dl = deadline_at(rq)
                    if dl is not None and t + model.min_service_seconds(
                            rq.prompt_tokens, rq.output_tokens) > dl:
                        terminal[rq.rid] = "shed"
                    else:
                        kept.append(rq)
                if not kept:
                    continue
                for rq in kept:
                    admitted_at[rq.rid] = t
                model.step(sum(rq.prompt_tokens for rq in kept))
                prefill_batches += 1
                t = _sync_decision_time(comm)
                for rq in kept:
                    token_times[rq.rid] = [t]
                    if rq.output_tokens > 1:
                        active.append([rq, 1])
                commit_boundary()
                continue
            if active:
                model.step(len(active))
                decode_steps += 1
                t = _sync_decision_time(comm)
                still: List[List] = []
                for rq, emitted in active:
                    emitted += 1
                    token_times[rq.rid].append(t)
                    if emitted < rq.output_tokens:
                        still.append([rq, emitted])
                active = still
                commit_boundary()
                continue
            t_next = batcher.next_decision(t)
            if t_next is None:
                break
            comm._advance_clock(t_next)
            t = _sync_decision_time(comm)
        except RankFailedError as exc_:
            failure = exc_  # recover at the top of the next pass

    records = []
    for rq in workload.requests:
        records.append(RequestRecord(
            rq.rid, rq.arrival, rq.prompt_tokens, rq.output_tokens,
            admitted_at.get(rq.rid), tuple(token_times.get(rq.rid, ())),
            status=terminal.get(rq.rid, "ok"),
            retries=retries.get(rq.rid, 0),
            deadline=deadline_at(rq)))
    return {
        "records": records,
        "checksum": model.checksum,
        "steps": {"prefill_batches": prefill_batches,
                  "decode_steps": decode_steps},
        "events": events,
    }


def simulate_serving(cfg: ServeConfig, *,
                     workload: Optional[Workload] = None,
                     network: Optional[NetworkModel] = None,
                     runner: Optional[str] = None,
                     fused: Optional[bool] = None,
                     faults: Optional[FaultPlan] = None) -> ServeReport:
    """Run one serving simulation; a pure function of ``(cfg, workload,
    network, faults)`` — bit-identical across runners and fused/unfused
    paths.  Under a fault plan the run survives the whole PR-6 model:
    crashed ranks return no records and the report is assembled from the
    (bit-identical) survivors."""
    if cfg.p < 1:
        raise ConfigError(f"p must be >= 1, got {cfg.p}")
    wl = workload if workload is not None else cfg.workload()
    if len(wl) == 0:
        raise ConfigError("serving needs a non-empty workload")
    res = run_spmd(cfg.p, _rank_serve, cfg, wl, model=network,
                   runner=runner, fused=fused, faults=faults)
    survivors = res.survivors
    first = res[survivors[0]]
    for r in survivors[1:]:  # the loop's own cross-rank contract
        if res[r]["records"] != first["records"]:
            raise AssertionError(
                f"rank {r} serving records diverged from "
                f"rank {survivors[0]}")
    return ServeReport(
        p=cfg.p,
        algorithm=cfg.algorithm,
        requests=first["records"],
        makespan=res.makespan,
        checksum=first["checksum"],
        algorithms=res.network.algorithm_provenance(),
        steps=first["steps"],
        config={"rate": cfg.rate, "n_requests": cfg.n_requests,
                "max_batch_size": cfg.max_batch_size,
                "max_wait": cfg.max_wait, "hidden": cfg.hidden,
                "layers": cfg.layers, "seed": cfg.seed},
        faulted=faults is not None,
        events=list(first.get("events", ())),
    )


def sweep_load(cfg: ServeConfig, rates: Sequence[float], *,
               network: Optional[NetworkModel] = None,
               runner: Optional[str] = None,
               fused: Optional[bool] = None,
               faults: Optional[FaultPlan] = None) -> List[ServeReport]:
    """Goodput-vs-offered-load sweep: one serving run per rate (same seed
    and shapes, fresh network each — runs are independent)."""
    return [simulate_serving(replace(cfg, rate=float(rate)),
                             network=network, runner=runner, fused=fused,
                             faults=faults)
            for rate in rates]
