"""Dynamic batching admission for the serving loop.

The batcher implements the standard two-knob admission policy:

* **max_batch_size** — a batch fires as soon as that many requests are
  pending (and slots are free),
* **max_wait** — a partial batch fires once the *oldest* pending request
  has waited that long (the tail-latency guard).

Continuous batching: while the engine is already decoding, newly arrived
requests piggyback onto the running batch at the next step boundary
(up to the free slots) without waiting for either trigger.

Fault-tolerant serving adds two queue operations (both no-ops on the
clean path): :meth:`requeue` re-inserts a request whose generated tokens
died with a rank crash, releasing it at ``ready_at`` (its retry-backoff
release time) instead of its original arrival; :meth:`expire` reaps
queued requests whose completion deadline has already passed — timeout
detection on the simulated clock, evaluated at decision points.
:meth:`snapshot` / :meth:`restore` give the serving loop the
checkpointed queue state it rolls back to when survivors resume after a
``comm.shrink()``.

Determinism contract: every rank of the tensor-parallel group runs one
batcher instance over the *same* workload and feeds it the *same*
decision times (the serving loop synchronizes its decision clock as data
through an allgather), so all instances make bit-identical decisions —
admission never consults a rank-local clock.  Because the stream is open
loop, the next admission time is a closed-form function of the pending
arrivals (:meth:`next_decision`), which is what lets an idle server jump
the simulated clock forward deterministically instead of polling.
Requeued entries keep that closed form: the queue is ordered by
``(ready_at, rid)``, a pure function of (seed, config, plan).
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from .workload import Request, Workload

#: queue entry: ``(ready_at, rid, request)`` — ``ready_at`` is the
#: arrival for fresh requests, the backoff release time for retries; the
#: unique ``rid`` tiebreak keeps ordering total without comparing
#: ``Request`` objects.
_Entry = Tuple[float, int, Request]


class DynamicBatcher:
    """Max-batch-size + max-wait-time admission over an open-loop stream."""

    def __init__(self, workload: Workload, max_batch_size: int,
                 max_wait: float):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ConfigError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        # Arrivals are non-decreasing and rids increasing, so the initial
        # queue is already in (ready_at, rid) order.
        self._queue: List[_Entry] = [
            (rq.arrival, rq.rid, rq) for rq in workload.requests]

    @property
    def pending(self) -> int:
        """Requests not yet admitted (arrived or future)."""
        return len(self._queue)

    def _arrived(self, now: float) -> int:
        n = 0
        for ready_at, _, _ in self._queue:
            if ready_at > now:
                break
            n += 1
        return n

    def admit(self, now: float, free_slots: int,
              engine_active: bool) -> List[Request]:
        """Admit requests at decision time ``now``; returns the admitted
        batch (possibly empty).

        While the engine is active, arrived requests fill free slots
        immediately (continuous batching).  While it is idle, a batch
        fires only when full (``max_batch_size`` arrivals pending) or when
        the oldest pending request has waited ``max_wait``.
        """
        arrived = self._arrived(now)
        if arrived == 0 or free_slots <= 0:
            return []
        if not engine_active:
            full = arrived >= self.max_batch_size
            timed_out = now >= self._queue[0][0] + self.max_wait
            if not (full or timed_out):
                return []
        take = min(arrived, free_slots, self.max_batch_size)
        out = [entry[2] for entry in self._queue[:take]]
        del self._queue[:take]
        return out

    def next_decision(self, now: float) -> Optional[float]:
        """Earliest simulated time at which an *idle* server's admission
        could fire: the arrival that completes a full batch, or the oldest
        pending request's max-wait deadline.  ``None`` once the stream is
        drained.  Pure function of the pending arrivals (and retry
        release times), so every rank computes the same jump target."""
        if not self._queue:
            return None
        head = self._queue[0][0]
        t_fire = head + self.max_wait
        if len(self._queue) >= self.max_batch_size:
            t_full = self._queue[self.max_batch_size - 1][0]
            if t_full < t_fire:
                t_fire = t_full
        # Never before anything is pending (and never behind the clock).
        return max(t_fire, head, now)

    # ------------------------------------------------------------------
    # Fault-tolerant serving (no-ops on the clean path)
    # ------------------------------------------------------------------
    def requeue(self, rq: Request, ready_at: float) -> None:
        """Re-insert a request whose in-flight tokens died with a crash;
        it becomes admissible at ``ready_at`` (the retry-backoff release
        time), keeping the queue (ready_at, rid)-ordered."""
        bisect.insort(self._queue, (ready_at, rq.rid, rq))

    def expire(self, now: float,
               deadline_at: Callable[[Request], Optional[float]],
               ) -> List[Request]:
        """Reap queued requests whose absolute completion deadline (per
        ``deadline_at``) has passed by ``now``; returns them in queue
        order.  The serving loop marks them as first-class ``timeout``
        terminals — expiry is detected at decision points, never from a
        rank-local clock."""
        expired: List[Request] = []
        kept: List[_Entry] = []
        for entry in self._queue:
            dl = deadline_at(entry[2])
            if dl is not None and now >= dl:
                expired.append(entry[2])
            else:
                kept.append(entry)
        if expired:
            self._queue = kept
        return expired

    def snapshot(self) -> List[_Entry]:
        """Copy of the queue state for the serving loop's recovery
        checkpoints (entries are immutable tuples)."""
        return list(self._queue)

    def restore(self, snap: List[_Entry]) -> None:
        """Roll the queue back to a :meth:`snapshot`."""
        self._queue = list(snap)
