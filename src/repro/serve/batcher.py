"""Dynamic batching admission for the serving loop.

The batcher implements the standard two-knob admission policy:

* **max_batch_size** — a batch fires as soon as that many requests are
  pending (and slots are free),
* **max_wait** — a partial batch fires once the *oldest* pending request
  has waited that long (the tail-latency guard).

Continuous batching: while the engine is already decoding, newly arrived
requests piggyback onto the running batch at the next step boundary
(up to the free slots) without waiting for either trigger.

Determinism contract: every rank of the tensor-parallel group runs one
batcher instance over the *same* workload and feeds it the *same*
decision times (the serving loop synchronizes its decision clock as data
through an allgather), so all instances make bit-identical decisions —
admission never consults a rank-local clock.  Because the stream is open
loop, the next admission time is a closed-form function of the pending
arrivals (:meth:`next_decision`), which is what lets an idle server jump
the simulated clock forward deterministically instead of polling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import ConfigError
from .workload import Request, Workload


class DynamicBatcher:
    """Max-batch-size + max-wait-time admission over an open-loop stream."""

    def __init__(self, workload: Workload, max_batch_size: int,
                 max_wait: float):
        if max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ConfigError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self._queue: Deque[Request] = deque(workload.requests)

    @property
    def pending(self) -> int:
        """Requests not yet admitted (arrived or future)."""
        return len(self._queue)

    def _arrived(self, now: float) -> int:
        n = 0
        for rq in self._queue:
            if rq.arrival > now:
                break
            n += 1
        return n

    def admit(self, now: float, free_slots: int,
              engine_active: bool) -> List[Request]:
        """Admit requests at decision time ``now``; returns the admitted
        batch (possibly empty).

        While the engine is active, arrived requests fill free slots
        immediately (continuous batching).  While it is idle, a batch
        fires only when full (``max_batch_size`` arrivals pending) or when
        the oldest pending request has waited ``max_wait``.
        """
        arrived = self._arrived(now)
        if arrived == 0 or free_slots <= 0:
            return []
        if not engine_active:
            full = arrived >= self.max_batch_size
            timed_out = now >= self._queue[0].arrival + self.max_wait
            if not (full or timed_out):
                return []
        take = min(arrived, free_slots, self.max_batch_size)
        return [self._queue.popleft() for _ in range(take)]

    def next_decision(self, now: float) -> Optional[float]:
        """Earliest simulated time at which an *idle* server's admission
        could fire: the arrival that completes a full batch, or the oldest
        pending request's max-wait deadline.  ``None`` once the stream is
        drained.  Pure function of the pending arrivals, so every rank
        computes the same jump target."""
        if not self._queue:
            return None
        head = self._queue[0].arrival
        t_fire = head + self.max_wait
        if len(self._queue) >= self.max_batch_size:
            t_full = self._queue[self.max_batch_size - 1].arrival
            if t_full < t_fire:
                t_fire = t_full
        # Never before anything is pending (and never behind the clock).
        return max(t_fire, head, now)
