"""Serving metrics: per-request records and the aggregated report.

All times are simulated seconds.  The report is built from rank 0's
request records (which are bit-identical on every rank — the serving loop
stamps them with the synchronized decision clock), so two reports from
the same ``(seed, config)`` compare equal field-for-field across the
``coop`` and ``threads`` runners and the fused/unfused paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (``q`` in [0, 100])
    over float64; NaN for an empty sample set."""
    xs = np.sort(np.asarray(list(samples), dtype=np.float64))
    if xs.size == 0:
        return float("nan")
    pos = (q / 100.0) * (xs.size - 1)
    lo = int(np.floor(pos))
    hi = int(np.ceil(pos))
    frac = pos - lo
    return float(xs[lo] * (1.0 - frac) + xs[hi] * frac)


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle stamps of one completed request."""

    rid: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    #: admission into a prefill batch
    admitted: float
    #: token emission times; ``token_times[0]`` is the first token (end of
    #: the prefill pass), one more per decode step
    token_times: Tuple[float, ...]

    @property
    def first_token(self) -> float:
        return self.token_times[0]

    @property
    def completion(self) -> float:
        return self.token_times[-1]

    @property
    def ttft(self) -> float:
        """Time to first token (arrival -> first token out)."""
        return self.first_token - self.arrival

    @property
    def latency(self) -> float:
        """End-to-end request latency (arrival -> last token)."""
        return self.completion - self.arrival

    @property
    def itl_samples(self) -> Tuple[float, ...]:
        """Inter-token latencies (gaps between consecutive emissions)."""
        ts = self.token_times
        return tuple(ts[i + 1] - ts[i] for i in range(len(ts) - 1))


@dataclass
class ServeReport:
    """Aggregated outcome of one serving run."""

    p: int
    algorithm: str
    requests: List[RequestRecord]
    #: latest simulated clock across ranks at drain
    makespan: float
    #: float64 activation checksum (bit-identity witness)
    checksum: float
    #: collective-algorithm provenance snapshot
    #: (``"collective/algorithm/mode" -> {"calls", "words"}``)
    algorithms: Dict[str, Dict[str, int]]
    #: engine step counts: ``{"prefill_batches", "decode_steps"}``
    steps: Dict[str, int] = field(default_factory=dict)
    config: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def generated_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    @property
    def offered_req_per_s(self) -> float:
        """Offered load: requests over the arrival span."""
        span = max(r.arrival for r in self.requests)
        return len(self.requests) / span if span > 0 else float("inf")

    @property
    def goodput_req_per_s(self) -> float:
        """Completed requests per simulated second of total runtime."""
        return len(self.requests) / self.makespan

    @property
    def goodput_tokens_per_s(self) -> float:
        return self.generated_tokens / self.makespan

    @property
    def itl_samples(self) -> List[float]:
        out: List[float] = []
        for r in self.requests:
            out.extend(r.itl_samples)
        return out

    def summary(self) -> Dict[str, float]:
        """Scalar metric dict — the comparison unit for determinism tests
        and the benchmark JSON."""
        ttft = [r.ttft for r in self.requests]
        lat = [r.latency for r in self.requests]
        itl = self.itl_samples
        return {
            "requests": float(len(self.requests)),
            "generated_tokens": float(self.generated_tokens),
            "offered_req_per_s": self.offered_req_per_s,
            "goodput_req_per_s": self.goodput_req_per_s,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "ttft_p50": percentile(ttft, 50.0),
            "ttft_p99": percentile(ttft, 99.0),
            "itl_p50": percentile(itl, 50.0),
            "itl_p99": percentile(itl, 99.0),
            "latency_p50": percentile(lat, 50.0),
            "latency_p99": percentile(lat, 99.0),
            "makespan": self.makespan,
            "checksum": self.checksum,
        }

    def format_report(self) -> str:
        """Human-readable multi-line report for the CLI."""
        s = self.summary()
        ms = 1e3
        lines = [
            f"serve: P={self.p} algorithm={self.algorithm} "
            f"requests={len(self.requests)} "
            f"tokens={self.generated_tokens}",
            f"  offered load    : {s['offered_req_per_s']:10.1f} req/s",
            f"  goodput         : {s['goodput_req_per_s']:10.1f} req/s  "
            f"({s['goodput_tokens_per_s']:.0f} tok/s)",
            f"  TTFT            : p50 {s['ttft_p50'] * ms:8.3f} ms   "
            f"p99 {s['ttft_p99'] * ms:8.3f} ms",
            f"  inter-token     : p50 {s['itl_p50'] * ms:8.3f} ms   "
            f"p99 {s['itl_p99'] * ms:8.3f} ms",
            f"  request latency : p50 {s['latency_p50'] * ms:8.3f} ms   "
            f"p99 {s['latency_p99'] * ms:8.3f} ms",
            f"  makespan        : {self.makespan * ms:.3f} ms simulated  "
            f"(prefill batches {self.steps.get('prefill_batches', 0)}, "
            f"decode steps {self.steps.get('decode_steps', 0)})",
        ]
        for key, info in self.algorithms.items():
            lines.append(f"  collective      : {key}  x{info['calls']}  "
                         f"({info['words']} words)")
        return "\n".join(lines)
