"""Serving metrics: per-request records and the aggregated report.

All times are simulated seconds.  The report is built from the first
surviving rank's request records (which are bit-identical on every
surviving rank — the serving loop stamps them with the synchronized
decision clock), so two reports from the same ``(seed, config, plan)``
compare equal field-for-field across the ``coop``/``gen``/``threads``
runners and the fused/unfused paths.

Terminal request states (first-class data, never exceptions):

* ``"ok"`` — completed; ``token_times`` holds every emitted token.
* ``"timeout"`` — the completion deadline expired while the request was
  queued (including retry backoff waits).
* ``"shed"`` — deadline-aware admission control dropped it: either even
  an uncontended run at the current (possibly post-shrink) world size
  could not meet its SLO, or its crash-retry budget ran out.

Degradation observability under a fault plan: :meth:`ServeReport.summary`
gains availability, SLO attainment, retry counters, recovery time (crash
detection → first post-shrink token) and pre/post-failure p99 splits —
present only for faulted runs so the plan-less summary keeps its exact
pre-fault schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (``q`` in [0, 100])
    over float64; NaN for an empty sample set."""
    xs = np.sort(np.asarray(list(samples), dtype=np.float64))
    if xs.size == 0:
        return float("nan")
    pos = (q / 100.0) * (xs.size - 1)
    lo = int(np.floor(pos))
    hi = int(np.ceil(pos))
    frac = pos - lo
    return float(xs[lo] * (1.0 - frac) + xs[hi] * frac)


def _pct_or_zero(samples: Sequence[float], q: float) -> float:
    """Percentile that degrades to 0.0 on an empty side of a
    pre/post-failure split (keeps summaries equality-comparable — NaN
    would break bit-identity assertions)."""
    return percentile(samples, q) if len(samples) else 0.0


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle stamps and terminal state of one request."""

    rid: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    #: admission into a prefill batch (last attempt); ``None`` if the
    #: request never reached the engine (shed or timed out while queued)
    admitted: Optional[float]
    #: token emission times; ``token_times[0]`` is the first token (end of
    #: the prefill pass), one more per decode step.  Empty unless the
    #: request completed — tokens of attempts that died with a crash are
    #: discarded with the failed world.
    token_times: Tuple[float, ...]
    #: terminal state: ``"ok"`` | ``"timeout"`` | ``"shed"``
    status: str = "ok"
    #: crash-retry count (re-enqueues after a rank failure)
    retries: int = 0
    #: absolute completion deadline, if the run had one
    deadline: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.status == "ok" and bool(self.token_times)

    @property
    def met_deadline(self) -> bool:
        """Completed within its SLO (vacuously true without a deadline)."""
        return self.completed and (self.deadline is None
                                   or self.completion <= self.deadline)

    @property
    def first_token(self) -> float:
        return self.token_times[0]

    @property
    def completion(self) -> float:
        return self.token_times[-1]

    @property
    def ttft(self) -> float:
        """Time to first token (arrival -> first token out)."""
        return self.first_token - self.arrival

    @property
    def latency(self) -> float:
        """End-to-end request latency (arrival -> last token)."""
        return self.completion - self.arrival

    @property
    def itl_samples(self) -> Tuple[float, ...]:
        """Inter-token latencies (gaps between consecutive emissions)."""
        ts = self.token_times
        return tuple(ts[i + 1] - ts[i] for i in range(len(ts) - 1))


@dataclass
class ServeReport:
    """Aggregated outcome of one serving run."""

    p: int
    algorithm: str
    requests: List[RequestRecord]
    #: latest simulated clock across ranks at drain
    makespan: float
    #: float64 activation checksum (bit-identity witness)
    checksum: float
    #: collective-algorithm provenance snapshot
    #: (``"collective/algorithm/mode" -> {"calls", "words"}``)
    algorithms: Dict[str, Dict[str, int]]
    #: engine step counts: ``{"prefill_batches", "decode_steps"}``
    steps: Dict[str, int] = field(default_factory=dict)
    config: Dict = field(default_factory=dict)
    #: the run executed under a fault plan (enables the degradation
    #: metrics below; plan-less summaries keep the pre-fault schema)
    faulted: bool = False
    #: elastic recovery events, one per survived shrink: failed ranks,
    #: detection/resume clocks, requeued/dropped rids, recovery time
    events: List[Dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def completed_requests(self) -> List[RequestRecord]:
        return [r for r in self.requests if r.completed]

    @property
    def generated_tokens(self) -> int:
        """Tokens actually delivered (completed requests only)."""
        return sum(len(r.token_times) for r in self.completed_requests)

    @property
    def offered_req_per_s(self) -> float:
        """Offered load: requests over the arrival span."""
        span = max(r.arrival for r in self.requests)
        return len(self.requests) / span if span > 0 else float("inf")

    @property
    def goodput_req_per_s(self) -> float:
        """Completed requests per simulated second of total runtime."""
        return len(self.completed_requests) / self.makespan

    @property
    def goodput_tokens_per_s(self) -> float:
        return self.generated_tokens / self.makespan

    @property
    def itl_samples(self) -> List[float]:
        out: List[float] = []
        for r in self.completed_requests:
            out.extend(r.itl_samples)
        return out

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed."""
        return len(self.completed_requests) / len(self.requests)

    @property
    def slo_attainment(self) -> float:
        """Fraction of offered requests that completed within their
        deadline (equals availability when the run had no deadlines)."""
        return (sum(1 for r in self.requests if r.met_deadline)
                / len(self.requests))

    @property
    def recovery_time(self) -> float:
        """Worst crash-detection → first-post-shrink-token gap across the
        run's recovery events; 0.0 without a crash."""
        return max((ev["recovery_time"] for ev in self.events
                    if "recovery_time" in ev), default=0.0)

    def _failure_split(self) -> Optional[float]:
        """Clock of the first crash detection, or ``None``."""
        if not self.events:
            return None
        return min(ev["detected"] for ev in self.events)

    def summary(self) -> Dict[str, float]:
        """Scalar metric dict — the comparison unit for determinism tests
        and the benchmark JSON.  Fault-degradation keys appear only for
        faulted runs, so the plan-less schema is unchanged."""
        done = self.completed_requests
        ttft = [r.ttft for r in done]
        lat = [r.latency for r in done]
        itl = self.itl_samples
        out = {
            "requests": float(len(self.requests)),
            "generated_tokens": float(self.generated_tokens),
            "offered_req_per_s": self.offered_req_per_s,
            "goodput_req_per_s": self.goodput_req_per_s,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "ttft_p50": percentile(ttft, 50.0),
            "ttft_p99": percentile(ttft, 99.0),
            "itl_p50": percentile(itl, 50.0),
            "itl_p99": percentile(itl, 99.0),
            "latency_p50": percentile(lat, 50.0),
            "latency_p99": percentile(lat, 99.0),
            "makespan": self.makespan,
            "checksum": self.checksum,
        }
        if self.faulted:
            out.update(self._degradation_summary(itl))
        return out

    def _degradation_summary(self, itl: List[float]) -> Dict[str, float]:
        reqs = self.requests
        split = self._failure_split()
        if split is None:
            itl_pre, itl_post = itl, []
            tokens_pre = float(self.generated_tokens)
            tokens_post = 0.0
            span_pre, span_post = self.makespan, 0.0
        else:
            itl_pre, itl_post = [], []
            tokens_pre = tokens_post = 0.0
            for r in self.completed_requests:
                ts = r.token_times
                for i in range(len(ts) - 1):
                    (itl_post if ts[i + 1] > split else itl_pre).append(
                        ts[i + 1] - ts[i])
                for t in ts:
                    if t > split:
                        tokens_post += 1.0
                    else:
                        tokens_pre += 1.0
            span_pre = split
            span_post = self.makespan - split
        return {
            "availability": self.availability,
            "slo_attainment": self.slo_attainment,
            "completed": float(len(self.completed_requests)),
            "shed": float(sum(1 for r in reqs if r.status == "shed")),
            "timeout": float(sum(1 for r in reqs if r.status == "timeout")),
            "retried_requests": float(sum(1 for r in reqs if r.retries)),
            "total_retries": float(sum(r.retries for r in reqs)),
            "recovery_time": self.recovery_time,
            "itl_p99_pre": _pct_or_zero(itl_pre, 99.0),
            "itl_p99_post": _pct_or_zero(itl_post, 99.0),
            "goodput_tokens_per_s_pre": (
                tokens_pre / span_pre if span_pre > 0 else 0.0),
            "goodput_tokens_per_s_post": (
                tokens_post / span_post if span_post > 0 else 0.0),
        }

    def format_report(self) -> str:
        """Human-readable multi-line report for the CLI."""
        s = self.summary()
        ms = 1e3
        lines = [
            f"serve: P={self.p} algorithm={self.algorithm} "
            f"requests={len(self.requests)} "
            f"tokens={self.generated_tokens}",
            f"  offered load    : {s['offered_req_per_s']:10.1f} req/s",
            f"  goodput         : {s['goodput_req_per_s']:10.1f} req/s  "
            f"({s['goodput_tokens_per_s']:.0f} tok/s)",
            f"  TTFT            : p50 {s['ttft_p50'] * ms:8.3f} ms   "
            f"p99 {s['ttft_p99'] * ms:8.3f} ms",
            f"  inter-token     : p50 {s['itl_p50'] * ms:8.3f} ms   "
            f"p99 {s['itl_p99'] * ms:8.3f} ms",
            f"  request latency : p50 {s['latency_p50'] * ms:8.3f} ms   "
            f"p99 {s['latency_p99'] * ms:8.3f} ms",
            f"  makespan        : {self.makespan * ms:.3f} ms simulated  "
            f"(prefill batches {self.steps.get('prefill_batches', 0)}, "
            f"decode steps {self.steps.get('decode_steps', 0)})",
        ]
        if self.faulted:
            n = len(self.requests)
            lines.append(
                f"  availability    : {self.availability * 100.0:.1f}%  "
                f"({len(self.completed_requests)}/{n} ok, "
                f"{int(s['shed'])} shed, {int(s['timeout'])} timeout, "
                f"{int(s['total_retries'])} retries)")
            lines.append(
                f"  SLO attainment  : {self.slo_attainment * 100.0:.1f}%")
            if s["recovery_time"] > 0.0:
                lines.append(f"  recovery        : "
                             f"{s['recovery_time'] * ms:.3f} ms "
                             f"(detection -> first post-shrink token)")
        for ev in self.events:
            line = (f"  fault           : t={ev['detected']:.6f}s: rank(s) "
                    f"{ev['failed_ranks']} failed, shrank "
                    f"{ev['old_size']} -> {ev['new_size']} workers and "
                    f"resumed")
            if ev.get("requeued"):
                line += f" ({len(ev['requeued'])} requests re-enqueued)"
            lines.append(line)
        for key, info in self.algorithms.items():
            lines.append(f"  collective      : {key}  x{info['calls']}  "
                         f"({info['words']} words)")
        return "\n".join(lines)
