"""Gradient quantization extension (sparsification + quantization, the
orthogonal technique of Section 2 / SparCML)."""

from ..allreduce.registry import register
from .allreduce_q import QuantizedOkTopkAllreduce, QuantizedTopkAAllreduce
from .codec import SUPPORTED_BITS, LinearQuantizer, QuantArray
from .sparse_q import QCOOPayload, dequantize_coo, quantize_coo

register(QuantizedTopkAAllreduce)
register(QuantizedOkTopkAllreduce)

__all__ = [
    "LinearQuantizer",
    "QuantArray",
    "SUPPORTED_BITS",
    "QCOOPayload",
    "quantize_coo",
    "dequantize_coo",
    "QuantizedTopkAAllreduce",
    "QuantizedOkTopkAllreduce",
]
