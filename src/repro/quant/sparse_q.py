"""Quantized COO payloads: the sparsification + quantization combination.

A :class:`QCOOPayload` carries int32 indices (1 word each, uncompressed —
they must stay exact) and quantized values; total wire size is
``k + ceil(k * bits / 32) + 2`` words instead of ``2k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import COOVector
from ..sparse.coo import INDEX_DTYPE
from .codec import LinearQuantizer, QuantArray


@dataclass(frozen=True)
class QCOOPayload:
    """A quantized sparse vector on the wire."""

    n: int
    indices: np.ndarray
    qvalues: QuantArray

    def comm_nwords(self) -> int:
        return int(self.indices.size) + self.qvalues.comm_nwords()


def quantize_coo(vec: COOVector, quantizer: LinearQuantizer) -> QCOOPayload:
    return QCOOPayload(vec.n, vec.indices, quantizer.encode(vec.values))


def dequantize_coo(payload: QCOOPayload,
                   quantizer: LinearQuantizer) -> COOVector:
    values = quantizer.decode(payload.qvalues)
    return COOVector(payload.n,
                     payload.indices.astype(INDEX_DTYPE, copy=False),
                     values)
