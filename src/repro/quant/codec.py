"""Linear value quantization for sparse gradient payloads.

Section 2 of the paper notes that gradient quantization is *orthogonal*
to sparsification and that SparCML studies the combination.  This module
provides that extension: the values of a COO payload are compressed to
``bits`` (4/8/16) with linear min-max quantization, optionally with
stochastic rounding (unbiased, the variant used by QSGD-style schemes),
shrinking the value half of the ``2k`` wire words to ``k * bits / 32``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

SUPPORTED_BITS = (4, 8, 16)


@dataclass(frozen=True)
class QuantArray:
    """Quantized values: packed codes plus the dequantization range."""

    codes: np.ndarray          # uint8/uint16 (4-bit packed two per byte)
    lo: float
    hi: float
    bits: int
    count: int

    def comm_nwords(self) -> int:
        """Wire size in 4-byte words: packed codes + the two range floats."""
        return int(np.ceil(self.codes.nbytes / 4)) + 2


class LinearQuantizer:
    """Min-max linear quantizer with deterministic or stochastic rounding.

    Deterministic rounding bounds the per-value error by half a step;
    stochastic rounding makes the dequantized value an unbiased estimate
    (important for error-feedback training).
    """

    def __init__(self, bits: int, *, stochastic: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if bits not in SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {SUPPORTED_BITS}")
        self.bits = bits
        self.stochastic = stochastic
        self.rng = rng or np.random.default_rng(0)
        self.levels = (1 << bits) - 1

    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray) -> QuantArray:
        v = np.asarray(values, dtype=np.float32)
        if v.size == 0:
            return QuantArray(np.empty(0, np.uint8), 0.0, 0.0,
                              self.bits, 0)
        lo = float(v.min())
        hi = float(v.max())
        if hi == lo:
            codes = np.zeros(v.size, dtype=np.uint8)
            return QuantArray(self._pack(codes), lo, hi, self.bits, v.size)
        scaled = (v - lo) * (self.levels / (hi - lo))
        if self.stochastic:
            floor = np.floor(scaled)
            frac = scaled - floor
            up = self.rng.random(v.size) < frac
            q = floor + up
        else:
            q = np.rint(scaled)
        q = np.clip(q, 0, self.levels)
        dtype = np.uint16 if self.bits == 16 else np.uint8
        return QuantArray(self._pack(q.astype(dtype)), lo, hi,
                          self.bits, v.size)

    def decode(self, qa: QuantArray) -> np.ndarray:
        if qa.count == 0:
            return np.empty(0, dtype=np.float32)
        codes = self._unpack(qa)
        if qa.hi == qa.lo:
            return np.full(qa.count, qa.lo, dtype=np.float32)
        step = (qa.hi - qa.lo) / self.levels
        return (qa.lo + codes.astype(np.float32) * step).astype(np.float32)

    # ------------------------------------------------------------------
    def step_size(self, lo: float, hi: float) -> float:
        return (hi - lo) / self.levels if hi > lo else 0.0

    def _pack(self, codes: np.ndarray) -> np.ndarray:
        if self.bits != 4:
            return codes
        n = codes.size
        if n % 2:
            codes = np.concatenate([codes, np.zeros(1, codes.dtype)])
        return (codes[0::2] | (codes[1::2] << 4)).astype(np.uint8)

    def _unpack(self, qa: QuantArray) -> np.ndarray:
        if self.bits != 4:
            return qa.codes
        low = qa.codes & 0x0F
        high = qa.codes >> 4
        out = np.empty(qa.codes.size * 2, dtype=np.uint8)
        out[0::2] = low
        out[1::2] = high
        return out[: qa.count]
