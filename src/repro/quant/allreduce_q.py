"""Quantized variants of the sparse allreduce schemes.

* :class:`QuantizedTopkAAllreduce` ("topka_q") — SparCML's combination:
  local top-k, values quantized to ``bits``, allgatherv, dequantize + sum.
* :class:`QuantizedOkTopkAllreduce` ("oktopk_q") — Ok-Topk with quantized
  *phase-2* payloads (the balance-and-allgatherv values).  Phase 1 stays
  full precision: its partial sums feed the global threshold, and
  re-quantizing at every hop would compound errors; phase 2 ships the
  final values to everyone, which is where most of the volume is safe to
  compress.  This is the paper's "orthogonal technique" footnote turned
  into a working extension.
"""

from __future__ import annotations

import numpy as np

from ..allreduce.base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, \
    GradientAllreduce
from ..allreduce.oktopk import OkTopkAllreduce
from ..comm import SimComm, collectives as coll
from ..sparse import COOVector, combine_sum, exact_topk
from ..sparse.coo import INDEX_DTYPE, VALUE_DTYPE
from .codec import LinearQuantizer
from .sparse_q import QCOOPayload, dequantize_coo, quantize_coo


class QuantizedTopkAAllreduce(GradientAllreduce):
    """TopkA with quantized values (sparsification + quantization)."""

    name = "topka_q"
    bucketable = True  # stateless, like TopkA

    def __init__(self, *, bits: int = 8, stochastic: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.quantizer = LinearQuantizer(bits, stochastic=stochastic)

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        k = self.resolve_k(acc.size)
        with comm.phase(PHASE_SPARSIFY):
            local = exact_topk(acc, k)
            comm.compute_topk(acc.size, k)
            payload = quantize_coo(local, self.quantizer)
            comm.compute_scan(local.nnz)
        with comm.phase(PHASE_COMM):
            gathered = coll.allgatherv_coo(comm, payload)
            vecs = [dequantize_coo(p, self.quantizer) for p in gathered]
            total = combine_sum(vecs)
            comm.compute_words(sum(v.nnz for v in vecs))
        return AllreduceResult(
            update=total,
            contributed_indices=local.indices,
            info={"k": k, "selected": local.nnz, "output_nnz": total.nnz,
                  "bits": self.quantizer.bits,
                  "payload_words": payload.comm_nwords()},
        )


class QuantizedOkTopkAllreduce(OkTopkAllreduce):
    """Ok-Topk shipping quantized global top-k values in phase 2."""

    name = "oktopk_q"

    def __init__(self, *, bits: int = 8, stochastic: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.quantizer = LinearQuantizer(bits, stochastic=stochastic)

    def _balance_and_allgatherv(self, comm: SimComm, reduced: COOVector,
                                global_th: float) -> tuple[COOVector, bool]:
        p = comm.size
        n = reduced.n
        mine = (reduced.select_threshold(global_th) if global_th > 0
                else reduced)
        comm.compute_scan(reduced.nnz)
        if p == 1:
            return mine, False
        sizes = coll.allgather_object(comm, mine.nnz)
        total = int(sum(sizes))
        balanced = False
        idx, val = mine.indices, mine.values
        if (self.data_balancing and total > 0
                and max(sizes) > self.balance_trigger * total / p):
            idx, val = self._rebalance(comm, idx, val, sizes)
            balanced = True
            self._state.balancing_triggered += 1
        payload = QCOOPayload(n, idx, self.quantizer.encode(val))
        comm.compute_scan(len(val))
        pieces = coll.allgatherv(comm, payload)
        cat_idx = np.concatenate(
            [pc.indices for pc in pieces]).astype(INDEX_DTYPE)
        cat_val = np.concatenate(
            [self.quantizer.decode(pc.qvalues) for pc in pieces]
        ).astype(VALUE_DTYPE)
        return COOVector(n, cat_idx, cat_val), balanced
