"""RL001 — nondeterminism sources in simulation code.

A run must be a pure function of (program, seed, plan).  Anything that
reads ambient machine state breaks bit-identity across runs, runners and
hosts:

* wall/CPU clock reads: ``time.time``/``perf_counter``/``monotonic``/
  ``process_time``/``strftime``/``localtime``/``gmtime``/``ctime``/
  ``asctime``, ``datetime.now``/``today``/``utcnow``, and ``time.sleep``
  (real time has no business in simulated time);
* the **global** RNGs: ``np.random.<sampler>`` / ``random.<sampler>`` at
  module level share hidden cross-call state — any reordering of callers
  changes every subsequent draw.  Seeded generator *instances*
  (``np.random.default_rng(seed)``, ``np.random.Generator``,
  ``random.Random(seed)``) are the sanctioned replacements and are not
  flagged;
* ``os.urandom`` (hardware entropy);
* ``id()`` feeding an ordering (``sorted``/``sort``/``min``/``max`` keys
  or magnitude comparisons): CPython ids are allocation addresses —
  identity-keyed *lookups* are fine, identity-keyed *order* is not;
* ``for`` iteration over a set display/comprehension/``set()`` call: set
  order is hash-seed dependent for str keys and insertion-history
  dependent otherwise, so accumulating over it is order-dependent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .core import Finding

CODE = "RL001"
NAME = "nondeterminism-source"

#: time-module attributes that read the real clock (or block on it)
_TIME_ATTRS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "sleep",
    "strftime", "localtime", "gmtime", "ctime", "asctime",
}
_DATETIME_ATTRS = {"now", "today", "utcnow"}
#: module-level numpy legacy samplers / global-state mutators
_NP_RANDOM_ATTRS = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "binomial", "beta",
    "gamma", "bytes", "get_state", "set_state",
}
#: stdlib random module-level samplers (random.Random instances are fine)
_PY_RANDOM_ATTRS = {
    "seed", "random", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "normalvariate", "expovariate", "betavariate", "gammavariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "getstate", "setstate", "randbytes",
}
_ORDERING_FUNCS = {"sorted", "min", "max"}


def applies(path: str) -> bool:
    return True


class _Aliases(ast.NodeVisitor):
    """Resolve import aliases so ``import numpy as np`` and
    ``from time import perf_counter`` are both caught."""

    def __init__(self):
        #: local name -> canonical module ("time", "numpy", "random", ...)
        self.modules: Dict[str, str] = {}
        #: local name -> ("module", attr) for from-imports
        self.names: Dict[str, tuple] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            root = a.name.split(".")[0]
            self.modules[a.asname or root] = a.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for a in node.names:
            self.names[a.asname or a.name] = (node.module, a.name)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``np.random.rand`` -> ["np", "random", "rand"]; None if not a
    plain name/attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, aliases: _Aliases, path: str):
        self.al = aliases
        self.path = path
        self.findings: List[Finding] = []

    def _emit(self, node: ast.AST, msg: str) -> None:
        self.findings.append(Finding(
            self.path, node.lineno, node.col_offset + 1, CODE, msg))

    # -- helpers --------------------------------------------------------
    def _canonical(self, chain: List[str]) -> Optional[List[str]]:
        """Rewrite the chain head through the import aliases:
        ``np.random.rand`` -> ``numpy.random.rand``,
        ``perf_counter`` (from-import) -> ``time.perf_counter``."""
        head = chain[0]
        if head in self.al.modules:
            return self.al.modules[head].split(".") + chain[1:]
        if head in self.al.names:
            mod, attr = self.al.names[head]
            return mod.split(".") + [attr] + chain[1:]
        return None

    def _check_call_target(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is None:
            return
        canon = self._canonical(chain)
        if canon is None:
            return
        dotted = ".".join(canon)
        if canon[0] == "time" and len(canon) == 2 \
                and canon[1] in _TIME_ATTRS:
            what = "blocks on real time" if canon[1] == "sleep" \
                else "reads the wall/CPU clock"
            self._emit(node, f"{dotted}() {what}; simulation code must "
                             f"use the simulated clock (comm.clock)")
        elif canon[0] == "datetime" and canon[-1] in _DATETIME_ATTRS:
            self._emit(node, f"{dotted}() reads the wall clock; derive "
                             f"timestamps from the seed/plan instead")
        elif canon[:2] == ["numpy", "random"] and len(canon) == 3 \
                and canon[2] in _NP_RANDOM_ATTRS:
            self._emit(node, f"{dotted}() uses numpy's *global* RNG "
                             f"(hidden cross-call state); use a seeded "
                             f"np.random.default_rng(seed) instance")
        elif canon[0] == "random" and len(canon) == 2 \
                and canon[1] in _PY_RANDOM_ATTRS:
            self._emit(node, f"{dotted}() uses the stdlib *global* RNG; "
                             f"use a seeded random.Random(seed) instance")
        elif canon[0] == "os" and canon[-1] == "urandom":
            self._emit(node, "os.urandom() draws hardware entropy; runs "
                             "must be a pure function of the seed")

    @staticmethod
    def _contains_id_call(node: ast.AST) -> Optional[ast.Call]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Name) \
                    and sub.func.id == "id":
                return sub
        return None

    def _check_id_ordering(self, node: ast.Call) -> None:
        """``sorted(xs, key=id)`` / ``xs.sort(key=lambda v: id(v))`` /
        ``min(..., key=id)``: object ids are allocation addresses."""
        fname = None
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDERING_FUNCS:
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "sort":
            fname = "sort"
        if fname is None:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            hit = self._contains_id_call(kw.value)
            if hit is None and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "id":
                hit = kw.value
            if hit is not None:
                self._emit(hit if isinstance(hit, ast.Call) else node,
                           f"id() used as a {fname}() ordering key: "
                           f"CPython ids are allocation addresses, not a "
                           f"stable order")

    # -- visitors -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call_target(node)
        self._check_id_ordering(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
               for op in node.ops):
            hit = self._contains_id_call(node)
            if hit is not None:
                self._emit(hit, "id() compared by magnitude: object ids "
                                "are allocation addresses, not a stable "
                                "order")
        self.generic_visit(node)

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self._emit(iter_node, "iteration over a set: element order is "
                                  "hash/insertion dependent — sort it (or "
                                  "use a list/dict) before accumulating")
        elif isinstance(iter_node, ast.Call) \
                and isinstance(iter_node.func, ast.Name) \
                and iter_node.func.id in ("set", "frozenset"):
            self._emit(iter_node, "iteration over set(...): element order "
                                  "is hash/insertion dependent — use "
                                  "sorted(...) for a stable order")

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_set_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def check(tree: ast.AST, src: str, path: str) -> List[Finding]:
    aliases = _Aliases()
    aliases.visit(tree)
    checker = _Checker(aliases, path)
    checker.visit(tree)
    return checker.findings
