"""Engine of ``repro-lint``: file walking, suppressions, rule dispatch.

A *rule* is a module exposing::

    CODE: str                     # "RL001"
    NAME: str                     # short kebab-case name
    def applies(path: str) -> bool      # posix-relative path filter
    def check(tree, src, path) -> list[Finding]

Rules never read the filesystem; :func:`lint_source` hands them the parsed
AST and raw source of one file, then filters their findings through the
inline suppression pragmas.  This keeps every rule unit-testable against
fixture snippets (``tests/test_analysis_lint.py``).

Suppression syntax
------------------

Line-level (same line as the finding, or a standalone comment on the
line directly above it)::

    x = time.time()  # repro-lint: ignore[RL001] -- wall-clock perf harness

File-level (anywhere in the file, standalone comment; scopes the whole
file)::

    # repro-lint: ignore-file[RL001] -- this benchmark measures wall time

Both forms **must** carry a ``-- reason``; a reasonless pragma is itself
reported as RL000 so CI cannot silently accumulate unexplained opt-outs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: meta-rule: a suppression pragma without a ``-- reason``
META_CODE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(ignore|ignore-file)"
    r"\[([A-Za-z0-9 ,]+)\]"
    r"(?:\s*--\s*(\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or RL000 meta-finding) at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


class _Suppressions:
    """Parsed inline pragmas of one file."""

    def __init__(self, src: str, path: str):
        self.file_codes: Set[str] = set()
        self.line_codes: Dict[int, Set[str]] = {}
        self.meta: List[Finding] = []
        lines = src.splitlines()
        for lineno, text in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            kind, codes_s, reason = m.group(1), m.group(2), m.group(3)
            codes = {c.strip() for c in codes_s.split(",") if c.strip()}
            if not reason:
                self.meta.append(Finding(
                    path, lineno, m.start() + 1, META_CODE,
                    f"suppression {kind}[{codes_s}] has no '-- reason'; "
                    f"every opt-out must say why"))
                continue
            if kind == "ignore-file":
                self.file_codes |= codes
            else:
                self.line_codes.setdefault(lineno, set()).update(codes)
                if text[:m.start()].strip() == "":
                    # Standalone pragma comment: also covers the next
                    # *code* line, skipping blank/comment continuation
                    # lines (the idiom for explanations that wrap).
                    j = lineno  # 0-based index of the line after lineno
                    while j < len(lines) and (
                            not lines[j].strip()
                            or lines[j].lstrip().startswith("#")):
                        j += 1
                    if j < len(lines):
                        self.line_codes.setdefault(j + 1, set()).update(codes)

    def hides(self, f: Finding) -> bool:
        if f.code in self.file_codes:
            return True
        return f.code in self.line_codes.get(f.line, ())


@dataclass
class LintReport:
    """Aggregate result of a lint run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    #: files that failed to parse, as (path, message)
    errors: List[tuple]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out

    def to_json_obj(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in sorted(
                self.findings, key=lambda f: f.sort_key)],
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "errors": [{"path": p, "message": m} for p, m in self.errors],
        }


def _load_rules():
    from . import rules_buffers, rules_determinism, rules_engine, rules_guards
    return (rules_determinism, rules_buffers, rules_guards, rules_engine)


#: the shipped rules, in code order (import is deferred to avoid cycles)
ALL_RULES = _load_rules()


def lint_source(src: str, path: str,
                rules: Optional[Sequence] = None,
                ) -> tuple[List[Finding], int]:
    """Lint one file's source text.

    ``path`` is the (posix, repo-relative) name used both for rule
    applicability filters and in the findings.  Returns the visible
    findings (including RL000 meta-findings) and the count of findings
    hidden by suppressions.
    """
    rules = ALL_RULES if rules is None else rules
    tree = ast.parse(src, filename=path)
    sup = _Suppressions(src, path)
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(path):
            raw.extend(rule.check(tree, src, path))
    visible = [f for f in raw if not sup.hides(f)]
    visible.extend(sup.meta)
    visible.sort(key=lambda f: f.sort_key)
    return visible, len(raw) - (len(visible) - len(sup.meta))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files,
    skipping ``__pycache__`` and dot-directories."""
    out: List[Path] = []
    for p in paths:
        root = Path(p)
        if root.is_file():
            out.append(root)
            continue
        for f in sorted(root.rglob("*.py")):
            if any(part == "__pycache__" or part.startswith(".")
                   for part in f.parts):
                continue
            out.append(f)
    return sorted(set(out))


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence] = None) -> LintReport:
    """Lint every Python file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    errors: List[tuple] = []
    suppressed = 0
    files = iter_python_files(paths)
    for f in files:
        rel = f.as_posix()
        try:
            src = f.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append((rel, f"unreadable: {exc}"))
            continue
        try:
            got, hidden = lint_source(src, rel, rules)
        except SyntaxError as exc:
            errors.append((rel, f"syntax error: {exc.msg} "
                           f"(line {exc.lineno})"))
            continue
        findings.extend(got)
        suppressed += hidden
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(findings, len(files), suppressed, errors)
