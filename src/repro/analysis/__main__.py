"""``python -m repro.analysis`` — same entry point as ``repro-lint``."""

from .cli import main

raise SystemExit(main())
