"""``repro-lint`` command line front-end.

Exit codes: 0 clean, 1 findings, 2 unparseable/unreadable files.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import ALL_RULES, META_CODE, lint_paths

_DEFAULT_PATHS = ["src", "benchmarks", "tests"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro simulator "
                    "(determinism, buffer ownership, fault guards, engine "
                    "blocking discipline).")
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories to lint "
                        f"(default: {' '.join(_DEFAULT_PATHS)}, "
                        f"skipping any that do not exist)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes to run "
                        "(e.g. RL001,RL003); default: all")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        print(f"{META_CODE}  suppression-without-reason  (always on)")
        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.NAME}")
        return 0

    rules = ALL_RULES
    if args.select:
        wanted = {c.strip().upper() for c in args.select.split(",")
                  if c.strip()}
        rules = [r for r in ALL_RULES if r.CODE in wanted]
        unknown = wanted - {r.CODE for r in ALL_RULES} - {META_CODE}
        if unknown:
            print(f"repro-lint: unknown rule code(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    paths = args.paths
    if not paths:
        from pathlib import Path
        paths = [p for p in _DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print("repro-lint: none of the default paths "
                  f"({', '.join(_DEFAULT_PATHS)}) exist here; "
                  "pass paths explicitly", file=sys.stderr)
            return 2

    report = lint_paths(paths, rules)

    if args.format == "json":
        print(json.dumps(report.to_json_obj(), indent=2))
        return report.exit_code

    for path, msg in report.errors:
        print(f"{path}: error: {msg}")
    for f in report.findings:
        print(f.format())
    counts = report.counts()
    summary = ", ".join(f"{c} x{n}" for c, n in sorted(counts.items()))
    tail = f" ({summary})" if summary else ""
    sup = f", {report.suppressed} suppressed" if report.suppressed else ""
    print(f"repro-lint: {len(report.findings)} finding(s) in "
          f"{report.files_checked} file(s){tail}{sup}")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
