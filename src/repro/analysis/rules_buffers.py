"""RL002 — buffer ownership: received payloads are loaned, not owned.

Under the coop runner every array delivered by ``comm.recv`` /
``comm.sendrecv`` / ``comm.waitall`` / ``request.wait`` (and every array
handed back by ``Network.deliver_batch``) is a *loan*: the same object
the sender posted, made read-only for the delivery window.  A scheme
that writes into it (``got += x``, ``got[lo:hi] = x``,
``np.add(a, b, out=got)``, ``got.sort()``) corrupts the sender's buffer
— exactly the SparCML-style reuse bug the sanitizer mode catches at
runtime.  This rule catches it statically, inside ``allreduce/`` scheme
code, with a per-function taint pass:

* **sources** — names bound (directly, by tuple-unpack, by indexing a
  tainted container, or as the loop variable iterating one) from a
  receive-API call;
* **sinks** — augmented assignment to a tainted name, stores into a
  tainted subscript/attribute, mutating method calls on a tainted name,
  and numpy calls that write through ``out=``/first-arg into one;
* **cleansers** — rebinding a name from an untainted expression, or
  materialising an owned copy via ``.copy()`` / ``np.copy`` /
  ``np.array`` / ``np.asarray`` / ``.astype()``.

The analysis is intra-function and flow-insensitive across branches
(taint accumulates through ``if``/``for``/``try`` arms), which is
conservative in the right direction for a lint.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .core import Finding

CODE = "RL002"
NAME = "loaned-buffer-mutation"

#: receive-API attribute names whose results are loaned buffers
_SOURCE_METHODS = {"recv", "sendrecv", "waitall", "wait", "deliver_batch"}
#: ndarray methods that mutate in place
_MUTATING_METHODS = {
    "sort", "fill", "put", "partition", "itemset", "setfield", "setflags",
    "resize",
}
#: numpy module functions whose FIRST positional arg is the write target
_NP_FIRSTARG_WRITERS = {"copyto", "put", "putmask", "place", "fill_diagonal"}
#: constructors that hand back an owned copy (cleansers)
_COPY_CALLS = {"copy", "array", "asarray", "ascontiguousarray"}
_COPY_METHODS = {"copy", "astype", "tolist", "item", "sum", "dot"}


def applies(path: str) -> bool:
    return "allreduce/" in path


def _root_name(node: ast.AST) -> Optional[str]:
    """Peel Subscript/Attribute/Starred wrappers down to the base Name."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_source_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SOURCE_METHODS)


class _FuncTaint:
    """Taint pass over one function body, in statement order."""

    def __init__(self, path: str, findings: List[Finding]):
        self.path = path
        self.findings = findings
        self.tainted: Set[str] = set()

    def _emit(self, node: ast.AST, msg: str) -> None:
        self.findings.append(Finding(
            self.path, node.lineno, node.col_offset + 1, CODE, msg))

    # -- taint of expressions ------------------------------------------
    def _taints(self, node: ast.AST) -> bool:
        """Does evaluating ``node`` yield a (view of a) loaned buffer?"""
        if _is_source_call(node):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            # owned-copy cleansers: tainted.copy(), np.array(tainted), ...
            if isinstance(func, ast.Attribute) \
                    and func.attr in _COPY_METHODS:
                return False
            if isinstance(func, ast.Attribute) \
                    and func.attr in _COPY_CALLS:
                return False
            if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
                # list(msgs) keeps the element loans alive
                return any(self._taints(a) for a in node.args)
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            return self._taints(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._taints(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return self._taints(node.body) or self._taints(node.orelse)
        return False

    # -- sinks ----------------------------------------------------------
    def _check_call_sink(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _MUTATING_METHODS and self._taints(func.value):
                name = _root_name(func.value) or "<expr>"
                self._emit(node, f"in-place .{func.attr}() on '{name}', "
                                 f"which is a loaned receive buffer; "
                                 f"operate on an owned .copy()")
                return
            # np.add(a, b, out=tainted) and friends
            for kw in node.keywords:
                if kw.arg == "out" and self._taints(kw.value):
                    name = _root_name(kw.value) or "<expr>"
                    self._emit(node, f"out={name} writes into a loaned "
                                     f"receive buffer; allocate the "
                                     f"output or reuse an owned scratch "
                                     f"buffer")
                    return
            if func.attr in _NP_FIRSTARG_WRITERS and node.args \
                    and self._taints(node.args[0]):
                name = _root_name(node.args[0]) or "<expr>"
                self._emit(node, f"np.{func.attr}() writes into '{name}', "
                                 f"which is a loaned receive buffer")

    def _bind(self, target: ast.AST, value_tainted: bool) -> None:
        """Apply one assignment's effect on the taint set."""
        if isinstance(target, ast.Name):
            if value_tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._bind(e, value_tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value_tainted)
        # stores *into* subscripts/attributes are sinks, handled separately

    # -- statement walk -------------------------------------------------
    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for expr in ast.walk(stmt.value):
                if isinstance(expr, ast.Call):
                    self._check_call_sink(expr)
            vt = self._taints(stmt.value)
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)) \
                        and self._taints(target.value):
                    name = _root_name(target) or "<expr>"
                    self._emit(target, f"store into '{name}', a loaned "
                                       f"receive buffer; received arrays "
                                       f"are read-only for the loan "
                                       f"window")
                else:
                    self._bind(target, vt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target, self._taints(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            root = _root_name(stmt.target)
            if self._taints(stmt.target) or (
                    isinstance(stmt.target, ast.Name)
                    and root in self.tainted):
                self._emit(stmt, f"augmented assignment mutates '{root}', "
                                 f"a loaned receive buffer; combine into "
                                 f"an owned accumulator instead")
        elif isinstance(stmt, ast.Expr):
            for expr in ast.walk(stmt.value):
                if isinstance(expr, ast.Call):
                    self._check_call_sink(expr)
        elif isinstance(stmt, ast.For):
            if self._taints(stmt.iter):
                self._bind(stmt.target, True)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        # nested defs get their own pass from check(); other statements
        # neither source nor sink


def check(tree: ast.AST, src: str, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FuncTaint(path, findings).run(node.body)
    findings.sort(key=lambda f: f.sort_key)
    return findings
