"""RL004 — GenEngine trampoline blocking discipline.

The generator engine multiplexes every rank onto ONE OS thread (the
trampoline).  A rank that cannot make progress must *raise*
``_WouldBlock`` so the trampoline can run someone else; if trampoline
code instead parks the OS thread (``lock.acquire()``, ``event.wait()``,
``thread.join()``, ``time.sleep()``, a blocking ``queue.Queue``), every
rank deadlocks at once — the single scariest failure mode of the
continuation-passing design.

This rule walks the ``GenEngine`` class in ``comm/engine.py`` and flags
any threading/queue/blocking primitive outside the *sanctioned* methods
— the handful of places that legitimately touch OS synchronisation
because they sit on the boundary between the trampoline and the carrier
threads that service ``Call`` escape-hatch thunks:

* ``__init__`` (allocates the locks),
* ``run`` / ``_trampoline`` (own the trampoline lock),
* ``_hand_off`` (releases, never acquires, but hands the lock over),
* ``_dispatch_carrier`` / ``_carrier_main`` (the carrier boundary).

Everything else — ``_step``, the blocking-flavour ``match_blocking`` /
``ensure_recvs`` / ``collective`` overrides, helpers — must stay
raise-only.  Limitations (documented, acceptable for a lint): methods
inherited from ``CoopEngine`` and free functions are out of scope, and
the check is per-method syntactic rather than call-graph reachability.
"""

from __future__ import annotations

import ast
from typing import List

from .core import Finding

CODE = "RL004"
NAME = "trampoline-blocking-call"

_ENGINE_CLASS = "GenEngine"
#: methods allowed to touch OS synchronisation (see module docstring)
SANCTIONED = {
    "__init__", "run", "_trampoline", "_hand_off",
    "_dispatch_carrier", "_carrier_main",
}
#: attribute calls that can park the calling OS thread
_BLOCKING_ATTRS = {"acquire", "join", "wait", "wait_for"}
#: modules whose objects have no business in unsanctioned trampoline code
_BANNED_MODULES = {"threading", "queue", "_thread", "multiprocessing"}
#: read-only queries on those modules that cannot park a thread
_NONBLOCKING_QUERIES = {"get_ident", "current_thread", "active_count",
                        "main_thread", "get_native_id"}


def applies(path: str) -> bool:
    return path.endswith("comm/engine.py")


def _chain_head(node: ast.AST) -> str:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class _MethodCheck(ast.NodeVisitor):
    def __init__(self, path: str, method: str, findings: List[Finding]):
        self.path = path
        self.method = method
        self.findings = findings

    def _emit(self, node: ast.AST, msg: str) -> None:
        self.findings.append(Finding(
            self.path, node.lineno, node.col_offset + 1, CODE,
            f"{_ENGINE_CLASS}.{self.method}: {msg}"))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            head = _chain_head(func)
            if func.attr in _BLOCKING_ATTRS:
                self._emit(node, f".{func.attr}() can park the trampoline "
                                 f"OS thread; suspension must be expressed "
                                 f"by raising _WouldBlock")
            elif head == "time" and func.attr == "sleep":
                self._emit(node, "time.sleep() blocks the trampoline; "
                                 "simulated time never needs real sleeps")
            elif head in _BANNED_MODULES \
                    and func.attr not in _NONBLOCKING_QUERIES:
                self._emit(node, f"{head}.{func.attr}() creates an OS "
                                 f"synchronisation primitive outside the "
                                 f"sanctioned carrier boundary")
        self.generic_visit(node)


def check(tree: ast.AST, src: str, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == _ENGINE_CLASS:
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if item.name in SANCTIONED:
                    continue
                _MethodCheck(path, item.name, findings).visit(item)
    findings.sort(key=lambda f: f.sort_key)
    return findings
