"""``repro-lint``: static enforcement of the simulator's invariants.

The repo's core guarantee — a run is a *pure function of (program, seed,
plan)*, bit-identical across runners and collective paths — rests on
coding invariants that example-based equivalence tests can only sample.
This package checks them on **every line** of the codebase with a
stdlib-``ast`` pass:

========  ==================================================================
RL001     no nondeterminism sources (wall clock, global RNG, ``os.urandom``,
          ``id()`` in orderings, iteration over unordered sets) in
          simulation code
RL002     no in-place mutation of buffers received from the communicator
          (``recv``/``waitall``/``sendrecv`` results are loaned, read-only
          views) inside ``allreduce/`` schemes
RL003     every dereference of the ``faults`` fault-state on the
          ``comm/network.py`` / ``comm/communicator.py`` hot paths is
          dominated by a ``faults is not None`` guard (the no-plan path
          must stay byte-identical to a plan-less network)
RL004     ``GenEngine`` trampoline code never blocks the trampoline OS
          thread (no ``acquire``/``wait``/``join``/``sleep``/``queue``
          outside the sanctioned yield points — suspension is expressed
          by raising ``_WouldBlock`` only)
========  ==================================================================

Run it as ``repro-lint [paths...]`` (console script) or
``python -m repro.analysis``.  Intentional exceptions carry an inline
suppression **with a reason**::

    t0 = time.process_time()  # repro-lint: ignore[RL001] -- wall-clock perf harness

A suppression without a reason is itself reported (RL000).  See
:mod:`repro.analysis.core` for the engine and the rule registry.

The static pass is paired with the *runtime* sanitizer mode
(``REPRO_SANITIZE=1`` / ``run_spmd(sanitize=True)``, see
:mod:`repro.comm.launcher`): loan-window write detection, an end-of-run
mailbox-leak audit and a schedule-perturbation race detector.
"""

from .core import ALL_RULES, Finding, lint_paths, lint_source

__all__ = ["ALL_RULES", "Finding", "lint_paths", "lint_source"]
