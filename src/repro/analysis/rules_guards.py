"""RL003 — fault-guard discipline on the communicator/network hot paths.

``Network.faults`` is ``None`` on every run without a fault plan, and the
no-plan path must stay byte-identical to a network that has never heard
of faults.  Any dereference of the fault state (``self.faults.crash_time``,
``f.is_lossy(...)``) that is not dominated by a ``faults is not None``
test therefore either crashes the common case or — worse — silently
institutionalises a fault-plan dependency in the hot path.

Scope: ``comm/network.py``, ``comm/communicator.py`` and
``serve/loop.py`` (the hot paths; the serving loop's fault-free dispatch
must stay a single ``faults is not None`` test).  The rule recognises as
a *fault expression* any attribute chain
ending in ``.faults`` / ``._faults``, the bare names ``faults`` /
``_faults`` (parameters), and local aliases bound from one
(``f = net.faults``).  A dereference is an attribute access **on** a
fault expression.  Dominating guards understood:

* ``if E is not None: ...`` (deref in the body) and its ``else`` dual;
* early-exit ``if E is None: return/raise/continue`` (derefs after);
* truthiness forms ``if E:`` / ``if not E: return``;
* short-circuits ``E is not None and E.x``, ``E is None or E.x``;
* conditional expressions ``E.x if E is not None else d``;
* ``assert E is not None``.

The pass is per-function and syntactic: a guard established in one
method does not carry into another (each method must re-check or state
its contract with a suppression).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .core import Finding

CODE = "RL003"
NAME = "unguarded-faults-deref"

_FAULT_ATTRS = {"faults", "_faults"}
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def applies(path: str) -> bool:
    return path.endswith(("comm/network.py", "comm/communicator.py",
                          "serve/loop.py"))


def _key(node: ast.AST) -> Optional[str]:
    """Dotted-name key for a plain Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _FuncCheck:
    def __init__(self, path: str, findings: List[Finding]):
        self.path = path
        self.findings = findings
        #: local names aliased to the fault state
        self.aliases: Set[str] = set()

    # -- fault-expression recognition ----------------------------------
    def _is_fault_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr in _FAULT_ATTRS:
            return True
        if isinstance(node, ast.Name) \
                and (node.id in _FAULT_ATTRS or node.id in self.aliases):
            return True
        return False

    # -- guard extraction ----------------------------------------------
    def _guards_if_true(self, test: ast.AST) -> Set[str]:
        """Fault-expr keys proven non-None when ``test`` is truthy."""
        out: Set[str] = set()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if isinstance(op, ast.IsNot) and _is_none(right) \
                    and self._is_fault_expr(left):
                k = _key(left)
                if k:
                    out.add(k)
        elif self._is_fault_expr(test):
            k = _key(test)
            if k:
                out.add(k)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            out |= self._guards_if_false(test.operand)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for v in test.values:
                out |= self._guards_if_true(v)
        return out

    def _guards_if_false(self, test: ast.AST) -> Set[str]:
        """Fault-expr keys proven non-None when ``test`` is falsy."""
        out: Set[str] = set()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if isinstance(op, ast.Is) and _is_none(right) \
                    and self._is_fault_expr(left):
                k = _key(left)
                if k:
                    out.add(k)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            out |= self._guards_if_true(test.operand)
        elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            # Or is falsy only if *every* value is falsy
            for v in test.values:
                out |= self._guards_if_false(v)
        return out

    # -- expression checking with short-circuit awareness ---------------
    def _check_expr(self, node: ast.AST, guarded: Set[str]) -> None:
        if isinstance(node, ast.BoolOp):
            g = set(guarded)
            for v in node.values:
                self._check_expr(v, g)
                g |= (self._guards_if_true(v)
                      if isinstance(node.op, ast.And)
                      else self._guards_if_false(v))
            return
        if isinstance(node, ast.IfExp):
            self._check_expr(node.test, guarded)
            self._check_expr(node.body,
                             guarded | self._guards_if_true(node.test))
            self._check_expr(node.orelse,
                             guarded | self._guards_if_false(node.test))
            return
        if isinstance(node, ast.Attribute) \
                and self._is_fault_expr(node.value):
            k = _key(node.value)
            if k is not None and k not in guarded:
                self.findings.append(Finding(
                    self.path, node.lineno, node.col_offset + 1, CODE,
                    f"'{k}.{node.attr}' dereferences the fault state "
                    f"without a dominating '{k} is not None' guard; the "
                    f"no-plan path must not crash or diverge"))
            return  # chain head checked; nothing deeper to visit
        for child in ast.iter_child_nodes(node):
            self._check_expr(child, guarded)

    # -- statement walk -------------------------------------------------
    @staticmethod
    def _terminates(body: List[ast.stmt]) -> bool:
        for s in body:
            if isinstance(s, _TERMINATORS):
                return True
            if isinstance(s, ast.If) and s.orelse \
                    and _FuncCheck._terminates(s.body) \
                    and _FuncCheck._terminates(s.orelse):
                return True
        return False

    def run(self, body: List[ast.stmt], guarded: Set[str]) -> None:
        for stmt in body:
            self._stmt(stmt, guarded)

    def _stmt(self, stmt: ast.stmt, guarded: Set[str]) -> None:
        if isinstance(stmt, ast.If):
            self._check_expr(stmt.test, guarded)
            gt = self._guards_if_true(stmt.test)
            gf = self._guards_if_false(stmt.test)
            self.run(stmt.body, guarded | gt)
            self.run(stmt.orelse, guarded | gf)
            # early-exit guard: `if E is None: return` dominates the rest
            if self._terminates(stmt.body):
                guarded |= gf
            if stmt.orelse and self._terminates(stmt.orelse):
                guarded |= gt
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.test, guarded)
            self.run(stmt.body, guarded | self._guards_if_true(stmt.test))
            self.run(stmt.orelse, set(guarded))
        elif isinstance(stmt, ast.Assert):
            self._check_expr(stmt.test, guarded)
            guarded |= self._guards_if_true(stmt.test)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value, guarded)
            if len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if self._is_fault_expr(stmt.value):
                    self.aliases.add(name)
                    if _key(stmt.value) in guarded:
                        guarded.add(name)
                    else:
                        guarded.discard(name)
                else:
                    self.aliases.discard(name)
                    guarded.discard(name)
        elif isinstance(stmt, ast.For):
            self._check_expr(stmt.iter, guarded)
            self.run(stmt.body, guarded)
            self.run(stmt.orelse, guarded)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._check_expr(item.context_expr, guarded)
            self.run(stmt.body, guarded)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body, set(guarded))
            for handler in stmt.handlers:
                self.run(handler.body, set(guarded))
            self.run(stmt.orelse, set(guarded))
            self.run(stmt.finalbody, set(guarded))
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            val = stmt.value
            if val is not None:
                self._check_expr(val, guarded)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if getattr(stmt, "value", None) is not None:
                self._check_expr(stmt.value, guarded)
        # nested defs get their own pass from check()


def check(tree: ast.AST, src: str, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FuncCheck(path, findings).run(node.body, set())
    findings.sort(key=lambda f: f.sort_key)
    return findings
