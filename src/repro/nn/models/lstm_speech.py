"""LSTM speech model for AN4 (Table 2 row 2: 27,569,568 parameters).

The paper does not spell the architecture out; we use a DeepSpeech-style
stack — input projection, stacked LSTM, framewise classifier — and choose
the hidden size so the full model lands within 0.06% of the paper's count:
``hidden=1067`` gives 27,554,399 parameters (documented in DESIGN.md).

The speech task itself is substituted: framewise phone classification on
synthetic filterbank-like sequences (see :mod:`repro.data.an4_like`), with
WER computed on collapsed framewise decodes — same code paths (recurrent
backprop, sequence batching, WER metric), no proprietary audio needed.
"""

from __future__ import annotations

import numpy as np

from ..activation import ReLU
from ..linear import Linear
from ..losses import SoftmaxCrossEntropy
from ..module import FlatModel, Module, Sequential
from ..rnn import LSTM

#: hidden size whose full model best approximates the paper's count
AN4_FULL_HIDDEN = 1067
PAPER_LSTM_PARAMS = 27_569_568


class LSTMSpeech(Module):
    """(B, T, F) float features -> (B, T, classes) framewise logits."""

    def __init__(self, features: int = 161, hidden: int = AN4_FULL_HIDDEN,
                 layers: int = 3, classes: int = 29, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stack = self.add_module(Sequential(
            Linear(features, hidden, rng=rng),
            ReLU(),
            LSTM(hidden, hidden, num_layers=layers, rng=rng),
            Linear(hidden, classes, rng=rng),
        ))

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.stack.forward(x, training)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return self.stack.backward(dy)


def lstm_speech_param_count(features: int = 161,
                            hidden: int = AN4_FULL_HIDDEN,
                            layers: int = 3, classes: int = 29) -> int:
    """Analytic count: input linear + ``layers`` LSTM layers (PyTorch
    convention, two bias vectors) + output linear."""
    total = features * hidden + hidden
    for _ in range(layers):
        total += 4 * hidden * (hidden + hidden + 2)
    total += hidden * classes + classes
    return total


def lstm_speech_flops(features: int = 161, hidden: int = AN4_FULL_HIDDEN,
                      layers: int = 3, classes: int = 29,
                      seq_len: int = 100) -> float:
    """Forward FLOPs per sample of length ``seq_len``."""
    per_step = 2.0 * features * hidden
    per_step += layers * 2.0 * 4 * hidden * (2 * hidden)
    per_step += 2.0 * hidden * classes
    return per_step * seq_len


def make_lstm_speech_model(features: int = 40, hidden: int = 64,
                           layers: int = 2, classes: int = 12,
                           seq_len: int = 20, seed: int = 0) -> FlatModel:
    """A width-reduced trainable instance (defaults sized for numpy)."""
    module = LSTMSpeech(features=features, hidden=hidden, layers=layers,
                        classes=classes, seed=seed)
    return FlatModel(module, SoftmaxCrossEntropy(),
                     flops_per_sample=lstm_speech_flops(
                         features, hidden, layers, classes, seq_len))
