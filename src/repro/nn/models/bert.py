"""BERT for masked-LM pre-training (Table 2 row 3: 133,547,324 parameters).

The paper's count is exactly BERT-base (vocab 30522, hidden 768, 12 layers,
12 heads, intermediate 3072, 512 positions, 2 token types) **plus** the
pooler, the NSP classifier and an *untied* MLM head:

    embeddings           23,837,184
    12 encoder layers    85,054,464
    pooler                  590,592
    NSP head                  1,538
    MLM head             24,063,546
    total               133,547,324   (= paper, exactly)

:func:`bert_base_param_count` reproduces that number analytically; the
runnable :class:`MiniBertLM` uses the same architecture at reduced scale
(pure-numpy training) with an MLM head only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..activation import GELU
from ..attention import TransformerEncoderLayer
from ..embedding import Embedding
from ..linear import Linear
from ..losses import SoftmaxCrossEntropy
from ..module import FlatModel, Module
from ..norm import LayerNorm

PAPER_BERT_PARAMS = 133_547_324


@dataclass(frozen=True)
class BertConfig:
    vocab: int = 30522
    hidden: int = 768
    layers: int = 12
    heads: int = 12
    intermediate: int = 3072
    max_seq: int = 512
    type_vocab: int = 2

    @classmethod
    def mini(cls) -> "BertConfig":
        """A numpy-trainable configuration for the proxy experiments."""
        return cls(vocab=1000, hidden=64, layers=2, heads=4,
                   intermediate=128, max_seq=64, type_vocab=2)


def bert_base_param_count(cfg: BertConfig = BertConfig()) -> int:
    """Analytic full-model count (embeddings + encoder + pooler + NSP +
    untied MLM head) — equals the paper's 133,547,324 at base config."""
    d, v = cfg.hidden, cfg.vocab
    emb = v * d + cfg.max_seq * d + cfg.type_vocab * d + 2 * d  # + LayerNorm
    layer = (
        3 * (d * d + d)            # Q, K, V
        + d * d + d                # attention output
        + 2 * (2 * d)              # two LayerNorms
        + d * cfg.intermediate + cfg.intermediate
        + cfg.intermediate * d + d
    )
    pooler = d * d + d
    nsp = d * 2 + 2
    mlm = (d * d + d) + 2 * d + (d * v + v)   # dense + LN + untied decoder
    return emb + cfg.layers * layer + pooler + nsp + mlm


class MiniBertLM(Module):
    """Runnable BERT-style masked language model.

    Token + position embeddings, ``layers`` pre-LN transformer blocks, and
    an MLM head (dense + GELU + LN + untied decoder).  Input: int token ids
    (B, T); output: logits (B, T, vocab).
    """

    def __init__(self, cfg: BertConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.cfg = cfg
        d = cfg.hidden
        self.tok = self.add_module(Embedding(cfg.vocab, d, rng=rng))
        self.pos = self.add_module(Embedding(cfg.max_seq, d, rng=rng))
        self.emb_ln = self.add_module(LayerNorm(d))
        self.blocks = [
            self.add_module(TransformerEncoderLayer(
                d, cfg.heads, cfg.intermediate, rng=rng))
            for _ in range(cfg.layers)
        ]
        self.head_dense = self.add_module(Linear(d, d, rng=rng))
        self.head_act = self.add_module(GELU())
        self.head_ln = self.add_module(LayerNorm(d))
        self.decoder = self.add_module(Linear(d, cfg.vocab, rng=rng))
        self._T = None

    def forward(self, ids: np.ndarray, training: bool = True) -> np.ndarray:
        B, T = ids.shape
        if T > self.cfg.max_seq:
            raise ValueError(f"sequence length {T} > max_seq {self.cfg.max_seq}")
        self._T = T
        positions = np.broadcast_to(np.arange(T, dtype=np.int64), (B, T))
        x = self.tok.forward(ids, training) + self.pos.forward(
            positions.copy(), training)
        x = self.emb_ln.forward(x, training)
        for blk in self.blocks:
            x = blk.forward(x, training)
        x = self.head_dense.forward(x, training)
        x = self.head_act.forward(x, training)
        x = self.head_ln.forward(x, training)
        return self.decoder.forward(x, training)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dy = self.decoder.backward(dy)
        dy = self.head_ln.backward(dy)
        dy = self.head_act.backward(dy)
        dy = self.head_dense.backward(dy)
        for blk in reversed(self.blocks):
            dy = blk.backward(dy)
        dy = self.emb_ln.backward(dy)
        self.pos.backward(dy)
        self.tok.backward(dy)
        return dy


def minibert_param_count(cfg: BertConfig) -> int:
    """Analytic count for the runnable :class:`MiniBertLM` architecture."""
    d, v = cfg.hidden, cfg.vocab
    emb = v * d + cfg.max_seq * d + 2 * d
    layer = (
        2 * (2 * d)                        # ln1, ln2
        + (d * 3 * d + 3 * d)              # fused qkv
        + d * d + d                        # attention projection
        + d * cfg.intermediate + cfg.intermediate
        + cfg.intermediate * d + d
    )
    head = (d * d + d) + 2 * d + (d * v + v)
    return emb + cfg.layers * layer + head


def bert_flops(cfg: BertConfig, seq_len: int) -> float:
    """Forward FLOPs per sequence (matmuls only)."""
    d, t = cfg.hidden, seq_len
    per_layer = (
        2.0 * t * d * 3 * d          # qkv
        + 2.0 * t * t * d            # scores
        + 2.0 * t * t * d            # context
        + 2.0 * t * d * d            # proj
        + 4.0 * t * d * cfg.intermediate
    )
    head = 2.0 * t * d * d + 2.0 * t * d * cfg.vocab
    return cfg.layers * per_layer + head


def make_bert_model(cfg: BertConfig | None = None, seq_len: int = 32,
                    seed: int = 0) -> FlatModel:
    cfg = cfg or BertConfig.mini()
    module = MiniBertLM(cfg, seed=seed)
    return FlatModel(module, SoftmaxCrossEntropy(ignore_index=-100),
                     flops_per_sample=bert_flops(cfg, seq_len))
