"""VGG-16 for CIFAR-10 (Table 2 row 1: 14,728,266 parameters).

The paper's count matches VGG-16 with batch normalization and a single
512 -> 10 classifier head on 32x32 inputs (five 2x2 max-pools reduce the
feature map to 1x1x512).  ``width_mult`` scales every channel count so the
same architecture trains quickly in pure numpy for the convergence
experiments; ``width_mult=1.0`` reproduces the paper's parameter count
exactly (verified in the Table 2 benchmark).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..conv import Conv2d
from ..activation import ReLU
from ..losses import SoftmaxCrossEntropy
from ..module import FlatModel, Flatten, Module, Sequential
from ..norm import BatchNorm2d
from ..pool import MaxPool2d
from ..linear import Linear

#: VGG-16 configuration: output channels, "M" = 2x2 max pool
VGG16_CFG: List[Union[int, str]] = [
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
    512, 512, 512, "M", 512, 512, 512, "M",
]

PAPER_VGG16_PARAMS = 14_728_266


def _channels(width_mult: float) -> List[Union[int, str]]:
    return [c if c == "M" else max(1, int(round(c * width_mult)))
            for c in VGG16_CFG]


def build_vgg16(num_classes: int = 10, width_mult: float = 1.0,
                in_channels: int = 3, batchnorm: bool = True,
                seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    cin = in_channels
    for c in _channels(width_mult):
        if c == "M":
            layers.append(MaxPool2d(2))
            continue
        layers.append(Conv2d(cin, c, 3, padding=1, rng=rng))
        if batchnorm:
            layers.append(BatchNorm2d(c))
        layers.append(ReLU())
        cin = c
    layers.append(Flatten())
    layers.append(Linear(cin, num_classes, rng=rng))
    return Sequential(*layers)


def vgg16_param_count(width_mult: float = 1.0, num_classes: int = 10,
                      in_channels: int = 3, batchnorm: bool = True) -> int:
    """Analytic parameter count of :func:`build_vgg16` (verified equal to
    the built model in the tests; equals 14,728,266 at full width)."""
    total = 0
    cin = in_channels
    for c in _channels(width_mult):
        if c == "M":
            continue
        total += (cin * 9 + 1) * c          # conv weights + bias
        if batchnorm:
            total += 2 * c                  # gamma + beta
        cin = c
    total += cin * num_classes + num_classes
    return total


def vgg16_flops(width_mult: float = 1.0, image_size: int = 32,
                in_channels: int = 3, num_classes: int = 10) -> float:
    """Approximate forward FLOPs per sample (2 x MACs)."""
    flops = 0.0
    cin = in_channels
    hw = image_size
    for c in _channels(width_mult):
        if c == "M":
            hw //= 2
            continue
        flops += 2.0 * cin * 9 * c * hw * hw
        cin = c
    flops += 2.0 * cin * num_classes
    return flops


def make_vgg16_model(num_classes: int = 10, width_mult: float = 1.0,
                     seed: int = 0) -> FlatModel:
    module = build_vgg16(num_classes=num_classes, width_mult=width_mult,
                         seed=seed)
    return FlatModel(module, SoftmaxCrossEntropy(),
                     flops_per_sample=vgg16_flops(width_mult))
