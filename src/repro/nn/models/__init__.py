"""The paper's three evaluation models (Table 2)."""

from .bert import (
    BertConfig,
    MiniBertLM,
    PAPER_BERT_PARAMS,
    bert_base_param_count,
    bert_flops,
    make_bert_model,
    minibert_param_count,
)
from .lstm_speech import (
    AN4_FULL_HIDDEN,
    LSTMSpeech,
    PAPER_LSTM_PARAMS,
    lstm_speech_flops,
    lstm_speech_param_count,
    make_lstm_speech_model,
)
from .vgg import (
    PAPER_VGG16_PARAMS,
    VGG16_CFG,
    build_vgg16,
    make_vgg16_model,
    vgg16_flops,
    vgg16_param_count,
)

__all__ = [
    "BertConfig", "MiniBertLM", "PAPER_BERT_PARAMS",
    "bert_base_param_count", "bert_flops", "make_bert_model",
    "minibert_param_count",
    "AN4_FULL_HIDDEN", "LSTMSpeech", "PAPER_LSTM_PARAMS",
    "lstm_speech_flops", "lstm_speech_param_count", "make_lstm_speech_model",
    "PAPER_VGG16_PARAMS", "VGG16_CFG", "build_vgg16", "make_vgg16_model",
    "vgg16_flops", "vgg16_param_count",
]
