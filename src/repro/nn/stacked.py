"""Rank-stacked execution of identical SPMD models.

Data-parallel ranks run the *same* model graph on different data shards,
so the per-rank fwd/bwd calls are P independent invocations of identical
numpy kernels.  :class:`StackedModel` binds P :class:`FlatModel` replicas
onto two shared ``(P, n)`` matrices (parameters and gradients) and runs
the whole world's fwd/bwd as single numpy calls with a rank-major leading
axis.  Every kernel used here is either elementwise, row-independent, or
a gufunc that loops the identical 2-D kernel per rank slice, so each
rank's slice of the result is bit-identical to what that rank's own
``loss_and_grad`` would have produced.

Weights: the SPMD invariant (identical init, identical allreduced
updates) makes every row of the parameter matrix bit-equal, so the
stacked forward reads rank 0's weight views.  :meth:`StackedModel.bind`
verifies the invariant once at bind time; callers must fall back to
per-rank execution whenever ranks diverge (faults, elastic shrink).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .losses import SoftmaxCrossEntropy
from .module import DTYPE, FlatModel, Module, Sequential


def _leaf_supported(layer: Module) -> bool:
    if layer._modules:
        return False
    return (hasattr(layer, "forward_stacked")
            or getattr(layer, "stacked_elementwise", False))


def supports_stacking(model) -> bool:
    """True when ``model`` is a FlatModel whose every layer (and loss) has
    a rank-stacked execution path."""
    if not isinstance(model, FlatModel):
        return False
    if type(model.loss) is not SoftmaxCrossEntropy:
        return False
    mod = model.module
    layers = mod.layers if isinstance(mod, Sequential) else [mod]
    return all(_leaf_supported(layer) for layer in layers)


class StackedModel:
    """P FlatModel replicas re-homed onto shared (P, n) matrices."""

    def __init__(self, models: Sequence[FlatModel]):
        self.models = list(models)
        m0 = self.models[0]
        nranks = len(self.models)
        n = m0.nparams
        self.pmat = np.empty((nranks, n), dtype=DTYPE)
        self.gmat = np.zeros((nranks, n), dtype=DTYPE)
        for r, m in enumerate(self.models):
            if m.nparams != n:
                raise ValueError("stacked models must have equal nparams")
            self.pmat[r, :] = m.params_flat
        # Check the SPMD invariant *before* rebinding so a rejected bind
        # leaves the models untouched.
        if not all(np.array_equal(self.pmat[r], self.pmat[0])
                   for r in range(1, nranks)):
            raise ValueError("SPMD invariant violated: rank parameter "
                             "vectors differ at bind time")
        for r, m in enumerate(self.models):
            m.rebind_storage(self.pmat[r], self.gmat[r])
        mod = m0.module
        self.layers = mod.layers if isinstance(mod, Sequential) else [mod]
        self.loss = m0.loss
        # per-layer stacked gradient views: Gmat[:, seg] reshaped to
        # (P,) + param.shape — valid strided views because each rank's
        # segment is row-contiguous.
        self.layer_grads: List[List[np.ndarray]] = []
        ofs = 0
        for layer in self.layers:
            views = []
            for p in layer._params:
                sl = slice(ofs, ofs + p.size)
                views.append(self.gmat[:, sl].reshape((nranks,)
                                                      + p.data.shape))
                ofs += p.size
            self.layer_grads.append(views)
        if ofs != n:
            raise ValueError("stacked layer segments do not cover the "
                             "flat vector (nested modules?)")

    @property
    def nranks(self) -> int:
        return len(self.models)

    def loss_and_grad(self, xs: np.ndarray, ys: np.ndarray
                      ) -> "tuple[np.ndarray, np.ndarray]":
        """World fwd/bwd over rank-stacked inputs ``(P, batch, ...)``.

        Returns ``(losses, gmat)`` where ``losses`` is float64 ``(P,)``
        and ``gmat`` the shared gradient matrix; row ``r`` of both is
        bit-identical to rank ``r``'s ``FlatModel.loss_and_grad``.
        """
        self.gmat[...] = 0.0
        x = xs
        for layer in self.layers:
            if getattr(layer, "stacked_elementwise", False):
                x = layer.forward(x, True)
            else:
                x = layer.forward_stacked(x)
        losses, dy = self.loss.forward_backward_stacked(x, ys)
        for layer, grads in zip(reversed(self.layers),
                                reversed(self.layer_grads)):
            if getattr(layer, "stacked_elementwise", False):
                dy = layer.backward(dy)
            else:
                dy = layer.backward_stacked(dy, grads)
        return losses, self.gmat
