"""Normalization layers: BatchNorm2d (VGG) and LayerNorm (BERT)."""

from __future__ import annotations

import numpy as np

from .module import Module


class BatchNorm2d(Module):
    """Per-channel batch normalization over (B, H, W) with running stats."""

    def __init__(self, num_features: int, *, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.c = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.add_param(np.ones(num_features), "gamma")
        self.beta = self.add_param(np.zeros(num_features), "beta")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv[None, :, None, None]
        self._cache = (xhat, inv, x.shape) if training else None
        return (self.gamma.data[None, :, None, None] * xhat
                + self.beta.data[None, :, None, None])

    def backward(self, dy: np.ndarray) -> np.ndarray:
        xhat, inv, shape = self._cache
        B, C, H, W = shape
        m = B * H * W
        self.gamma.grad += (dy * xhat).sum(axis=(0, 2, 3))
        self.beta.grad += dy.sum(axis=(0, 2, 3))
        dxhat = dy * self.gamma.data[None, :, None, None]
        s1 = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        s2 = (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (dxhat - s1 / m - xhat * s2 / m) * inv[None, :, None, None]
        return dx.astype(dy.dtype, copy=False)


class LayerNorm(Module):
    """Normalization over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = self.add_param(np.ones(dim), "gamma")
        self.beta = self.add_param(np.zeros(dim), "beta")
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean) * inv
        self._cache = (xhat, inv)
        return self.gamma.data * xhat + self.beta.data

    def backward(self, dy: np.ndarray) -> np.ndarray:
        xhat, inv = self._cache
        d = self.dim
        self.gamma.grad += (dy * xhat).reshape(-1, d).sum(axis=0)
        self.beta.grad += dy.reshape(-1, d).sum(axis=0)
        dxhat = dy * self.gamma.data
        s1 = dxhat.sum(axis=-1, keepdims=True)
        s2 = (dxhat * xhat).sum(axis=-1, keepdims=True)
        return ((dxhat - s1 / d - xhat * s2 / d) * inv).astype(
            dy.dtype, copy=False)
