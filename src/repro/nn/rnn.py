"""LSTM with full backpropagation through time.

PyTorch gate convention: ``[i, f, g, o]`` with two bias vectors (``b_ih``
and ``b_hh``), so parameter counts match ``torch.nn.LSTM`` exactly:
``4H(D + H + 2)`` per layer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .module import Module, xavier_uniform


class LSTMCellSequence(Module):
    """One LSTM layer unrolled over time: (B, T, D) -> (B, T, H)."""

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        D, H = input_size, hidden_size
        self.D, self.H = D, H
        self.W_ih = self.add_param(
            xavier_uniform(rng, (4 * H, D), D, H), "W_ih")
        self.W_hh = self.add_param(
            xavier_uniform(rng, (4 * H, H), H, H), "W_hh")
        self.b_ih = self.add_param(np.zeros(4 * H), "b_ih")
        self.b_hh = self.add_param(np.zeros(4 * H), "b_hh")
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        B, T, D = x.shape
        H = self.H
        h = np.zeros((B, H), dtype=np.float32)
        c = np.zeros((B, H), dtype=np.float32)
        hs = np.empty((B, T, H), dtype=np.float32)
        caches = []
        for t in range(T):
            gates = (x[:, t] @ self.W_ih.data.T + self.b_ih.data
                     + h @ self.W_hh.data.T + self.b_hh.data)
            i = _sigmoid(gates[:, :H])
            f = _sigmoid(gates[:, H:2 * H])
            g = np.tanh(gates[:, 2 * H:3 * H])
            o = _sigmoid(gates[:, 3 * H:])
            c_next = f * c + i * g
            tanh_c = np.tanh(c_next)
            h_next = o * tanh_c
            caches.append((h, c, i, f, g, o, tanh_c))
            h, c = h_next, c_next
            hs[:, t] = h
        self._cache = (x, caches)
        return hs

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, caches = self._cache
        B, T, D = x.shape
        H = self.H
        dx = np.zeros_like(x)
        dh_next = np.zeros((B, H), dtype=np.float32)
        dc_next = np.zeros((B, H), dtype=np.float32)
        for t in range(T - 1, -1, -1):
            h_prev, c_prev, i, f, g, o, tanh_c = caches[t]
            dh = dy[:, t] + dh_next
            do = dh * tanh_c
            dc = dc_next + dh * o * (1.0 - tanh_c ** 2)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            dgates = np.concatenate([
                di * i * (1 - i),
                df * f * (1 - f),
                dg * (1 - g ** 2),
                do * o * (1 - o),
            ], axis=1)
            self.W_ih.grad += dgates.T @ x[:, t]
            self.W_hh.grad += dgates.T @ h_prev
            s = dgates.sum(axis=0)
            self.b_ih.grad += s
            self.b_hh.grad += s
            dx[:, t] = dgates @ self.W_ih.data
            dh_next = dgates @ self.W_hh.data
        return dx


class LSTM(Module):
    """Stacked unidirectional LSTM."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 *, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers: List[LSTMCellSequence] = []
        for layer in range(num_layers):
            d = input_size if layer == 0 else hidden_size
            cell = LSTMCellSequence(d, hidden_size, rng=rng)
            self.add_module(cell)
            self.layers.append(cell)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for cell in self.layers:
            x = cell.forward(x, training)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for cell in reversed(self.layers):
            dy = cell.backward(dy)
        return dy


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))
