"""Losses: softmax cross-entropy for classification, sequence labelling
and masked language modelling (``ignore_index`` masks non-predicted
positions, as in BERT's MLM)."""

from __future__ import annotations

import numpy as np

from .module import Loss

IGNORE_INDEX = -100


def _log_softmax(x: np.ndarray) -> np.ndarray:
    m = x.max(axis=-1, keepdims=True)
    z = x - m
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


class SoftmaxCrossEntropy(Loss):
    """Mean cross entropy over valid targets.

    Accepts logits of shape (B, C) or (B, T, C) with integer targets of
    shape (B,) / (B, T); targets equal to ``ignore_index`` contribute
    neither loss nor gradient.
    """

    def __init__(self, ignore_index: int = IGNORE_INDEX):
        self.ignore_index = ignore_index

    def forward_backward(self, logits: np.ndarray,
                         targets: np.ndarray) -> tuple[float, np.ndarray]:
        orig_shape = logits.shape
        C = orig_shape[-1]
        flat = logits.reshape(-1, C)
        tgt = targets.reshape(-1)
        valid = tgt != self.ignore_index
        nvalid = int(valid.sum())
        if nvalid == 0:
            return 0.0, np.zeros(orig_shape, dtype=logits.dtype)
        logp = _log_softmax(flat[valid].astype(np.float64))
        rows = np.arange(nvalid)
        picked = tgt[valid].astype(np.int64)
        loss = float(-logp[rows, picked].mean())
        dflat = np.zeros_like(flat)
        probs = np.exp(logp)
        probs[rows, picked] -= 1.0
        dflat[valid] = (probs / nvalid).astype(logits.dtype)
        return loss, dflat.reshape(orig_shape)

    def forward_backward_stacked(
            self, logits: np.ndarray,
            targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rank-stacked loss: ``logits`` has a leading (P, ...) rank axis.

        Bit-identical per rank slice to :meth:`forward_backward`: the
        softmax is row-independent and the per-rank mean reduces over the
        same values in the same order.  Ranks with masked targets fall
        back to the per-rank path so the ``valid``-subset arithmetic stays
        untouched.
        """
        nranks = logits.shape[0]
        C = logits.shape[-1]
        tgt = targets.reshape(nranks, -1)
        if (tgt == self.ignore_index).any():
            pairs = [self.forward_backward(logits[r], targets[r])
                     for r in range(nranks)]
            losses = np.array([loss for loss, _ in pairs], dtype=np.float64)
            return losses, np.stack([d for _, d in pairs])
        M = tgt.shape[1]
        logp = _log_softmax(logits.reshape(-1, C).astype(np.float64))
        rows = np.arange(nranks * M)
        picked = tgt.reshape(-1).astype(np.int64)
        losses = -logp[rows, picked].reshape(nranks, M).mean(axis=1)
        probs = np.exp(logp)
        probs[rows, picked] -= 1.0
        dflat = (probs / M).astype(logits.dtype)
        return losses, dflat.reshape(logits.shape)
