"""Multi-head self-attention and the pre-LN transformer encoder block."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .activation import GELU
from .dropout import Dropout
from .linear import Linear
from .module import Module
from .norm import LayerNorm


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    m = x.max(axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / e.sum(axis=axis, keepdims=True)


class MultiHeadSelfAttention(Module):
    """(B, T, D) -> (B, T, D) with ``heads`` parallel attention heads."""

    def __init__(self, dim: int, heads: int, *,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim, self.heads = dim, heads
        self.dh = dim // heads
        self.qkv = self.add_module(Linear(dim, 3 * dim, rng=rng))
        self.proj = self.add_module(Linear(dim, dim, rng=rng))
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        B, T, D = x.shape
        h, dh = self.heads, self.dh
        qkv = self.qkv.forward(x, training)           # (B, T, 3D)
        qkv = qkv.reshape(B, T, 3, h, dh).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]               # (B, h, T, dh)
        scores = (q @ k.transpose(0, 1, 3, 2)) / np.sqrt(dh)  # (B,h,T,T)
        attn = _softmax(scores)
        ctx = attn @ v                                 # (B, h, T, dh)
        out = ctx.transpose(0, 2, 1, 3).reshape(B, T, D)
        self._cache = (q, k, v, attn)
        return self.proj.forward(out, training)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        q, k, v, attn = self._cache
        B, h, T, dh = q.shape
        D = self.dim
        dctx_flat = self.proj.backward(dy)             # (B, T, D)
        dctx = dctx_flat.reshape(B, T, h, dh).transpose(0, 2, 1, 3)
        dattn = dctx @ v.transpose(0, 1, 3, 2)         # (B, h, T, T)
        dv = attn.transpose(0, 1, 3, 2) @ dctx
        # softmax backward: ds = attn * (dattn - sum(dattn*attn))
        dscores = attn * (dattn - (dattn * attn).sum(axis=-1, keepdims=True))
        dscores /= np.sqrt(dh)
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        dqkv = np.stack([dq, dk, dv])                  # (3, B, h, T, dh)
        dqkv = dqkv.transpose(1, 3, 0, 2, 4).reshape(B, T, 3 * D)
        return self.qkv.backward(dqkv)


class TransformerEncoderLayer(Module):
    """Pre-LN block: ``x + MHSA(LN(x))`` then ``x + MLP(LN(x))``."""

    def __init__(self, dim: int, heads: int, mlp_dim: int, *,
                 dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.ln1 = self.add_module(LayerNorm(dim))
        self.attn = self.add_module(MultiHeadSelfAttention(dim, heads, rng=rng))
        self.ln2 = self.add_module(LayerNorm(dim))
        self.fc1 = self.add_module(Linear(dim, mlp_dim, rng=rng))
        self.act = self.add_module(GELU())
        self.fc2 = self.add_module(Linear(mlp_dim, dim, rng=rng))
        self.drop = self.add_module(Dropout(dropout, rng=rng))

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        a = self.attn.forward(self.ln1.forward(x, training), training)
        x = x + a
        m = self.fc1.forward(self.ln2.forward(x, training), training)
        m = self.act.forward(m, training)
        m = self.drop.forward(m, training)
        m = self.fc2.forward(m, training)
        return x + m

    def backward(self, dy: np.ndarray) -> np.ndarray:
        dm = self.fc2.backward(dy)
        dm = self.drop.backward(dm)
        dm = self.act.backward(dm)
        dm = self.fc1.backward(dm)
        dx = dy + self.ln2.backward(dm)
        da = self.attn.backward(dx)
        return dx + self.ln1.backward(da)
