"""Pure-numpy neural networks with manual backprop."""

from . import models
from .activation import GELU, ReLU, Sigmoid, Tanh
from .attention import MultiHeadSelfAttention, TransformerEncoderLayer
from .conv import Conv2d
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .losses import IGNORE_INDEX, SoftmaxCrossEntropy
from .module import (
    DTYPE,
    FlatModel,
    Flatten,
    Loss,
    Module,
    Parameter,
    Sequential,
)
from .norm import BatchNorm2d, LayerNorm
from .pool import MaxPool2d
from .rnn import LSTM, LSTMCellSequence

__all__ = [
    "models",
    "Module", "Parameter", "Sequential", "Flatten", "FlatModel", "Loss",
    "DTYPE",
    "Linear", "Conv2d", "MaxPool2d", "BatchNorm2d", "LayerNorm",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Dropout", "Embedding",
    "LSTM", "LSTMCellSequence",
    "MultiHeadSelfAttention", "TransformerEncoderLayer",
    "SoftmaxCrossEntropy", "IGNORE_INDEX",
]
