"""2-D convolution via im2col (vectorized, no Python loops over pixels)."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from .module import Module, kaiming_normal


def _out_size(h: int, k: int, stride: int, pad: int) -> int:
    return (h + 2 * pad - k) // stride + 1


@lru_cache(maxsize=512)
def im2col_indices(c: int, kh: int, kw: int, oh: int, ow: int,
                   stride: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather indices mapping padded input to (C*KH*KW, OH*OW) columns.

    Cached per layer geometry — these index grids were rebuilt from
    ``arange``/``repeat``/``tile`` on every forward *and* backward call,
    which showed up as one of the hottest lines of the VGG benchmarks.
    The cached arrays are write-locked so no caller can corrupt the cache.
    """
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(oh), ow)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(ow), oh)
    i = i0[:, None] + i1[None, :]
    j = j0[:, None] + j1[None, :]
    ch = np.repeat(np.arange(c), kh * kw)[:, None]
    for arr in (ch, i, j):
        arr.setflags(write=False)
    return ch, i, j


@lru_cache(maxsize=512)
def col2im_flat_indices(c: int, kh: int, kw: int, oh: int, ow: int,
                        stride: int, hp: int, wp: int) -> np.ndarray:
    """Flattened scatter indices of the im2col grid into a (C*HP*WP,)
    padded image, for the bincount-based column-to-image fold.
    """
    ch, i, j = im2col_indices(c, kh, kw, oh, ow, stride)
    flat = ((ch * hp + i) * wp + j).ravel()
    flat.setflags(write=False)
    return flat


class Conv2d(Module):
    """NCHW convolution with square-ish kernels, stride and zero padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 *, stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cin, self.cout = in_channels, out_channels
        self.k, self.stride, self.pad = kernel_size, stride, padding
        fan_in = in_channels * kernel_size * kernel_size
        self.W = self.add_param(
            kaiming_normal(rng, (out_channels, in_channels,
                                 kernel_size, kernel_size), fan_in), "W")
        self.b = self.add_param(np.zeros(out_channels), "b") if bias else None
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        B, C, H, W = x.shape
        k, s, p = self.k, self.stride, self.pad
        oh, ow = _out_size(H, k, s, p), _out_size(W, k, s, p)
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p else x
        ch, i, j = im2col_indices(C, k, k, oh, ow, s)
        cols = xp[:, ch, i, j]                      # (B, C*k*k, oh*ow)
        Wm = self.W.data.reshape(self.cout, -1)     # (F, C*k*k)
        out = np.einsum("fc,bcp->bfp", Wm, cols, optimize=True)
        if self.b is not None:
            out += self.b.data[None, :, None]
        self._cache = (x.shape, xp.shape, cols, (ch, i, j), (oh, ow))
        return out.reshape(B, self.cout, oh, ow)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_shape, xp_shape, cols, (ch, i, j), (oh, ow) = self._cache
        B = dy.shape[0]
        k, p = self.k, self.pad
        dyf = dy.reshape(B, self.cout, oh * ow)
        Wm = self.W.data.reshape(self.cout, -1)
        self.W.grad += np.einsum("bfp,bcp->fc", dyf, cols,
                                 optimize=True).reshape(self.W.data.shape)
        if self.b is not None:
            self.b.grad += dyf.sum(axis=(0, 2))
        dcols = np.einsum("fc,bfp->bcp", Wm, dyf, optimize=True)
        # Column-to-image fold via per-sample bincount over precomputed
        # flat indices: C-speed accumulation instead of np.add.at's
        # element-wise ufunc.at loop (the former hot line of the VGG
        # benchmarks).
        _, C, Hp, Wp = xp_shape
        flat = col2im_flat_indices(C, k, k, oh, ow, self.stride, Hp, Wp)
        per_image = C * Hp * Wp
        dxp = np.empty((B, per_image), dtype=dy.dtype)
        for b in range(B):
            dxp[b] = np.bincount(flat, weights=dcols[b].ravel(),
                                 minlength=per_image)
        dxp = dxp.reshape((B,) + xp_shape[1:])
        if p:
            return dxp[:, :, p:-p, p:-p]
        return dxp
