"""Elementwise activations with manual backprop."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module


class ReLU(Module):
    stacked_elementwise = True

    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype, copy=False)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return np.where(self._mask, dy, 0.0).astype(dy.dtype, copy=False)


class GELU(Module):
    """tanh approximation of GELU (as used in BERT)."""

    stacked_elementwise = True

    _C = np.sqrt(2.0 / np.pi).astype(np.float32) if hasattr(
        np.sqrt(2.0 / np.pi), "astype") else np.sqrt(2.0 / np.pi)

    def __init__(self):
        super().__init__()
        self._x: Optional[np.ndarray] = None
        self._t: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x ** 3)
        self._t = np.tanh(inner)
        return 0.5 * x * (1.0 + self._t)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, t = self._x, self._t
        dinner = self._C * (1.0 + 3 * 0.044715 * x ** 2)
        dgelu = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
        return (dy * dgelu).astype(dy.dtype, copy=False)


class Tanh(Module):
    stacked_elementwise = True

    def __init__(self):
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * (1.0 - self._y ** 2)


class Sigmoid(Module):
    stacked_elementwise = True

    def __init__(self):
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy * self._y * (1.0 - self._y)
