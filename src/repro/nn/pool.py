"""Max pooling (kernel == stride, the VGG configuration)."""

from __future__ import annotations

import numpy as np

from .module import Module


class MaxPool2d(Module):
    """Non-overlapping max pooling; requires H, W divisible by the kernel
    (VGG on 32x32 satisfies this at every stage)."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.k = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        B, C, H, W = x.shape
        k = self.k
        if H % k or W % k:
            raise ValueError(
                f"MaxPool2d(k={k}) needs H,W divisible by k, got {H}x{W}")
        xr = x.reshape(B, C, H // k, k, W // k, k)
        out = xr.max(axis=(3, 5))
        self._cache = (x.shape, xr, out)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_shape, xr, out = self._cache
        mask = (xr == out[:, :, :, None, :, None])
        # distribute gradient equally among tied maxima (rare for floats)
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = mask * (dy[:, :, :, None, :, None] / counts)
        return g.reshape(x_shape).astype(dy.dtype, copy=False)
