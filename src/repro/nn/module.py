"""Minimal neural-network module system with manual backpropagation.

Design rules (keep the math simple and the memory layout flat):

* every :class:`Module` implements ``forward(x, training)`` and
  ``backward(dy)``; ``backward`` *accumulates* into ``Parameter.grad``;
* parameters are float32; :class:`FlatModel` re-homes every parameter (and
  gradient) into one contiguous flat buffer so the distributed optimizers
  can treat the model as a single vector — mutating the flat vector mutates
  the layers' views and vice versa.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

DTYPE = np.float32


class Parameter:
    """A learnable tensor with its gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.ascontiguousarray(data, dtype=DTYPE)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class; subclasses register params/submodules as attributes."""

    def __init__(self):
        self._params: List[Parameter] = []
        self._modules: List["Module"] = []

    # registration ------------------------------------------------------
    def add_param(self, data: np.ndarray, name: str = "") -> Parameter:
        p = Parameter(data, name=f"{type(self).__name__}.{name}")
        self._params.append(p)
        return p

    def add_module(self, m: "Module") -> "Module":
        self._modules.append(m)
        return m

    def parameters(self) -> List[Parameter]:
        out = list(self._params)
        for m in self._modules:
            out.extend(m.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad[...] = 0.0

    def param_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # interface ----------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training)


class Sequential(Module):
    """Chain of modules; backward runs in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        for layer in layers:
            self.add_module(layer)

    @property
    def layers(self) -> List[Module]:
        return self._modules

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self._modules:
            x = layer.forward(x, training)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self._modules):
            dy = layer.backward(dy)
        return dy


class Flatten(Module):
    """(B, ...) -> (B, prod(...))."""

    def __init__(self):
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._shape)

    # rank-stacked execution: (P, B, ...) -> (P, B, prod(...))
    def forward_stacked(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward_stacked(self, dy: np.ndarray, grads: List[np.ndarray]
                         ) -> np.ndarray:
        return dy.reshape(self._shape)


# ---------------------------------------------------------------------------
# Initialization
# ---------------------------------------------------------------------------
def kaiming_normal(rng: np.random.Generator, shape: Sequence[int],
                   fan_in: int) -> np.ndarray:
    std = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def xavier_uniform(rng: np.random.Generator, shape: Sequence[int],
                   fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


# ---------------------------------------------------------------------------
# Flat view for distributed optimizers
# ---------------------------------------------------------------------------
class FlatModel:
    """Adapter: a module + loss as one flat parameter vector.

    Satisfies :class:`repro.train.TrainableModel`.  ``params_flat`` is the
    live storage of all layer weights (the optimizer mutates it in place).
    ``layout`` names each parameter's segment of the flat vector so the
    session-based allreduce (:meth:`repro.allreduce.GradientAllreduce.
    begin`) can consume per-layer gradients in backward order.
    """

    def __init__(self, module: Module, loss: "Loss",
                 flops_per_sample: float = 0.0):
        self.module = module
        self.loss = loss
        self._flops = float(flops_per_sample)
        params = module.parameters()
        n = sum(p.size for p in params)
        self._flat = np.empty(n, dtype=DTYPE)
        self._flat_grad = np.zeros(n, dtype=DTYPE)
        self._segment_names: List[str] = []
        self._segment_sizes: List[int] = []
        self._layout = None
        ofs = 0
        for i, p in enumerate(params):
            sl = slice(ofs, ofs + p.size)
            self._flat[sl] = p.data.ravel()
            p.data = self._flat[sl].reshape(p.data.shape)
            p.grad = self._flat_grad[sl].reshape(p.grad.shape)
            self._segment_names.append(p.name or f"param{i}")
            self._segment_sizes.append(p.size)
            ofs += p.size

    def rebind_storage(self, flat: np.ndarray, grad: np.ndarray) -> None:
        """Re-home the parameter/gradient storage onto caller-owned buffers.

        The caller is responsible for having copied the current parameter
        values into ``flat`` beforehand; ``grad`` contents are irrelevant
        (``loss_and_grad`` zeroes them).  Used by the rank-batched executor
        to place every rank's vector as one row of a shared ``(P, n)``
        matrix, so stacked math and per-rank views address the same memory.
        """
        if flat.shape != self._flat.shape or grad.shape != self._flat_grad.shape:
            raise ValueError("rebind_storage: shape mismatch")
        self._flat = flat
        self._flat_grad = grad
        ofs = 0
        for p in self.module.parameters():
            sl = slice(ofs, ofs + p.size)
            p.data = flat[sl].reshape(p.data.shape)
            p.grad = grad[sl].reshape(p.grad.shape)
            ofs += p.size

    @property
    def layout(self):
        """The flat vector's named parameter segments (ParamLayout)."""
        if self._layout is None:
            from ..allreduce.session import ParamLayout
            self._layout = ParamLayout.from_sizes(self._segment_sizes,
                                                  self._segment_names)
        return self._layout

    # TrainableModel protocol -------------------------------------------
    @property
    def nparams(self) -> int:
        return self._flat.size

    @property
    def params_flat(self) -> np.ndarray:
        return self._flat

    @property
    def grad_flat(self) -> np.ndarray:
        return self._flat_grad

    def loss_and_grad(self, x: np.ndarray,
                      y: np.ndarray) -> tuple[float, np.ndarray]:
        self._flat_grad[...] = 0.0
        out = self.module.forward(x, training=True)
        loss, dout = self.loss.forward_backward(out, y)
        self.module.backward(dout)
        return loss, self._flat_grad.copy()

    def train_flops(self, batch_size: int) -> float:
        # forward + backward ~ 3x forward cost
        return 3.0 * self._flops * batch_size

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.module.forward(x, training=False)

    def eval_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        out = self.module.forward(x, training=False)
        loss, _ = self.loss.forward_backward(out, y)
        return loss


class Loss:
    """Loss interface: returns (scalar loss, gradient wrt input)."""

    def forward_backward(self, out: np.ndarray,
                         y: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError
