"""Token / positional embeddings."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module


class Embedding(Module):
    """Lookup table: int ids (B, T) -> vectors (B, T, D)."""

    def __init__(self, vocab: int, dim: int, *,
                 rng: Optional[np.random.Generator] = None,
                 init_std: float = 0.02):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.vocab, self.dim = vocab, dim
        self.W = self.add_param(
            rng.normal(0, init_std, size=(vocab, dim)).astype(np.float32),
            "W")
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray, training: bool = True) -> np.ndarray:
        if ids.dtype.kind not in "iu":
            raise TypeError("Embedding expects integer ids")
        self._ids = ids
        return self.W.data[ids]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        np.add.at(self.W.grad, self._ids.reshape(-1),
                  dy.reshape(-1, self.dim))
        return np.zeros(self._ids.shape + (0,), dtype=dy.dtype)  # no dx
