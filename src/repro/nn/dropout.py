"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module


class Dropout(Module):
    def __init__(self, p: float = 0.5, *,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask
