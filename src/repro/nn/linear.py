"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .module import Module, kaiming_normal


class Linear(Module):
    """``y = x @ W^T + b`` over the last axis (supports (B, D) and
    (B, T, D) inputs)."""

    def __init__(self, in_features: int, out_features: int, *,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.W = self.add_param(
            kaiming_normal(rng, (out_features, in_features), in_features), "W")
        self.b = self.add_param(np.zeros(out_features), "b") if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._x = x
        y = x @ self.W.data.T
        if self.b is not None:
            y += self.b.data
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        x2 = x.reshape(-1, self.in_features)
        dy2 = dy.reshape(-1, self.out_features)
        self.W.grad += dy2.T @ x2
        if self.b is not None:
            self.b.grad += dy2.sum(axis=0)
        return (dy2 @ self.W.data).reshape(x.shape)

    # rank-stacked execution ---------------------------------------------
    # One gufunc matmul over the (P, ...) rank axis runs the identical 2-D
    # GEMM per rank slice, so results are bit-equal to P per-rank calls.
    def forward_stacked(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.W.data.T
        if self.b is not None:
            y += self.b.data
        return y

    def backward_stacked(self, dy: np.ndarray,
                         grads: list) -> np.ndarray:
        x = self._x
        nranks = x.shape[0]
        x2 = x.reshape(nranks, -1, self.in_features)
        dy2 = dy.reshape(nranks, -1, self.out_features)
        if dy2.shape[1] == 1:
            # Per-rank batch of one: the weight gradient is a pure outer
            # product — a broadcast multiply computes the identical single
            # product per element several times faster than the batched
            # GEMM (matmul's pathological K=1 case).
            gw = dy2.reshape(nranks, self.out_features, 1) * x2
        else:
            gw = np.matmul(dy2.transpose(0, 2, 1), x2)
        gW = grads[0]
        for r in range(nranks):
            # per-slice adds hit the contiguous fast path the whole-array
            # strided += misses (the rank axis strides across the shared
            # gradient matrix)
            gW[r] += gw[r]
        if self.b is not None:
            grads[1] += dy2.sum(axis=1)
        return np.matmul(dy2, self.W.data).reshape(x.shape)
