"""Session-based bucketed allreduce: push per-layer gradients, reduce in
buckets, account communication/computation overlap generically.

The one-shot :meth:`GradientAllreduce.reduce` treats the gradient as a
single monolithic flat vector, which forces the whole backward pass to
finish before any communication starts.  Real systems (SparCML's
stream-fused collectives, bucketed sparse reducers) exchange gradients in
*layer buckets* as backpropagation produces them, so communication of the
late layers overlaps computation of the early ones.  This module provides
the pieces of that execution model:

* :class:`ParamLayout` — named, contiguous parameter segments of a flat
  model vector (:attr:`repro.nn.FlatModel.layout` builds one per layer
  parameter);
* bucket fusion — consecutive segments, in **push order** (reverse layout
  order: backward emits the last layer first), are fused into buckets of at
  least ``bucket_size`` words (``None`` = everything in one bucket);
* :func:`split_k` — the paper-order sparsification budget: the global ``k``
  is split across buckets proportionally to bucket length (largest
  remainder, deterministic);
* :class:`ReduceSession` — created by :meth:`GradientAllreduce.begin`;
  accepts ``push(segment, grad)`` calls as backward emits per-layer
  gradients and runs the scheme when buckets complete.  Two execution
  paths:

  - **delegating adapter** (every scheme, and the default when
    ``bucket_size`` is ``None``): pushes are concatenated into the flat
    accumulator and the scheme's one-shot ``_reduce`` runs at
    :meth:`ReduceSession.finish` — *bit-identical* results, traffic and
    simulated makespans to :meth:`GradientAllreduce.reduce`;
  - **native bucketed path** (schemes with ``bucketable = True`` and a
    multi-bucket plan): each bucket is reduced independently — eagerly,
    the moment its last segment is pushed — with its proportional ``k``
    share, and :meth:`ReduceSession.finish` merges the per-bucket results
    back into one :class:`AllreduceResult`.  Each reduction receives a
    :class:`BucketView` locating the bucket inside the full gradient;
    stateless schemes ignore it, while Ok-Topk reads its shared periodic
    state (thresholds, consensus boundaries) through it so per-bucket
    execution never thrashes the full-gradient estimates (see
    :mod:`repro.allreduce.oktopk`);

* :class:`BucketStat` / :func:`visible_comm_time` — the generic overlap
  timeline.  Every bucket records the fraction of the backward pass that
  had completed when it was pushed (``release_frac``); the trainer replays
  the buckets' communication against those release times to compute the
  communication that remains *visible* after overlapping with outstanding
  backward compute.  ``release_frac = 0.0`` (schemes declaring
  ``overlap_from_start``, i.e. DenseOvlp) reproduces the legacy trainer
  credit ``max(0, comm - f * compute)`` exactly; ``release_frac = 1.0``
  (a one-shot reduction, which needs the full gradient) yields no credit.

Streaming execution (``stream=True``)
-------------------------------------

The replay above is *accounting only*: on the simulated clock the bucket
reductions still run after the backward lump, so their messages never
contend with anything else during backward.  A session opened with
``stream=True`` instead runs each native bucket reduction inside an
:class:`repro.comm.AsyncRegion` **at the rank's current simulated time**:
the caller charges backward compute incrementally between pushes (the
trainer's pacer), so when a bucket's last segment arrives the clock *is*
the bucket's release time, its messages book egress/ingress links right
there — contending against any other traffic in flight — and the clock
then rewinds to the backward timeline (the NIC progresses the reduction
off the critical path).  :meth:`ReduceSession.finish` joins the
outstanding bucket completions (``max`` over their comm-finish times) and
only then charges the selection (sparsification) cost, mirroring the
analytic convention that keeps sparsification serial.  Under zero
contention — no foreign traffic, buckets spaced wider than their
communication — the streamed timeline reproduces the analytic
:func:`visible_comm_time` replay (same releases, same uncontended
durations).  Under contention the two genuinely diverge, in either
direction: links pipeline at message granularity (a bucket's first hop
starts as soon as the egress link frees, before its predecessor's final
delivery — earlier than the serial replay), but multi-round collectives
interleaving on shared links also suffer head-of-line blocking the
analytic model cannot see (a forwarding round waits on both its data
dependency and a link busy with the other bucket), which can push the
last finish past the idealized clean-link serial replay.  Resolving that
is the whole point of running the events.  Per-bucket issue and
comm-finish times land in ``BucketStat.info["t_issue"]`` /
``["t_comm_finish"]``.

A session opened with ``stream=True`` that cannot stream — the scheme is
not ``bucketable``, or the plan collapsed to one bucket — falls back to
the post-backward delegating adapter.  The fallback is **recorded** so
benchmark readers cannot misattribute analytic numbers to streaming: the
delegated bucket's ``BucketStat.info["stream_fallback"]`` is set (the
trainer mirrors it into ``IterationRecord.stream_fallback``), and a
one-time ``RuntimeWarning`` is emitted when a multi-bucket plan was
requested for a non-bucketable scheme.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError
from ..sparse import COOVector
from ..sparse.coo import INDEX_DTYPE, VALUE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..comm import SimComm
    from .base import AllreduceResult, GradientAllreduce

#: scheme names already warned about falling back from stream=True to the
#: delegating adapter (one warning per scheme per process is enough)
_STREAM_FALLBACK_WARNED: set = set()


# ---------------------------------------------------------------------------
# Parameter layouts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParamSegment:
    """One named contiguous slice of the flat parameter vector."""

    index: int      # position in layout (forward) order
    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    @property
    def sl(self) -> slice:
        return slice(self.offset, self.end)


class ParamLayout:
    """An ordered partition of a flat vector into named segments.

    Segment order is *layout* (forward) order: segment 0 starts at offset
    0.  Backward emits gradients in reverse layout order, which is the
    push order sessions expect.
    """

    def __init__(self, segments: Sequence[ParamSegment]):
        if not segments:
            raise ConfigError("ParamLayout needs at least one segment")
        ofs = 0
        for i, seg in enumerate(segments):
            if seg.index != i or seg.offset != ofs or seg.size < 1:
                raise ConfigError(
                    f"segment {i} ({seg.name!r}) breaks the contiguous "
                    f"layout at offset {ofs}")
            ofs = seg.end
        self.segments: tuple = tuple(segments)
        self.n = ofs

    # ------------------------------------------------------------------
    @classmethod
    def from_sizes(cls, sizes: Sequence[int],
                   names: Optional[Sequence[str]] = None) -> "ParamLayout":
        names = (list(names) if names is not None
                 else [f"seg{i}" for i in range(len(sizes))])
        if len(names) != len(sizes):
            raise ConfigError("sizes and names must have the same length")
        segs, ofs = [], 0
        for i, (sz, nm) in enumerate(zip(sizes, names)):
            segs.append(ParamSegment(i, nm, ofs, int(sz)))
            ofs += int(sz)
        return cls(segs)

    @classmethod
    def single(cls, n: int, name: str = "flat") -> "ParamLayout":
        """The trivial layout: one segment covering everything."""
        return cls([ParamSegment(0, name, 0, int(n))])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    def __getitem__(self, i: int) -> ParamSegment:
        return self.segments[i]

    def push_order(self) -> List[ParamSegment]:
        """Segments in the order backward emits them (reverse layout)."""
        return list(reversed(self.segments))

    def fuse(self, bucket_size: Optional[int]) -> List[List[ParamSegment]]:
        """Fuse consecutive push-order segments into buckets.

        A bucket closes once it has accumulated at least ``bucket_size``
        words; ``None`` fuses everything into a single bucket.  Each
        bucket covers a contiguous range of the flat vector (consecutive
        push-order segments are adjacent).
        """
        order = self.push_order()
        if bucket_size is None:
            return [order]
        if bucket_size < 1:
            raise ConfigError(f"bucket_size must be >= 1, got {bucket_size}")
        buckets: List[List[ParamSegment]] = []
        cur: List[ParamSegment] = []
        words = 0
        for seg in order:
            cur.append(seg)
            words += seg.size
            if words >= bucket_size:
                buckets.append(cur)
                cur, words = [], 0
        if cur:
            buckets.append(cur)
        return buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParamLayout(n={self.n}, segments={len(self.segments)})"


# ---------------------------------------------------------------------------
# k allocation across buckets
# ---------------------------------------------------------------------------
def split_k(k: int, lengths: Sequence[int]) -> List[int]:
    """Split a global top-k budget proportionally to bucket lengths.

    Largest-remainder rounding so the shares sum exactly to ``k``
    (deterministic: remainder ties break toward earlier buckets).  When
    ``k >= len(lengths)`` every bucket gets at least 1, mirroring
    ``resolve_k``'s floor of one selected element.
    """
    lens = np.asarray(lengths, dtype=np.float64)
    if lens.size == 0:
        return []
    total = float(lens.sum())
    k = min(int(k), int(total))
    quota = k * lens / total
    base = np.floor(quota).astype(np.int64)
    rem = k - int(base.sum())
    if rem > 0:
        frac_order = np.argsort(-(quota - base), kind="stable")
        base[frac_order[:rem]] += 1
    if k >= lens.size:
        # steal from the largest allocations to lift zeros to one
        for i in np.flatnonzero(base == 0):
            donor = int(np.argmax(base))
            if base[donor] <= 1:
                break
            base[donor] -= 1
            base[i] = 1
    return [int(b) for b in base]


# ---------------------------------------------------------------------------
# Bucket context handed to native per-bucket reductions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BucketView:
    """Where a session bucket sits inside the full gradient.

    Passed by the native path to :meth:`GradientAllreduce._reduce_bucket`
    alongside the bucket slice ``acc[lo:hi]``.  Stateless schemes ignore
    it; schemes with full-gradient periodic state (Ok-Topk) use it to read
    that state and to see the data pushed so far.  Because pushes arrive
    in reverse layout order and a bucket runs the moment its last segment
    lands, the pushed region is exactly the suffix ``[lo, n)`` —
    :attr:`pushed` exposes it.  ``final`` marks the last *funded* bucket
    of the plan (zero-budget buckets are skipped and never run), i.e. the
    point where the whole gradient is available.
    """

    lo: int
    hi: int
    n: int
    index: int
    nbuckets: int
    final: bool
    acc: np.ndarray

    @property
    def pushed(self) -> np.ndarray:
        """The segments pushed so far (suffix of the flat gradient)."""
        return self.acc[self.lo:]


# ---------------------------------------------------------------------------
# Per-bucket accounting
# ---------------------------------------------------------------------------
@dataclass
class BucketStat:
    """Per-bucket breakdown of one session, in push order.

    ``release_frac`` is the fraction of the backward pass (measured in
    parameter mass) already emitted when this bucket's reduction could
    start: 1.0 for a one-shot reduction (needs the full gradient), 0.0
    for schemes that declare their communication overlappable with the
    whole backward (DenseOvlp's legacy contract).
    """

    lo: int
    hi: int
    nsegments: int
    release_frac: float
    k: Optional[int] = None
    comm_time: float = 0.0
    sparsify_time: float = 0.0
    words_recv: int = 0
    selected: Optional[int] = None
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def words(self) -> int:
        return self.hi - self.lo


def visible_comm_time(bucket_stats: Optional[Sequence[BucketStat]],
                      compute_time: float, overlap_fraction: float,
                      total_comm_time: float) -> float:
    """Communication left visible after overlapping with backward compute.

    Replays the buckets' communication (serialized, one NIC) against their
    release times.  Bucket ``b`` becomes available once the backward work
    it still overlaps with is the outstanding remainder:
    ``T_b = compute * (1 - f * (1 - release_frac_b))`` where ``f`` is the
    overlappable fraction of compute (the trainer's
    ``overlap_backward_fraction``; forward compute never overlaps).  Its
    communication starts at ``max(T_b, previous bucket's finish)``; what
    extends past ``compute_time`` is visible.  Communication not
    attributed to any bucket is charged unoverlapped.

    Degenerate cases reproduce the legacy trainer exactly: a single bucket
    with ``release_frac = 1`` returns ``total_comm_time``; buckets all at
    ``release_frac = 0`` return ``max(0, comm - f * compute)``.
    """
    if not bucket_stats:
        return total_comm_time
    f = min(max(float(overlap_fraction), 0.0), 1.0)
    finish = 0.0
    accounted = 0.0
    for st in bucket_stats:
        frac = min(max(st.release_frac, 0.0), 1.0)
        release = compute_time * (1.0 - f * (1.0 - frac))
        finish = max(finish, release) + st.comm_time
        accounted += st.comm_time
    unattributed = max(0.0, total_comm_time - accounted)
    return max(0.0, finish - compute_time) + unattributed


# ---------------------------------------------------------------------------
# The session itself
# ---------------------------------------------------------------------------
class ReduceSession:
    """One bucketed gradient allreduce, fed by per-layer ``push`` calls.

    Created by :meth:`GradientAllreduce.begin`.  Pushes must arrive in
    push order (reverse layout order — the order backward emits layer
    gradients), each segment exactly once; :meth:`finish` returns the
    familiar :class:`AllreduceResult` with ``bucket_stats`` filled in.

    Execution is SPMD-deterministic: all ranks share the model layout, so
    they push the same segment sequence and the native path's per-bucket
    collectives match up across ranks.
    """

    def __init__(self, scheme: "GradientAllreduce", comm: "SimComm",
                 layout: ParamLayout, t: int, *,
                 bucket_size: Optional[int] = None, stream: bool = False):
        if t < 1:
            # 1-based iterations are a hard contract: periodic schemes
            # (Ok-Topk) key their tau/tau_prime schedules off t - 1.
            raise ConfigError(f"iteration t must be >= 1, got {t}")
        self.scheme = scheme
        self.comm = comm
        self.layout = layout
        self.t = t
        self.bucket_size = bucket_size
        self.stream = bool(stream)
        #: latest comm-finish time over async bucket reductions (stream)
        self._outstanding = 0.0
        #: selection time deferred off the async regions, charged at finish
        self._deferred_sparsify = 0.0
        self._plan = layout.fuse(bucket_size)
        self._native = bool(scheme.bucketable) and len(self._plan) > 1
        # flattened push order + the bucket each position closes
        self._sequence: List[ParamSegment] = [
            seg for bucket in self._plan for seg in bucket]
        self._closes: Dict[int, int] = {}
        pos = 0
        for b, bucket in enumerate(self._plan):
            pos += len(bucket)
            self._closes[pos - 1] = b
        self._pos = 0
        self._emitted = 0            # parameter mass pushed so far
        # Allocated on first push (np.empty is enough: finish() requires
        # every segment pushed, so every word is written before read);
        # run_session adopts the caller's buffer instead.
        self._acc: Optional[np.ndarray] = None
        self._partials: List[tuple] = []      # (lo, hi, AllreduceResult)
        self.bucket_stats: List[BucketStat] = []
        self._finished = False
        if self._native:
            k_total = scheme.resolve_k(layout.n)
            lengths = [sum(s.size for s in b) for b in self._plan]
            self._bucket_k = (split_k(k_total, lengths)
                              if scheme.sparse else [None] * len(self._plan))
            funded = [b for b, kb in enumerate(self._bucket_k)
                      if kb is None or kb > 0]
            # split_k hands out at least one positive share (k >= 1), so
            # the plan always has a final funded bucket.
            self._last_funded = funded[-1]
        #: stream=True that cannot stream: the delegating adapter runs
        #: post-backward, so the timings are analytic, not discrete-event.
        self.stream_fallback = self.stream and not self._native
        if (self.stream and not scheme.bucketable and len(self._plan) > 1
                and scheme.name not in _STREAM_FALLBACK_WARNED):
            _STREAM_FALLBACK_WARNED.add(scheme.name)
            warnings.warn(
                f"scheme {scheme.name!r} is not bucketable: stream=True "
                f"falls back to the post-backward delegating adapter (no "
                f"discrete-event overlap; timings are analytic)",
                RuntimeWarning, stacklevel=3)
        comm.phase_times(reset=True)

    # ------------------------------------------------------------------
    @property
    def nbuckets(self) -> int:
        return len(self._plan)

    def push(self, segment: Union[ParamSegment, int],
             grad: np.ndarray) -> None:
        """Feed one segment's accumulated gradient (backward order)."""
        if self._finished:
            raise RuntimeError("push() after finish()")
        if self._pos >= len(self._sequence):
            raise ValueError("all segments already pushed")
        expect = self._sequence[self._pos]
        seg = (self.layout[segment] if isinstance(segment, (int, np.integer))
               else segment)
        if seg.index != expect.index:
            raise ValueError(
                f"out-of-order push: got segment {seg.index} "
                f"({seg.name!r}), expected {expect.index} ({expect.name!r}) "
                f"— sessions consume reverse layout (backward) order")
        grad = np.asarray(grad, dtype=VALUE_DTYPE).ravel()
        if grad.size != seg.size:
            raise ValueError(
                f"segment {seg.name!r} expects {seg.size} words, "
                f"got {grad.size}")
        if self._acc is None:
            self._acc = np.empty(self.layout.n, dtype=VALUE_DTYPE)
        acc = self._acc
        if grad.ctypes.data != acc.ctypes.data + seg.offset * acc.itemsize:
            # Skip the memcpy when the push is already a view of our
            # accumulator (run_session adopts the caller's buffer).
            acc[seg.sl] = grad
        self._emitted += seg.size
        bucket_idx = self._closes.get(self._pos)
        self._pos += 1
        if self._native and bucket_idx is not None:
            self._run_bucket(bucket_idx)

    def finish(self) -> "AllreduceResult":
        """Complete the session; returns the merged AllreduceResult.

        In streaming mode this is where the rank *waits for outstanding
        buckets*: the clock joins the latest in-flight comm-finish time,
        then the deferred selection cost is charged (serial, mirroring
        the analytic timeline's convention).
        """
        if self._finished:
            raise RuntimeError("finish() called twice")
        if self._pos != len(self._sequence):
            missing = [s.name for s in self._sequence[self._pos:]]
            raise ValueError(f"session incomplete; missing {missing}")
        self._finished = True
        if self._native:
            result = self._merge()
        else:
            result = self._delegate()
        if self.stream:
            self.comm._advance_clock(self._outstanding)
            if self._deferred_sparsify > 0.0:
                self.comm.compute(self._deferred_sparsify)
        result.phase_times = self.comm.phase_times(reset=True)
        result.bucket_stats = self.bucket_stats
        return result

    # ------------------------------------------------------------------
    # Delegating adapter: one-shot reduce at finish (bit-identical)
    # ------------------------------------------------------------------
    def _delegate(self) -> "AllreduceResult":
        comm = self.comm
        clock0, recv0 = comm.clock, int(comm.net.words_recv[comm.slot])
        result = self.scheme._reduce(comm, self._acc, self.t)
        phases = comm.phase_times()
        from .base import PHASE_COMM, PHASE_SPARSIFY
        release = 0.0 if (self.scheme.overlap_from_start
                          or result.overlappable) else 1.0
        info: Dict[str, Any] = {"delegated": True,
                                "clock_delta": comm.clock - clock0}
        if self.stream_fallback:
            info["stream_fallback"] = True
        self.bucket_stats.append(BucketStat(
            lo=0, hi=self.layout.n, nsegments=len(self.layout),
            release_frac=release,
            comm_time=phases.get(PHASE_COMM, 0.0),
            sparsify_time=phases.get(PHASE_SPARSIFY, 0.0),
            words_recv=int(comm.net.words_recv[comm.slot]) - recv0,
            selected=result.info.get(
                "selected", result.info.get("selected_local")),
            info=info,
        ))
        return result

    # ------------------------------------------------------------------
    # Native path: reduce each bucket eagerly as it completes
    # ------------------------------------------------------------------
    def _run_bucket(self, b: int) -> None:
        from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult
        comm = self.comm
        bucket = self._plan[b]
        lo = min(s.offset for s in bucket)
        hi = max(s.end for s in bucket)
        k_b = self._bucket_k[b]
        release = (0.0 if self.scheme.overlap_from_start
                   else self._emitted / self.layout.n)
        if k_b is not None and k_b == 0:
            # split_k legally hands out zero-budget buckets when
            # k < nbuckets, but resolve_k floors every reduction at one
            # selected element — a scheme must never see k=0.  The bucket
            # is skipped outright: nothing selected, nothing sent, an
            # empty partial (deterministic across ranks, which all compute
            # the same split).
            res = AllreduceResult(
                update=COOVector(hi - lo, np.empty(0, INDEX_DTYPE),
                                 np.empty(0, VALUE_DTYPE)),
                contributed_indices=np.empty(0, INDEX_DTYPE),
                info={"k": 0, "selected": 0, "skipped_zero_k": True})
            self._partials.append((lo, hi, res))
            self.bucket_stats.append(BucketStat(
                lo=lo, hi=hi, nsegments=len(bucket), release_frac=release,
                k=0, selected=0, info=dict(res.info)))
            return
        phases0 = comm.phase_times()
        recv0 = int(comm.net.words_recv[comm.slot])
        view = BucketView(lo=lo, hi=hi, n=self.layout.n, index=b,
                          nbuckets=self.nbuckets,
                          final=(b == self._last_funded), acc=self._acc)
        if self.stream:
            # Issue the reduction *now*, at the rank's mid-backward clock:
            # its messages book (and contend for) links at this simulated
            # time, while the rank's own timeline continues backward.
            with comm.async_region() as region:
                res = self.scheme._reduce_bucket(comm, self._acc[lo:hi],
                                                 self.t, k=k_b, view=view)
        else:
            region = None
            res = self.scheme._reduce_bucket(comm, self._acc[lo:hi], self.t,
                                             k=k_b, view=view)
        phases1 = comm.phase_times()
        if res.overlappable:
            release = 0.0
        sparsify_t = (phases1.get(PHASE_SPARSIFY, 0.0)
                      - phases0.get(PHASE_SPARSIFY, 0.0))
        self._partials.append((lo, hi, res))
        info = dict(res.info)
        if region is not None:
            # The bucket's selection cost is deferred to finish() (the
            # analytic timeline keeps sparsification serial), so the comm
            # pipeline is treated as finishing that much earlier.
            comm_finish = region.finish - sparsify_t
            if comm_finish > self._outstanding:
                self._outstanding = comm_finish
            self._deferred_sparsify += sparsify_t
            info["t_issue"] = region.issue
            info["t_comm_finish"] = comm_finish
        self.bucket_stats.append(BucketStat(
            lo=lo, hi=hi, nsegments=len(bucket), release_frac=release,
            k=k_b,
            comm_time=(phases1.get(PHASE_COMM, 0.0)
                       - phases0.get(PHASE_COMM, 0.0)),
            sparsify_time=sparsify_t,
            words_recv=int(comm.net.words_recv[comm.slot]) - recv0,
            selected=res.info.get("selected",
                                  res.info.get("selected_local")),
            info=info,
        ))

    def _merge(self) -> "AllreduceResult":
        from .base import AllreduceResult
        n = self.layout.n
        parts = sorted(self._partials, key=lambda p: p[0])
        sparse = all(isinstance(res.update, COOVector)
                     for _, _, res in parts)
        if not sparse and any(isinstance(res.update, COOVector)
                              for _, _, res in parts):
            # No scheme mixes representations across buckets, and merging
            # them would conflate "contributed everything" (dense) with
            # sparse error feedback — refuse rather than guess.
            raise TypeError(
                f"{type(self.scheme).__name__} returned mixed sparse/"
                "dense bucket updates; sessions require one representation")
        if sparse:
            idx = [ (res.update.indices.astype(INDEX_DTYPE) + INDEX_DTYPE(lo))
                    for lo, _, res in parts if res.update.nnz]
            val = [res.update.values for lo, _, res in parts
                   if res.update.nnz]
            update: Union[COOVector, np.ndarray] = COOVector(
                n,
                np.concatenate(idx) if idx else np.empty(0, INDEX_DTYPE),
                np.concatenate(val) if val else np.empty(0, VALUE_DTYPE))
        else:
            dense = np.zeros(n, dtype=VALUE_DTYPE)
            for lo, hi, res in parts:
                dense[lo:hi] = res.update
            update = dense
        if any(res.contributed_indices is None for _, _, res in parts):
            contributed: Optional[np.ndarray] = None
        else:
            pieces = [res.contributed_indices.astype(INDEX_DTYPE)
                      + INDEX_DTYPE(lo)
                      for lo, _, res in parts
                      if res.contributed_indices.size]
            contributed = (np.concatenate(pieces) if pieces
                           else np.empty(0, INDEX_DTYPE))
        selected = [st.selected for st in self.bucket_stats
                    if st.selected is not None]
        info: Dict[str, Any] = {
            "nbuckets": self.nbuckets,
            "bucket_k": list(self._bucket_k),
        }
        if selected:
            info["selected"] = int(sum(selected))
        if self.scheme.sparse and isinstance(update, COOVector):
            info["output_nnz"] = update.nnz
        return AllreduceResult(
            update=update, contributed_indices=contributed, info=info,
            overlappable=self.scheme.overlap_from_start)


# ---------------------------------------------------------------------------
# Convenience driver
# ---------------------------------------------------------------------------
def run_session(scheme: "GradientAllreduce", comm: "SimComm",
                layout: ParamLayout, t: int, acc: np.ndarray, *,
                bucket_size: Optional[int] = None,
                pacer: Optional[Any] = None,
                stream: Optional[bool] = None) -> "AllreduceResult":
    """Push a full accumulator through a session in backward order.

    The session equivalent of ``scheme.reduce(comm, acc, t)`` — with the
    default ``bucket_size=None`` it is bit-identical to it (results,
    traffic counters, simulated makespans).

    ``pacer``, when given, is called with each :class:`ParamSegment` just
    before its push; the trainer uses it to charge backward compute
    incrementally so the simulated clock tracks the backward timeline
    between pushes.  A pacer implies streaming execution (bucket
    reductions issued on the clock mid-backward); pass ``stream``
    explicitly to decouple the two.
    """
    acc = np.ascontiguousarray(acc, dtype=VALUE_DTYPE)
    if acc.ndim != 1:
        raise ValueError("acc must be a flat gradient vector")
    if acc.size != layout.n:
        raise ValueError(
            f"acc has {acc.size} words but layout covers {layout.n}")
    if stream is None:
        stream = pacer is not None
    session = scheme.begin(comm, layout, t, bucket_size=bucket_size,
                           stream=stream)
    # Adopt the already-assembled accumulator: the pushes below then
    # alias it, so no per-segment copy happens (the schemes treat acc as
    # read-only, same as the one-shot reduce path).
    session._acc = acc
    for seg in layout.push_order():
        if pacer is not None:
            pacer(seg)
        session.push(seg, acc[seg.sl])
    return session.finish()
