"""The paper's gradient (sparse) allreduce algorithms (Table 1)."""

from .base import (
    PHASE_COMM,
    PHASE_SPARSIFY,
    AllreduceResult,
    GradientAllreduce,
)
from .dense import DenseAllreduce, DenseOvlpAllreduce
from .gaussiank import GaussiankAllreduce
from .gtopk import GTopkAllreduce
from .oktopk import OkTopkAllreduce, OkTopkState
from .registry import ALGORITHMS, PAPER_ORDER, make_allreduce
from .session import (
    BucketStat,
    BucketView,
    ParamLayout,
    ParamSegment,
    ReduceSession,
    run_session,
    split_k,
    visible_comm_time,
)
from .topk_a import TopkAAllreduce
from .topk_dsa import TopkDSAAllreduce

__all__ = [
    "AllreduceResult",
    "GradientAllreduce",
    "ReduceSession",
    "ParamLayout",
    "ParamSegment",
    "BucketStat",
    "BucketView",
    "run_session",
    "split_k",
    "visible_comm_time",
    "PHASE_COMM",
    "PHASE_SPARSIFY",
    "DenseAllreduce",
    "DenseOvlpAllreduce",
    "TopkAAllreduce",
    "TopkDSAAllreduce",
    "GTopkAllreduce",
    "GaussiankAllreduce",
    "OkTopkAllreduce",
    "OkTopkState",
    "ALGORITHMS",
    "PAPER_ORDER",
    "make_allreduce",
]
