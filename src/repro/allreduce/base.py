"""Common protocol for the paper's (sparse) gradient allreduce schemes.

Every algorithm implements :class:`GradientAllreduce._reduce` and gets two
public entry points:

* **one-shot** :meth:`GradientAllreduce.reduce`:

  - input: the local accumulated gradient ``acc`` (residuals + fresh
    gradient, Algorithm 2 line 4) as a dense float32 vector, plus the
    1-based training iteration ``t`` (several schemes key periodic work
    off ``t``);
  - output: an :class:`AllreduceResult` whose ``update`` holds the
    *summed* update across the P workers (the optimizer divides by P),
    and whose ``contributed_indices`` identify which local entries made
    it into the update and must therefore be cleared from the residual.

* **session-based** :meth:`GradientAllreduce.begin` (see
  :mod:`repro.allreduce.session`): returns a
  :class:`~repro.allreduce.session.ReduceSession` accepting
  ``push(segment, grad)`` calls as backward emits per-layer gradients
  (reverse layout order) and a ``finish()`` returning the same
  :class:`AllreduceResult` plus per-bucket breakdowns (``bucket_stats``).

Session execution semantics
---------------------------

Segments are fused into buckets by the configurable policy
(``bucket_size`` in words; a bucket closes once it holds at least that
many words).  With the default ``bucket_size=None`` every scheme runs
through the delegating adapter — the pushes are concatenated and the
one-shot ``_reduce`` runs at ``finish()`` — so sessions are **bit
identical** to ``reduce`` in results, traffic counters and simulated
makespans.  Schemes that declare ``bucketable = True`` additionally
support a native multi-bucket path: each bucket is reduced independently
(eagerly, when its last segment is pushed) with a top-k budget split
proportionally to bucket length (:func:`repro.allreduce.session.split_k`),
and the per-bucket results are merged.

Overlap accounting
------------------

Every bucket records ``release_frac`` — the fraction of the backward pass
(parameter mass) already emitted when its reduction started.  The trainer
replays bucket communication against those release times
(:func:`repro.allreduce.session.visible_comm_time`) to compute the
communication visible after overlap, generically for **all** schemes.
``overlap_from_start = True`` (DenseOvlp) pins ``release_frac`` to 0.0,
reproducing the legacy trainer credit ``max(0, comm - f * compute)``
exactly; a one-shot/delegated reduction reports ``release_frac = 1.0``
(it needs the full gradient) and gets no credit.

Algorithms are stateful per worker (cached thresholds, region boundaries),
so the trainer constructs one instance per rank via ``make_per_rank``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..comm import SimComm
from ..errors import ConfigError
from ..sparse import COOVector
from .session import BucketStat, BucketView, ParamLayout, ReduceSession

PHASE_SPARSIFY = "sparsification"
PHASE_COMM = "communication"


@dataclass
class AllreduceResult:
    """Outcome of one gradient allreduce.

    Attributes:
        update: the reduced update, summed over workers; a :class:`COOVector`
            for sparse schemes or a dense ndarray for the dense baselines.
        contributed_indices: sorted indices of *local* ``acc`` entries that
            contributed to ``update`` (``None`` means "all of them", as for
            dense allreduce).
        phase_times: simulated seconds spent per phase
            (``sparsification`` / ``communication``) for the Figure 8/10/12
            breakdowns.
        info: algorithm-specific metrics (selected counts, fill-in, whether
            data balancing triggered, ...).
        overlappable: True when the communication can be overlapped with
            backpropagation (DenseOvlp); sessions translate it into
            ``release_frac = 0.0`` bucket stats and the trainer's generic
            timeline applies the credit.
        bucket_stats: per-bucket breakdown in push order when the result
            came from a :class:`~repro.allreduce.session.ReduceSession`
            (``None`` for a plain one-shot ``reduce``).
    """

    update: Union[COOVector, np.ndarray]
    contributed_indices: Optional[np.ndarray]
    phase_times: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)
    overlappable: bool = False
    bucket_stats: Optional[List[BucketStat]] = None

    def update_dense(self, n: int) -> np.ndarray:
        """The update as a dense vector of length ``n``."""
        if isinstance(self.update, COOVector):
            return self.update.to_dense()
        return self.update

    @property
    def comm_time(self) -> float:
        return self.phase_times.get(PHASE_COMM, 0.0)

    @property
    def sparsify_time(self) -> float:
        return self.phase_times.get(PHASE_SPARSIFY, 0.0)

    @property
    def nbuckets(self) -> int:
        return len(self.bucket_stats) if self.bucket_stats else 1


class GradientAllreduce(ABC):
    """Base class; concrete schemes override :meth:`_reduce`."""

    #: registry name, e.g. "oktopk"; set by subclasses
    name: str = "?"
    #: whether the scheme sparsifies (False for the dense baselines)
    sparse: bool = True
    #: whether the scheme supports the native per-bucket session path —
    #: either ``_reduce`` is stateless and position-independent (it is run
    #: on each bucket slice as if it were a full gradient vector), or the
    #: scheme overrides ``_reduce_bucket`` to consult the session's
    #: ``BucketView`` (Ok-Topk's shared full-gradient periodic state)
    bucketable: bool = False
    #: True when the scheme's communication may overlap the *entire*
    #: backward pass (DenseOvlp's legacy contract); sessions report
    #: ``release_frac = 0.0`` for its buckets
    overlap_from_start: bool = False

    def __init__(self, *, k: Optional[int] = None,
                 density: Optional[float] = None):
        if k is not None and k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if density is not None and not 0.0 < density <= 1.0:
            raise ConfigError(f"density must be in (0, 1], got {density}")
        if k is None and density is None and self.sparse:
            raise ConfigError(f"{type(self).__name__} needs k or density")
        self._k = k
        self._density = density
        self._k_override: Optional[int] = None

    def resolve_k(self, n: int) -> int:
        """The per-iteration k for a gradient of ``n`` components.

        A session's native bucketed path temporarily overrides this with
        the bucket's proportional share of the global budget (see
        :meth:`_reduce_bucket`).
        """
        if self._k_override is not None:
            return min(self._k_override, n)
        if self._k is not None:
            return min(self._k, n)
        if self._density is None:
            return n
        return max(1, int(round(self._density * n)))

    def on_world_resize(self, size: int) -> None:
        """The communicator shrank (elastic recovery): drop any cached
        per-world state keyed to the old P.  Stateless schemes need no
        action; stateful ones (Ok-Topk) override.
        """

    # ------------------------------------------------------------------
    # One-shot API
    # ------------------------------------------------------------------
    def reduce(self, comm: SimComm, acc: np.ndarray,
               t: int) -> AllreduceResult:
        """Run one allreduce at iteration ``t``.

        ``t`` is **1-based** (the first training iteration is ``t = 1``).
        Periodic schemes — Ok-Topk's tau/tau_prime schedules — key their
        re-evaluation cadence off ``t - 1``, so a zero or negative ``t``
        would silently shift every periodic re-evaluation by a full
        period; it raises :class:`~repro.errors.ConfigError` instead.
        """
        if acc.ndim != 1:
            raise ValueError("acc must be a flat gradient vector")
        if t < 1:
            raise ConfigError(f"iteration t must be >= 1, got {t}")
        acc = np.ascontiguousarray(acc, dtype=np.float32)
        comm.phase_times(reset=True)
        result = self._reduce(comm, acc, t)
        result.phase_times = comm.phase_times(reset=True)
        return result

    # ------------------------------------------------------------------
    # Session API
    # ------------------------------------------------------------------
    def begin(self, comm: SimComm, layout: ParamLayout, t: int, *,
              bucket_size: Optional[int] = None,
              stream: bool = False) -> ReduceSession:
        """Open a bucketed reduce session for one iteration.

        Push per-layer gradients in reverse layout (backward) order, then
        call ``finish()``.  ``t`` is **1-based**, same contract as
        :meth:`reduce` (periodic schemes key their schedules off
        ``t - 1``; ``t < 1`` raises ``ConfigError``).
        ``bucket_size=None`` (one bucket) is bit identical to
        :meth:`reduce`; a multi-bucket plan uses the native per-bucket
        path when ``bucketable`` and the delegating adapter otherwise.
        ``stream=True`` issues each native bucket reduction at the rank's
        current simulated time inside an async region (discrete-event
        overlap; see :mod:`repro.allreduce.session`), with ``finish()``
        joining the outstanding completions; a scheme that cannot stream
        records the fallback in its bucket stats.
        """
        return ReduceSession(self, comm, layout, t, bucket_size=bucket_size,
                             stream=stream)

    def _reduce_bucket(self, comm: SimComm, acc: np.ndarray, t: int, *,
                       k: Optional[int] = None,
                       view: Optional[BucketView] = None) -> AllreduceResult:
        """Reduce one session bucket (``bucketable`` schemes only).

        Default: the one-shot algorithm on the bucket slice with ``k``
        overriding the scheme's budget for the slice — the stateless
        contract, which ignores ``view``.  Override for schemes whose
        one-shot path does internal bucketing of its own (DenseOvlp) or
        that keep periodic state keyed to the full gradient and need the
        session context (Ok-Topk reads its shared thresholds/boundaries
        through ``view``; see :class:`~repro.allreduce.session.BucketView`).
        """
        self._k_override = k
        try:
            return self._reduce(comm, np.ascontiguousarray(acc), t)
        finally:
            self._k_override = None

    @abstractmethod
    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        ...

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = f"k={self._k}" if self._k is not None else f"density={self._density}"
        return f"{type(self).__name__}({sel})"
