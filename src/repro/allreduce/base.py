"""Common protocol for the paper's (sparse) gradient allreduce schemes.

Every algorithm implements :class:`GradientAllreduce.reduce`:

* input: the local accumulated gradient ``acc`` (residuals + fresh gradient,
  Algorithm 2 line 4) as a dense float32 vector, plus the 1-based training
  iteration ``t`` (several schemes key periodic work off ``t``);
* output: an :class:`AllreduceResult` whose ``update`` holds the *summed*
  update across the P workers (the optimizer divides by P), and whose
  ``contributed_indices`` identify which local entries made it into the
  update and must therefore be cleared from the residual.

Algorithms are stateful per worker (cached thresholds, region boundaries),
so the trainer constructs one instance per rank via ``make_per_rank``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from ..comm import SimComm
from ..errors import ConfigError
from ..sparse import COOVector

PHASE_SPARSIFY = "sparsification"
PHASE_COMM = "communication"


@dataclass
class AllreduceResult:
    """Outcome of one gradient allreduce.

    Attributes:
        update: the reduced update, summed over workers; a :class:`COOVector`
            for sparse schemes or a dense ndarray for the dense baselines.
        contributed_indices: sorted indices of *local* ``acc`` entries that
            contributed to ``update`` (``None`` means "all of them", as for
            dense allreduce).
        phase_times: simulated seconds spent per phase
            (``sparsification`` / ``communication``) for the Figure 8/10/12
            breakdowns.
        info: algorithm-specific metrics (selected counts, fill-in, whether
            data balancing triggered, ...).
        overlappable: True when the communication can be overlapped with
            backpropagation (DenseOvlp); the trainer applies the credit.
    """

    update: Union[COOVector, np.ndarray]
    contributed_indices: Optional[np.ndarray]
    phase_times: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)
    overlappable: bool = False

    def update_dense(self, n: int) -> np.ndarray:
        """The update as a dense vector of length ``n``."""
        if isinstance(self.update, COOVector):
            return self.update.to_dense()
        return self.update

    @property
    def comm_time(self) -> float:
        return self.phase_times.get(PHASE_COMM, 0.0)

    @property
    def sparsify_time(self) -> float:
        return self.phase_times.get(PHASE_SPARSIFY, 0.0)


class GradientAllreduce(ABC):
    """Base class; concrete schemes override :meth:`_reduce`."""

    #: registry name, e.g. "oktopk"; set by subclasses
    name: str = "?"
    #: whether the scheme sparsifies (False for the dense baselines)
    sparse: bool = True

    def __init__(self, *, k: Optional[int] = None,
                 density: Optional[float] = None):
        if k is not None and k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if density is not None and not 0.0 < density <= 1.0:
            raise ConfigError(f"density must be in (0, 1], got {density}")
        if k is None and density is None and self.sparse:
            raise ConfigError(f"{type(self).__name__} needs k or density")
        self._k = k
        self._density = density

    def resolve_k(self, n: int) -> int:
        """The per-iteration k for a gradient of ``n`` components."""
        if self._k is not None:
            return min(self._k, n)
        if self._density is None:
            return n
        return max(1, int(round(self._density * n)))

    def reduce(self, comm: SimComm, acc: np.ndarray,
               t: int) -> AllreduceResult:
        """Run one allreduce at iteration ``t`` (1-based)."""
        if acc.ndim != 1:
            raise ValueError("acc must be a flat gradient vector")
        if t < 1:
            raise ValueError(f"iteration t must be >= 1, got {t}")
        acc = np.ascontiguousarray(acc, dtype=np.float32)
        comm.phase_times(reset=True)
        result = self._reduce(comm, acc, t)
        result.phase_times = comm.phase_times(reset=True)
        return result

    @abstractmethod
    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        ...

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = f"k={self._k}" if self._k is not None else f"density={self._density}"
        return f"{type(self).__name__}({sel})"
