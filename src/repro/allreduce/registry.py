"""Name-based construction of allreduce schemes, used by the trainer,
benchmarks and examples ("dense", "dense_ovlp", "topka", "topkdsa",
"gtopk", "gaussiank", "oktopk")."""

from __future__ import annotations

from typing import Dict, Type

from ..errors import ConfigError
from .base import GradientAllreduce
from .dense import DenseAllreduce, DenseOvlpAllreduce
from .gaussiank import GaussiankAllreduce
from .gtopk import GTopkAllreduce
from .oktopk import OkTopkAllreduce
from .topk_a import TopkAAllreduce
from .topk_dsa import TopkDSAAllreduce

ALGORITHMS: Dict[str, Type[GradientAllreduce]] = {
    cls.name: cls
    for cls in (DenseAllreduce, DenseOvlpAllreduce, TopkAAllreduce,
                TopkDSAAllreduce, GTopkAllreduce, GaussiankAllreduce,
                OkTopkAllreduce)
}

#: order used in the paper's figures
PAPER_ORDER = ["dense", "dense_ovlp", "topka", "topkdsa", "gtopk",
               "gaussiank", "oktopk"]


def register(cls: Type[GradientAllreduce]) -> Type[GradientAllreduce]:
    """Add a scheme (e.g. an extension) to the registry by its ``name``."""
    ALGORITHMS[cls.name] = cls
    return cls


def _load_extensions() -> None:
    """Import extension packages that register additional schemes."""
    from .. import quant  # noqa: F401  (registers topka_q / oktopk_q)


def make_allreduce(name: str, **kwargs) -> GradientAllreduce:
    """Instantiate a scheme by its registry name."""
    if name not in ALGORITHMS:
        _load_extensions()
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown allreduce {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return cls(**kwargs)
