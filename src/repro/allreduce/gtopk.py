"""gTopk sparse allreduce (Shi et al. 2019; Table 1 row 4).

A binomial reduction tree followed by a broadcast tree.  To fight fill-in,
the *receiving* node of every tree level re-selects the top-k of the
combined vector before passing it up — so the message size stays ``2k`` at
every level, giving ``4k log P`` total volume, at the price of an
approximation: contributions dropped at an inner level are lost even if
their index survives globally.

Matching the paper's measurement methodology (Section 5.4.1), the
hierarchical top-k re-selections inside the tree are charged to the
*communication* phase; only the initial local selection is charged to
sparsification.
"""

from __future__ import annotations

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import combine_sum, exact_topk, intersect_sorted
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce

_TAG_REDUCE = (1 << 21) + 1


class GTopkAllreduce(GradientAllreduce):
    # Stateless tree reduction: sessions can run one tree per bucket with
    # the bucket's proportional k share (native bucketed path).
    name = "gtopk"
    bucketable = True

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        p, r = comm.size, comm.rank
        k = self.resolve_k(acc.size)
        with comm.phase(PHASE_SPARSIFY):
            local = exact_topk(acc, k)
            comm.compute_topk(acc.size, k)

        with comm.phase(PHASE_COMM):
            # Binomial reduction tree with per-level top-k re-selection.
            current = local
            levels = 0
            mask = 1
            while mask < p:
                if r & mask:
                    comm.send(current, r - mask, _TAG_REDUCE)
                    current = None
                    break
                src = r | mask
                if src < p:
                    got = comm.recv(src, _TAG_REDUCE)
                    merged = combine_sum([current, got])
                    comm.compute_words(got.nnz)
                    current = merged.topk(k)
                    comm.compute_topk(merged.nnz, k)
                    levels += 1
                mask <<= 1
            # Broadcast tree of the surviving global top-k.
            final = coll.bcast(comm, current, root=0)

        contributed = intersect_sorted(local.indices, final.indices)
        return AllreduceResult(
            update=final,
            contributed_indices=contributed,
            info={"k": k, "selected": local.nnz, "output_nnz": final.nnz,
                  "tree_levels": levels},
        )
