"""gTopk sparse allreduce (Shi et al. 2019; Table 1 row 4).

A binomial reduction tree followed by a broadcast tree.  To fight fill-in,
the *receiving* node of every tree level re-selects the top-k of the
combined vector before passing it up — so the message size stays ``2k`` at
every level, giving ``4k log P`` total volume, at the price of an
approximation: contributions dropped at an inner level are lost even if
their index survives globally.

Matching the paper's measurement methodology (Section 5.4.1), the
hierarchical top-k re-selections inside the tree are charged to the
*communication* phase; only the initial local selection is charged to
sparsification.

Under the cooperative engine the whole reduction tree runs as one fused
macro-collective (see :mod:`repro.comm.fused`): every rank parks at the
rendezvous with its local top-k, the tree's merges/re-selections are
computed centrally in the exact per-message order, and the compiled
message schedule (sizes taken from the evolving per-level nnz) is booked
in one vectorized pass — bit-identical results, counters and clocks.
"""

from __future__ import annotations

import numpy as np

from ..comm import SimComm, collectives as coll
from ..comm import fused as _fused
from ..sparse import combine_sum, exact_topk, intersect_sorted
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce

_TAG_REDUCE = (1 << 21) + 1


def _exec_gtopk_tree(net, sig, payloads):
    """Fused executor for the binomial combine-and-reselect tree.

    Data first (the per-level message sizes depend on it): at each mask
    level the surviving even virtual rank merges its partner's current
    vector (``combine_sum([current, got])``, same operand order as the
    per-message loop) and re-selects top-k.  The message schedule is then
    compiled from the recorded per-level sizes and replayed in one pass:
    blocking sends up the tree, the receiver charging
    ``compute_words(got.nnz)`` + ``compute_topk(merged.nnz, k)`` exactly
    as the reference loop does.
    """
    _, k = sig
    p = len(payloads)
    model = net.model
    cur = list(payloads)
    levels = [0] * p
    b = _fused._Builder(p)
    mask = 1
    while mask < p:
        post, recv, reduce_w, extra = [], [], [], []
        for r in range(0, p, 2 * mask):
            src = r | mask
            if src < p:
                got = cur[src]
                i = b.msg(src, r, got.comm_nwords(), _TAG_REDUCE)
                post.append(i)
                recv.append(i)
                merged = combine_sum([cur[r], got])
                reduce_w.append(got.nnz)
                cur[r] = merged.topk(k)
                extra.append(model.topk_seconds(merged.nnz, k))
                levels[r] += 1
                cur[src] = None
        b.round(_fused._ONEWAY, post, recv, reduce_words=reduce_w,
                extra_seconds=extra)
        mask <<= 1
    _fused.replay(net, b.build())
    # The trailing broadcast of the surviving top-k rides the same
    # rendezvous: replay its compiled schedule back to back (identical
    # message sequence to the reference's separate coll.bcast call) and
    # hand every rank the root's vector (COO payloads travel zero-copy).
    final = cur[0]
    _fused.replay(net, _fused.compile_bcast(p, 0, final.comm_nwords()))
    return [(final, levels[r]) for r in range(p)]


class GTopkAllreduce(GradientAllreduce):
    # Stateless tree reduction: sessions can run one tree per bucket with
    # the bucket's proportional k share (native bucketed path).
    name = "gtopk"
    bucketable = True

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        p, r = comm.size, comm.rank
        k = self.resolve_k(acc.size)
        with comm.phase(PHASE_SPARSIFY):
            local = exact_topk(acc, k)
            comm.compute_topk(acc.size, k)

        with comm.phase(PHASE_COMM):
            if _fused._available(comm):
                # Fused macro-collective: the whole tree *and* the
                # trailing broadcast in one engine dispatch.
                final, levels = comm.fused_collective(
                    ("gtopk_tree", k), local, _exec_gtopk_tree)
            else:
                # Binomial reduction tree with per-level top-k re-selection.
                current = local
                levels = 0
                mask = 1
                while mask < p:
                    if r & mask:
                        comm.send(current, r - mask, _TAG_REDUCE)
                        current = None
                        break
                    src = r | mask
                    if src < p:
                        got = comm.recv(src, _TAG_REDUCE)
                        merged = combine_sum([current, got])
                        comm.compute_words(got.nnz)
                        current = merged.topk(k)
                        comm.compute_topk(merged.nnz, k)
                        levels += 1
                    mask <<= 1
                # Broadcast tree of the surviving global top-k.
                final = coll.bcast(comm, current, root=0)

        contributed = intersect_sorted(local.indices, final.indices)
        return AllreduceResult(
            update=final,
            contributed_indices=contributed,
            info={"k": k, "selected": local.nnz, "output_nnz": final.nnz,
                  "tree_levels": levels},
        )
