"""Communication schedules for split-and-reduce (Figure 2 of the paper).

Two patterns:

* *naive*: at step ``s`` every worker sends its region-``s`` piece to worker
  ``s`` — worker ``s``'s ingress link serializes ``P-1`` messages at once
  (endpoint congestion, Figure 2a);
* *rotated*: worker ``i`` sends to ``(i+s) mod P`` at step ``s`` — each step
  forms a permutation, so every ingress link sees exactly one message per
  step (Figure 2b).

Steps are grouped into *buckets* (Figure 2c): the messages of a bucket are
posted with non-blocking sends and their local reduction is overlapped with
the next bucket's transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Step:
    """One exchange step for a fixed rank."""

    send_to: Tuple[int, ...]
    recv_from: Tuple[int, ...]


@lru_cache(maxsize=4096)
def rotated_steps(rank: int, p: int) -> Tuple[Step, ...]:
    """Destination-rotation schedule: P-1 permutation steps."""
    return tuple(Step(send_to=((rank + s) % p,), recv_from=((rank - s) % p,))
                 for s in range(1, p))


@lru_cache(maxsize=4096)
def naive_steps(rank: int, p: int) -> Tuple[Step, ...]:
    """Hot-spot schedule: step ``s`` converges on worker ``s``."""
    steps = []
    for s in range(p):
        send = (s,) if s != rank else ()
        recv = tuple(r for r in range(p) if r != rank) if s == rank else ()
        steps.append(Step(send_to=send, recv_from=recv))
    return tuple(steps)


def make_steps(rank: int, p: int, rotation: bool) -> Tuple[Step, ...]:
    """Cached per ``(rank, p)``: recomputed every iteration otherwise."""
    return rotated_steps(rank, p) if rotation else naive_steps(rank, p)


def buckets(steps: Sequence[Step], bucket_size: int) -> Iterator[List[Step]]:
    """Group steps into buckets of at most ``bucket_size``."""
    if bucket_size < 1:
        raise ValueError("bucket_size must be >= 1")
    for i in range(0, len(steps), bucket_size):
        yield list(steps[i:i + bucket_size])
