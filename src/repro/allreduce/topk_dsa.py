"""Top-k Dynamic Sparse Allreduce — SparCML's SSAR (Table 1 row 3).

Structure mirrors Rabenseifner's algorithm on *sparse* operands:

1. recursive-halving reduce-scatter on the index space: at every level the
   partners swap the half of their working set the other one keeps, and the
   union of supports grows (*fill-in*);
2. if a working segment's COO representation (``2 nnz`` words) outgrows its
   dense representation, the segment *switches to dense* on the fly — the
   "degrade to dense representations" behaviour described in Section 1,
   bounding the cost by the ``(2k + n)(P-1)/P`` end of the Table 1 interval;
3. an allgatherv of the P reduced segments (sparse or dense, whichever each
   rank ended up with).

Non-powers-of-two are handled with the standard fold (extras pre-combine
into a power-of-two core and receive the result at the end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import COOVector, combine_sum, exact_topk
from ..sparse.coo import INDEX_DTYPE, VALUE_DTYPE
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce

_TAG_FOLD = (1 << 21) + 11
_TAG_HALVE = (1 << 21) + 12


@dataclass
class _Segment:
    """A working segment over index range [lo, hi): sparse or dense."""

    n: int
    lo: int
    hi: int
    coo: Optional[COOVector] = None       # absolute indices
    dense: Optional[np.ndarray] = None    # length hi - lo, offset lo

    @classmethod
    def from_coo(cls, vec: COOVector, lo: int, hi: int) -> "_Segment":
        return cls(vec.n, lo, hi, coo=vec.restrict(lo, hi))

    @property
    def is_dense(self) -> bool:
        return self.dense is not None

    def words(self) -> int:
        return (self.hi - self.lo) if self.is_dense else 2 * self.coo.nnz

    def payload(self):
        if self.is_dense:
            return ("d", self.lo, self.hi, self.dense)
        return ("s", self.lo, self.hi, self.coo.indices, self.coo.values)

    @classmethod
    def from_payload(cls, n: int, payload) -> "_Segment":
        kind, lo, hi = payload[0], payload[1], payload[2]
        if kind == "d":
            return cls(n, lo, hi, dense=payload[3])
        return cls(n, lo, hi,
                   coo=COOVector(n, payload[3], payload[4]))

    def half(self, lo: int, hi: int) -> "_Segment":
        if self.is_dense:
            return _Segment(self.n, lo, hi,
                            dense=self.dense[lo - self.lo:hi - self.lo])
        return _Segment(self.n, lo, hi, coo=self.coo.restrict(lo, hi))

    def add(self, other: "_Segment") -> "_Segment":
        """Sum two segments over the same range; dense wins."""
        assert (self.lo, self.hi) == (other.lo, other.hi)
        if self.is_dense or other.is_dense:
            out = self.to_dense_array() + other.to_dense_array()
            return _Segment(self.n, self.lo, self.hi, dense=out)
        return _Segment(self.n, self.lo, self.hi,
                        coo=combine_sum([self.coo, other.coo]))

    def to_dense_array(self) -> np.ndarray:
        if self.is_dense:
            return self.dense
        out = np.zeros(self.hi - self.lo, dtype=VALUE_DTYPE)
        out[self.coo.indices - self.lo] = self.coo.values
        return out

    def maybe_densify(self) -> "_Segment":
        """Switch representation when COO is no longer smaller."""
        if not self.is_dense and 2 * self.coo.nnz >= (self.hi - self.lo):
            return _Segment(self.n, self.lo, self.hi,
                            dense=self.to_dense_array())
        return self

    def to_coo(self) -> COOVector:
        if not self.is_dense:
            return self.coo
        nz = np.flatnonzero(self.dense)
        return COOVector(self.n, (nz + self.lo).astype(INDEX_DTYPE),
                         self.dense[nz])


class TopkDSAAllreduce(GradientAllreduce):
    # Recursive halving works on any index range, so sessions may run the
    # SSAR exchange independently per bucket (native bucketed path).
    name = "topkdsa"
    bucketable = True

    def __init__(self, *, allow_dense_switch: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.allow_dense_switch = allow_dense_switch

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        p, r = comm.size, comm.rank
        n = acc.size
        k = self.resolve_k(n)
        with comm.phase(PHASE_SPARSIFY):
            local = exact_topk(acc, k)
            comm.compute_topk(n, k)

        switched = False
        with comm.phase(PHASE_COMM):
            m = 1 << (p.bit_length() - 1)
            rem = p - m
            working = local
            # ---- fold extras into the power-of-two core ---------------
            newrank: Optional[int]
            if rem and r < 2 * rem:
                if r % 2 == 0:
                    comm.send(working, r + 1, _TAG_FOLD)
                    newrank = None
                else:
                    got = comm.recv(r - 1, _TAG_FOLD)
                    working = combine_sum([working, got])
                    comm.compute_words(got.nnz)
                    newrank = r // 2
            else:
                newrank = (r - rem) if rem else r

            seg = _Segment.from_coo(working, 0, n)
            if newrank is not None:
                # ---- recursive halving on the index space -------------
                d = m >> 1
                lo, hi = 0, n
                while d >= 1:
                    partner_new = newrank ^ d
                    partner = (partner_new * 2 + 1 if partner_new < rem
                               else partner_new + rem)
                    mid = lo + (hi - lo) // 2
                    if newrank < partner_new:
                        send_half, keep = (mid, hi), (lo, mid)
                    else:
                        send_half, keep = (lo, mid), (mid, hi)
                    outgoing = seg.half(*send_half)
                    got = comm.sendrecv(outgoing.payload(), partner, partner,
                                        _TAG_HALVE)
                    kept = seg.half(*keep)
                    incoming = _Segment.from_payload(n, got)
                    seg = kept.add(incoming)
                    comm.compute_words(incoming.words())
                    if self.allow_dense_switch:
                        new_seg = seg.maybe_densify()
                        switched = switched or (new_seg.is_dense
                                                and not seg.is_dense)
                        seg = new_seg
                    lo, hi = keep
                    d >>= 1
            else:
                # folded-out even extras own an empty segment
                seg = _Segment(n, 0, 0, coo=COOVector.empty(n))

            # ---- allgather the reduced segments ------------------------
            pieces = coll.allgatherv_coo(comm, seg.payload())
            segments = [_Segment.from_payload(n, pl) for pl in pieces]
            total = combine_sum([s.to_coo() for s in segments])
            comm.compute_words(sum(s.words() for s in segments))

        return AllreduceResult(
            update=total,
            contributed_indices=local.indices,
            info={"k": k, "selected": local.nnz, "output_nnz": total.nnz,
                  "fill_in": total.nnz / max(1, k),
                  "switched_to_dense": switched},
        )
