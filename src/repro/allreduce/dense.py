"""Dense baselines: ``Dense`` and ``DenseOvlp`` (Section 5, Table 1 row 1).

``Dense`` performs a single allreduce on the full flat gradient with
Rabenseifner's algorithm — bandwidth-optimal ``2 n (P-1)/P``.

``DenseOvlp`` groups the gradient into buckets and fires one allreduce per
bucket; in the paper this overlaps with backpropagation.  The bucketed
execution is real (extra latency terms and all); the overlap credit against
backward compute is applied by the trainer, which knows the backward time
(``result.overlappable = True`` signals it may do so).
"""

from __future__ import annotations

import numpy as np

from ..comm import SimComm, collectives as coll
from .base import PHASE_COMM, AllreduceResult, GradientAllreduce


class DenseAllreduce(GradientAllreduce):
    """Single monolithic dense allreduce of the aggregated gradient."""

    name = "dense"
    sparse = False

    def __init__(self, *, algo: str = "auto", **kwargs):
        super().__init__(**kwargs)
        self.algo = algo

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        with comm.phase(PHASE_COMM):
            total = coll.allreduce(comm, acc, algo=self.algo)
        return AllreduceResult(update=total, contributed_indices=None)


class DenseOvlpAllreduce(GradientAllreduce):
    """Bucketed dense allreduce enabling communication/computation overlap."""

    name = "dense_ovlp"
    sparse = False

    def __init__(self, *, nbuckets: int = 4, algo: str = "auto", **kwargs):
        super().__init__(**kwargs)
        if nbuckets < 1:
            raise ValueError("nbuckets must be >= 1")
        self.nbuckets = nbuckets
        self.algo = algo

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        n = acc.size
        nb = min(self.nbuckets, max(1, n))
        bounds = np.linspace(0, n, nb + 1).astype(np.int64)
        out = np.empty_like(acc)
        with comm.phase(PHASE_COMM):
            for b in range(nb):
                lo, hi = int(bounds[b]), int(bounds[b + 1])
                out[lo:hi] = coll.allreduce(comm, acc[lo:hi], algo=self.algo)
        return AllreduceResult(update=out, contributed_indices=None,
                               info={"nbuckets": nb}, overlappable=True)
