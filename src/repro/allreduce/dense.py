"""Dense baselines: ``Dense`` and ``DenseOvlp`` (Section 5, Table 1 row 1).

``Dense`` performs a single allreduce on the full flat gradient with
Rabenseifner's algorithm — bandwidth-optimal ``2 n (P-1)/P``.  It is
``bucketable``: under a session with ``bucket_size`` set, each bucket is
one dense allreduce over its slice and its communication overlaps the
backward compute still outstanding when the bucket was pushed.

``DenseOvlp`` is dense + bucketing + overlap-from-start.  One-shot, it
groups the gradient into ``nbuckets`` equal buckets and fires one
allreduce per bucket (the bucketed execution is real — extra latency
terms and all); under a session, the session's bucket-fusion policy *is*
the bucketing and each bucket is a single dense allreduce.  Its
``overlap_from_start`` contract pins every bucket's ``release_frac`` to
0.0, so the trainer's generic timeline reproduces the legacy credit
``max(0, comm - f * compute)`` exactly (``result.overlappable = True``
signals the same on the one-shot path).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from .base import PHASE_COMM, AllreduceResult, GradientAllreduce


class DenseAllreduce(GradientAllreduce):
    """Single monolithic dense allreduce of the aggregated gradient."""

    name = "dense"
    sparse = False
    bucketable = True

    def __init__(self, *, algo: str = "auto", **kwargs):
        super().__init__(**kwargs)
        self.algo = algo

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        with comm.phase(PHASE_COMM):
            total = coll.allreduce(comm, acc, algo=self.algo)
        return AllreduceResult(update=total, contributed_indices=None)


class DenseOvlpAllreduce(DenseAllreduce):
    """Bucketed dense allreduce enabling communication/computation overlap."""

    name = "dense_ovlp"
    sparse = False
    bucketable = True
    overlap_from_start = True

    def __init__(self, *, nbuckets: int = 4, algo: str = "auto", **kwargs):
        super().__init__(algo=algo, **kwargs)
        if nbuckets < 1:
            raise ValueError("nbuckets must be >= 1")
        self.nbuckets = nbuckets

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        n = acc.size
        nb = min(self.nbuckets, max(1, n))
        bounds = np.linspace(0, n, nb + 1).astype(np.int64)
        out = np.empty_like(acc)
        with comm.phase(PHASE_COMM):
            for b in range(nb):
                lo, hi = int(bounds[b]), int(bounds[b + 1])
                out[lo:hi] = coll.allreduce(comm, acc[lo:hi], algo=self.algo)
        return AllreduceResult(update=out, contributed_indices=None,
                               info={"nbuckets": nb}, overlappable=True)

    def _reduce_bucket(self, comm: SimComm, acc: np.ndarray, t: int, *,
                       k: Optional[int] = None,
                       view=None) -> AllreduceResult:
        # The session's bucket IS the overlap bucket: one allreduce per
        # bucket, no internal nbuckets sub-splitting (that would double
        # the latency terms vs the equivalent dense + bucketing config).
        with comm.phase(PHASE_COMM):
            total = coll.allreduce(comm, acc, algo=self.algo)
        return AllreduceResult(update=total, contributed_indices=None,
                               overlappable=True)
