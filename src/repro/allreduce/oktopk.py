"""Ok-Topk's O(k) sparse allreduce (Algorithm 1 and Section 3 of the paper).

Two phases per iteration:

1. **split and reduce** — the gradient space is partitioned into P regions
   (boundaries balanced over the local top-k coordinate distribution and
   agreed by consensus averaging every ``tau`` iterations); worker ``i``
   reduces region ``i``.  Messages follow a destination-rotation schedule
   and are grouped into buckets whose local reduction overlaps the next
   bucket's transfers (Figure 2).  Cost: ``(P-1) alpha + 2k (P-1)/P beta``.

2. **balance and allgatherv** — each worker selects the global top-k values
   inside its region with an estimated global threshold, packages them, and
   (only when the package sizes are skewed by more than ``balance_trigger``
   times the average) rebalances the packages with point-to-point moves
   before the final recursive-doubling/Bruck allgatherv.  Cost bounded by
   ``(P + 2 log P) alpha + 4k (P-1)/P beta``.

Thresholds: both the local and the global top-k thresholds are re-evaluated
exactly (sort-based) every ``tau_prime`` iterations and *reused* in between
(Section 3.1.3), making the per-iteration selection a single linear scan.

Total: less than ``6k (P-1)/P`` bandwidth — asymptotically optimal against
the ``2k (P-1)/P`` lower bound of Theorem 3.1.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import (
    COOVector,
    balanced_boundaries_local,
    combine_sum,
    equal_boundaries,
    exact_topk,
    intersect_sorted,
    kth_largest_abs,
    sanitize_boundaries,
    threshold_select,
)
from ..sparse.coo import INDEX_DTYPE, VALUE_DTYPE
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce
from .schedule import buckets, make_steps

_TAG_SR = (1 << 21) + 21      # split-and-reduce region pieces
_TAG_BAL = (1 << 21) + 22     # data-balancing moves


class OkTopkAllreduce(GradientAllreduce):
    """The paper's scheme, with every optimization toggleable for ablations.

    Args:
        tau: space-repartition period (paper: 64).
        tau_prime: threshold re-evaluation period (paper: 32 or 128).
        balanced_partition: use the balanced split (False = naive equal).
        rotation: destination rotation in split-and-reduce (Figure 2b).
        bucket_size: messages per bucket in split-and-reduce (Figure 2c).
        data_balancing: enable the pre-allgatherv balancing step.
        balance_trigger: run balancing when ``max size > trigger * avg``
            (paper: 4).
        selection_guard: re-evaluate a stale threshold immediately when the
            selected count leaves ``[k/guard, guard*k]`` (implementation
            safeguard; the paper tolerates ~11% deviation, the guard only
            catches pathological drift).
    """

    # Not bucketable: the cached thresholds and consensus region
    # boundaries are keyed to the full gradient length, so per-bucket
    # execution would thrash the periodic state (sessions fall back to
    # the delegating adapter, which is bit-identical to one-shot).
    name = "oktopk"
    bucketable = False

    def __init__(self, *, tau: int = 64, tau_prime: int = 32,
                 balanced_partition: bool = True, rotation: bool = True,
                 bucket_size: int = 8, data_balancing: bool = True,
                 balance_trigger: float = 4.0, selection_guard: float = 3.0,
                 **kwargs):
        super().__init__(**kwargs)
        if tau < 1 or tau_prime < 1:
            raise ValueError("tau and tau_prime must be >= 1")
        self.tau = tau
        self.tau_prime = tau_prime
        self.balanced_partition = balanced_partition
        self.rotation = rotation
        self.bucket_size = bucket_size
        self.data_balancing = data_balancing
        self.balance_trigger = balance_trigger
        self.selection_guard = selection_guard
        # per-worker reused state
        self._n: Optional[int] = None
        self._local_th: Optional[float] = None
        self._global_th: Optional[float] = None
        self._boundaries: Optional[np.ndarray] = None
        self.local_evaluations = 0
        self.global_evaluations = 0
        self.repartitions = 0
        self.balancing_triggered = 0

    # ------------------------------------------------------------------
    def _due(self, t: int, period: int) -> bool:
        return (t - 1) % period == 0

    def _reset_state_if_needed(self, n: int) -> None:
        if self._n != n:
            self._n = n
            self._local_th = None
            self._global_th = None
            self._boundaries = None

    # ------------------------------------------------------------------
    # Local selection (Algorithm 1 lines 2-4)
    # ------------------------------------------------------------------
    def _select_local(self, comm: SimComm, acc: np.ndarray,
                      k: int, t: int) -> COOVector:
        n = acc.size
        if self._local_th is None or self._due(t, self.tau_prime):
            self._local_th = kth_largest_abs(acc, k)
            self.local_evaluations += 1
            comm.compute_sort(n)
        comm.compute_scan(n)
        if self._local_th <= 0.0:
            # Degenerate (all-zero accumulator or k >= n): exact selection.
            return exact_topk(acc, k)
        local = threshold_select(acc, self._local_th)
        g = self.selection_guard
        if local.nnz > g * k or local.nnz * g < k:
            # Stale threshold drifted too far: re-evaluate immediately.
            self._local_th = kth_largest_abs(acc, k)
            self.local_evaluations += 1
            comm.compute_sort(n)
            comm.compute_scan(n)
            local = (threshold_select(acc, self._local_th)
                     if self._local_th > 0 else exact_topk(acc, k))
        return local

    # ------------------------------------------------------------------
    # Space repartition (Algorithm 1 lines 5-7)
    # ------------------------------------------------------------------
    def _repartition(self, comm: SimComm, local: COOVector, n: int,
                     t: int) -> np.ndarray:
        if self._boundaries is not None and not self._due(t, self.tau):
            return self._boundaries
        p = comm.size
        if self.balanced_partition:
            proposal = balanced_boundaries_local(local.indices, n, p)
        else:
            proposal = equal_boundaries(n, p).astype(np.float64)
        summed = coll.allreduce_recursive_doubling(comm, proposal)
        self._boundaries = sanitize_boundaries(summed / p, n)
        self.repartitions += 1
        return self._boundaries

    # ------------------------------------------------------------------
    # Phase 1: split and reduce (Section 3.1.1)
    # ------------------------------------------------------------------
    def _split_and_reduce(self, comm: SimComm, local: COOVector,
                          boundaries: np.ndarray) -> COOVector:
        p, r = comm.size, comm.rank
        pieces = local.split(boundaries)
        comm.compute_scan(local.nnz)
        reduced = pieces[r]
        if p == 1:
            return reduced
        steps = make_steps(r, p, self.rotation)
        # Simulated time is charged per bucket (the overlap model of
        # Figure 2c: the previous bucket's reduction hides behind the next
        # bucket's transfers, and only needs the piece sizes).  The actual
        # numpy reduction is batched into one combine_sum over all pieces —
        # a single sort/reduceat pass instead of a fold per bucket.
        pending: List[COOVector] = []
        prev_words = 0
        for bucket in buckets(steps, self.bucket_size):
            reqs = []
            sends = []
            for step in bucket:
                for src in step.recv_from:
                    reqs.append(comm.irecv(src, _TAG_SR))
                for dst in step.send_to:
                    sends.append((pieces[dst], dst, _TAG_SR))
            # One egress-booking pass for the whole bucket's fan-out
            # (bit-identical to per-message isend; see isend_batch).
            reqs.extend(comm.isend_batch(sends))
            # Overlap: reduce the previous bucket while this one flies.
            if prev_words:
                comm.compute_words(2 * prev_words)
            got = comm.waitall(reqs)
            arrived = [g for g in got if isinstance(g, COOVector)]
            pending.extend(arrived)
            prev_words = sum(v.nnz for v in arrived)
        if prev_words:
            comm.compute_words(2 * prev_words)
        if pending:
            reduced = combine_sum([reduced, *pending])
        return reduced

    # ------------------------------------------------------------------
    # Global threshold (Algorithm 1 lines 9-12)
    # ------------------------------------------------------------------
    def _global_threshold(self, comm: SimComm, reduced: COOVector,
                          k: int, t: int) -> float:
        if self._global_th is not None and not self._due(t, self.tau_prime):
            return self._global_th
        with comm.phase(PHASE_COMM):
            all_reduced = coll.allgatherv_coo(comm, reduced)
        merged_values = np.concatenate(
            [v.values for v in all_reduced]) if all_reduced else np.empty(0)
        with comm.phase(PHASE_SPARSIFY):
            if merged_values.size:
                self._global_th = kth_largest_abs(
                    merged_values, min(k, merged_values.size))
            else:
                self._global_th = 0.0
            comm.compute_sort(merged_values.size)
        self.global_evaluations += 1
        return self._global_th

    # ------------------------------------------------------------------
    # Phase 2: balance and allgatherv (Section 3.1.2)
    # ------------------------------------------------------------------
    def _balance_and_allgatherv(self, comm: SimComm, reduced: COOVector,
                                global_th: float) -> tuple[COOVector, bool]:
        p = comm.size
        n = reduced.n
        # (1) global top-k selection inside my region + (2) packaging
        mine = (reduced.select_threshold(global_th) if global_th > 0
                else reduced)
        comm.compute_scan(reduced.nnz)
        if p == 1:
            return mine, False
        # (3) size exchange and optional data balancing
        sizes = coll.allgather_object(comm, mine.nnz)
        total = int(sum(sizes))
        balanced = False
        idx, val = mine.indices, mine.values
        if (self.data_balancing and total > 0
                and max(sizes) > self.balance_trigger * total / p):
            idx, val = self._rebalance(comm, idx, val, sizes)
            balanced = True
            self.balancing_triggered += 1
        # (4) allgatherv via dissemination; region order keeps global sort
        pieces = coll.allgatherv(comm, (idx, val))
        cat_idx = np.concatenate([pc[0] for pc in pieces])
        cat_val = np.concatenate([pc[1] for pc in pieces])
        out = COOVector(n, cat_idx.astype(INDEX_DTYPE),
                        cat_val.astype(VALUE_DTYPE))
        return out, balanced

    def _rebalance(self, comm: SimComm, idx: np.ndarray, val: np.ndarray,
                   sizes: List[int]) -> tuple[np.ndarray, np.ndarray]:
        """Even out package sizes with point-to-point moves.

        Every rank knows all package sizes, hence the global position range
        it holds and the near-equal target ranges; overlaps define the
        moves.  Source-rank order preserves the global (sorted) order.
        """
        p, r = comm.size, comm.rank
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        targets = np.linspace(0, offsets[-1], p + 1).astype(np.int64)
        my_lo, my_hi = int(offsets[r]), int(offsets[r + 1])
        blocks = []
        for j in range(p):
            a = max(my_lo, int(targets[j]))
            b = min(my_hi, int(targets[j + 1]))
            if b > a:
                blocks.append((idx[a - my_lo:b - my_lo],
                               val[a - my_lo:b - my_lo]))
            else:
                blocks.append(None)
        got = coll.alltoallv(comm, blocks)
        kept = [g for g in got if g is not None]
        if not kept:
            return (np.empty(0, INDEX_DTYPE), np.empty(0, VALUE_DTYPE))
        return (np.concatenate([g[0] for g in kept]),
                np.concatenate([g[1] for g in kept]))

    # ------------------------------------------------------------------
    # Algorithm 1 driver
    # ------------------------------------------------------------------
    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        n = acc.size
        k = self.resolve_k(n)
        self._reset_state_if_needed(n)

        with comm.phase(PHASE_SPARSIFY):                 # lines 2-4
            local = self._select_local(comm, acc, k, t)
        with comm.phase(PHASE_COMM):                      # lines 5-7
            boundaries = self._repartition(comm, local, n, t)
            reduced = self._split_and_reduce(comm, local, boundaries)  # l.8
        global_th = self._global_threshold(comm, reduced, k, t)  # lines 9-12
        with comm.phase(PHASE_COMM):                      # line 13
            u_t, balanced = self._balance_and_allgatherv(
                comm, reduced, global_th)
        indexes = intersect_sorted(local.indices, u_t.indices)   # line 14

        return AllreduceResult(
            update=u_t,
            contributed_indices=indexes,
            info={
                "k": k,
                "selected_local": local.nnz,
                "selected_global": u_t.nnz,
                "local_threshold": self._local_th,
                "global_threshold": global_th,
                "balancing_triggered": balanced,
                "boundaries": boundaries,
            },
        )
