"""Ok-Topk's O(k) sparse allreduce (Algorithm 1 and Section 3 of the paper).

Two phases per iteration:

1. **split and reduce** — the gradient space is partitioned into P regions
   (boundaries balanced over the local top-k coordinate distribution and
   agreed by consensus averaging every ``tau`` iterations); worker ``i``
   reduces region ``i``.  Messages follow a destination-rotation schedule
   and are grouped into buckets whose local reduction overlaps the next
   bucket's transfers (Figure 2).  Cost: ``(P-1) alpha + 2k (P-1)/P beta``.

2. **balance and allgatherv** — each worker selects the global top-k values
   inside its region with an estimated global threshold, packages them, and
   (only when the package sizes are skewed by more than ``balance_trigger``
   times the average) rebalances the packages with point-to-point moves
   before the final recursive-doubling/Bruck allgatherv.  Cost bounded by
   ``(P + 2 log P) alpha + 4k (P-1)/P beta``.

Thresholds: both the local and the global top-k thresholds are re-evaluated
exactly (sort-based) every ``tau_prime`` iterations and *reused* in between
(Section 3.1.3), making the per-iteration selection a single linear scan.

Total: less than ``6k (P-1)/P`` bandwidth — asymptotically optimal against
the ``2k (P-1)/P`` lower bound of Theorem 3.1.

Shared periodic state and bucketed sessions
-------------------------------------------

All periodic quantities — the reused local/global thresholds, the
consensus region boundaries, and the evaluation/repartition counters —
live in one :class:`OkTopkState` keyed to the *full* gradient length.  The
one-shot :meth:`OkTopkAllreduce._reduce` reads and writes it exactly as
before.  The scheme is additionally ``bucketable``: under a multi-bucket
:class:`~repro.allreduce.session.ReduceSession` each bucket runs
split-and-reduce + balance-and-allgatherv over its own slice (with its
proportional ``split_k`` budget) while **reading** the shared state
instead of thrashing it:

* every bucket selects by one linear scan against the **shared local
  threshold**; the selection guard is applied *per bucket* against the
  bucket's own budget, and a guard-triggered re-evaluation stays
  bucket-local (it is never written back — per-bucket writes would thrash
  the full-gradient estimate the sibling buckets read).  Likewise the
  per-bucket phase 2 reads the **shared global threshold**;
* on the ``tau_prime`` schedule both thresholds are re-evaluated **once
  per iteration, from the full gradient**: the last funded bucket — the
  point where the concatenation of the pushed segments *is* the whole
  gradient — re-estimates the local threshold from the full accumulator
  (global ``k``) and the global threshold from the union of all buckets'
  reduced slices (one values-only allgatherv), exactly the one-shot
  estimates.  They take effect from the next iteration, so the reuse
  window is at most ``tau_prime + 1`` iterations instead of
  ``tau_prime`` — well inside the paper's slowly-changing-statistics
  assumption.  At the very first iteration (no cached state yet) the
  first funded bucket bootstraps cheap estimates: the local threshold
  from the segments pushed so far (``k`` scaled to the visible
  fraction), the global threshold from its own reduced slice (bucket
  budget); the per-bucket guard covers the one-iteration bias;
* the **region boundaries** stay keyed to the full gradient.  Each bucket
  intersects the consensus boundaries with its extent (clip to
  ``[lo, hi)``, shift by ``lo``), so worker ``i`` reduces
  ``region i ∩ bucket``.  The consensus itself runs on the ``tau``
  schedule in the last funded bucket and takes effect from the next
  iteration; until the first consensus the naive equal split is used (it
  needs no collective and is identical on every rank).

A one-bucket plan never reaches this path (sessions delegate to the
one-shot ``_reduce``, bit-identical by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..comm import SimComm, collectives as coll
from ..comm import fused as _fused
from ..errors import ConfigError
from ..sparse import (
    COOVector,
    balanced_boundaries_local,
    combine_sum,
    equal_boundaries,
    exact_topk,
    intersect_sorted,
    kth_largest_abs,
    sanitize_boundaries,
    threshold_select,
)
from ..sparse.coo import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.topk import batched_kth_largest_abs, batched_threshold_select
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce
from .schedule import buckets, make_steps
from .session import BucketView

_TAG_SR = (1 << 21) + 21      # split-and-reduce region pieces
_TAG_BAL = (1 << 21) + 22     # data-balancing moves


def _exec_split_reduce(net, sig, payloads):
    """Fused executor for split-and-reduce (the macro-collective form of
    :meth:`OkTopkAllreduce._split_and_reduce`'s exchange).

    ``payloads[r]`` is rank ``r``'s region pieces (one COO vector per
    destination).  The replay walks the rotation/naive schedule bucket by
    bucket, reproducing the reference path's exact booking sequence per
    rank — ``isend_batch``'s egress serialization (the shared
    ``NetworkModel.isend_avail`` chain + ``serialize_batch``, the same
    helpers ``Network.post_batch`` uses), the overlap
    ``compute_words(2 * prev_words)`` charge, ``waitall``'s
    arrival-sorted batched ingress delivery (one ``serialize_batch``
    fold, exact for single messages too), and the send-request waits —
    without creating a single message object or parking a single thread.
    The reduction itself is one ``combine_sum`` per rank over the pieces
    in static request order, exactly what the per-message path folds.
    """
    from .schedule import buckets as _buckets, make_steps
    _, rotation, bucket_size = sig
    p = len(payloads)
    model = net.model
    alpha, o_send = model.alpha, model.o_send
    o_inject, gamma = model.o_inject, model.gamma
    clocks = net.clocks
    eg = net.egress_free
    ing = net.ingress_free
    # inlined comm_nwords (2k wire words): the property chain costs real
    # time at 256 calls per dispatch
    nw = [[2 * piece.indices.size for piece in pieces]
          for pieces in payloads]
    # The rotation/bucket schedule depends only on (p, rotation,
    # bucket_size) — cache it on the network across iterations.
    key = (p, rotation, bucket_size)
    cached = getattr(net, "_sr_sched_cache", None)
    if cached is not None and cached[0] == key:
        rank_buckets = cached[1]
    else:
        rank_buckets = [list(_buckets(make_steps(r, p, rotation),
                                      bucket_size)) for r in range(p)]
        net._sr_sched_cache = (key, rank_buckets)
    nbuckets = len(rank_buckets[0])
    prev_words = [0] * p
    pending: List[List] = [[] for _ in range(p)]
    for bb in range(nbuckets):
        # -- posts: one batched egress booking per rank (isend_batch) ----
        inbox: List[List[tuple]] = [[] for _ in range(p)]
        send_dones: List[List[float]] = [[] for _ in range(p)]
        for r in range(p):
            sends = [dst for step in rank_buckets[r][bb]
                     for dst in step.send_to]
            if not sends:
                continue
            nwords = np.array([nw[r][dst] for dst in sends],
                              dtype=np.float64)
            n = nwords.size
            avail = model.isend_avail(clocks[r], n)
            starts, ends = model.serialize_batch(eg[r], avail, nwords)
            eg[r] = float(ends[-1])
            total = 0
            starts_l = starts.tolist()
            ends_l = ends.tolist()
            for i, dst in enumerate(sends):
                inbox[dst].append((starts_l[i] + alpha, r, nw[r][dst]))
                send_dones[r].append(ends_l[i] + o_send)
                total += nw[r][dst]
            net.words_sent[r] += total
            net.msgs_sent[r] += n
            if o_inject:
                for _ in range(n):
                    clocks[r] += o_inject
        # -- overlap: reduce the previous bucket while this one flies ----
        for r in range(p):
            if prev_words[r]:
                clocks[r] += gamma * (2 * prev_words[r])
        # -- waitall: arrival-sorted batched delivery + send waits -------
        for r in range(p):
            msgs = sorted(inbox[r])  # (t_first, src, nwords)
            if msgs:
                # serialize_batch is bit-identical to the one-message
                # scalar fold (its fast paths cover n=1 exactly), so one
                # call handles both the single and the batched delivery
                avail = np.array([m[0] for m in msgs], dtype=np.float64)
                nwords = np.array([m[2] for m in msgs], dtype=np.float64)
                _, ends = model.serialize_batch(ing[r], avail, nwords)
                td = float(ends[-1])
                ing[r] = td
                total = sum(m[2] for m in msgs)
                if td > clocks[r]:
                    clocks[r] = td
                net.words_recv[r] += total
                net.msgs_recv[r] += len(msgs)
            for dn in send_dones[r]:
                if dn > clocks[r]:
                    clocks[r] = dn
            # request order, not arrival order: the payload list the
            # reference waitall returns follows the irecv creation order
            arrived = [payloads[src][r] for step in rank_buckets[r][bb]
                       for src in step.recv_from]
            pending[r].extend(arrived)
            prev_words[r] = sum(v.indices.size for v in arrived)
    # -- final reductions: one global sort instead of p combine_sum ------
    # Region index ranges are disjoint per owner, so biasing each owner's
    # indices by ``r * n`` and running ONE stable argsort + reduceat over
    # the world reproduces every per-rank ``combine_sum`` fold exactly:
    # within an owner the stable sort keeps pieces in request order (the
    # order combine_sum concatenates), reduceat accumulates the identical
    # float64 partial sums, and the single float32 cast matches.
    out: List[Optional[COOVector]] = [None] * p
    cat_keys: List[np.ndarray] = []
    cat_vals: List[np.ndarray] = []
    multi: List[int] = []
    for r in range(p):
        if prev_words[r]:
            clocks[r] += gamma * (2 * prev_words[r])
        own = payloads[r][r]
        if not pending[r]:
            out[r] = own
            continue
        live = [v for v in (own, *pending[r]) if v.nnz]
        if not live:
            out[r] = COOVector.empty(own.n)
        elif len(live) == 1:
            out[r] = live[0]
        else:
            keys = np.concatenate([v.indices for v in live]).astype(np.int64)
            keys += r * own.n
            cat_keys.append(keys)
            cat_vals.append(np.concatenate([v.values for v in live]))
            multi.append(r)
    if multi:
        n = payloads[0][0].n
        all_key = np.concatenate(cat_keys)
        all_val = np.concatenate(cat_vals)
        order = np.argsort(all_key, kind="stable")
        key_sorted = all_key[order]
        val_sorted = all_val[order]
        boundary = np.empty(key_sorted.size, dtype=bool)
        boundary[0] = True
        np.not_equal(key_sorted[1:], key_sorted[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        sums = np.add.reduceat(val_sorted, starts,
                               dtype=np.float64).astype(VALUE_DTYPE)
        group_keys = key_sorted[starts]
        cuts = np.searchsorted(group_keys,
                               np.asarray(multi, dtype=np.int64) * n)
        ends = np.append(cuts[1:], group_keys.size)
        for r, lo, hi in zip(multi, cuts, ends):
            idx = (group_keys[lo:hi] - r * n).astype(INDEX_DTYPE)
            out[r] = COOVector(n, idx, sums[lo:hi])
    return out


def _exec_select_local(net, sig, payloads):
    """Rank-batched executor for :meth:`OkTopkAllreduce._select_local`.

    ``payloads[r]`` is ``(comm, allreduce, acc)`` for rank ``r``.  The
    periodic threshold re-evaluation becomes one row-wise
    ``np.partition`` and the per-iteration selection one stacked
    threshold scan; compute charges (`compute_sort`/`compute_scan`) run
    through each rank's own communicator inside its open phase context,
    so clocks and phase attribution match the serial path exactly.
    Data-dependent divergence — the degenerate all-zero path and the
    selection-guard re-evaluation — is handled per rank with the scalar
    primitives (it is pure local compute, no lockstep needed).
    """
    from ..train.rankbatch import stack_rows
    _, t, k = sig
    xs = stack_rows([p[2] for p in payloads])
    nranks, n = xs.shape
    entries = [(p[0], p[1], p[1]._state) for p in payloads]
    due = [st.local_th is None or ar._due(t, ar.tau_prime)
           for (_, ar, st) in entries]
    if all(due):
        ths = batched_kth_largest_abs(xs, k)
        for r, (comm, _, st) in enumerate(entries):
            st.local_th = float(ths[r])
            st.local_evaluations += 1
            comm.compute_sort(n)
    else:
        for r, (comm, _, st) in enumerate(entries):
            if due[r]:
                st.local_th = kth_largest_abs(xs[r], k)
                st.local_evaluations += 1
                comm.compute_sort(n)
    for comm, _, _ in entries:
        comm.compute_scan(n)
    ths_now = [st.local_th for (_, _, st) in entries]
    if all(th > 0.0 for th in ths_now):
        selected = batched_threshold_select(xs, ths_now)
    else:
        selected = [threshold_select(xs[r], ths_now[r])
                    if ths_now[r] > 0.0 else None
                    for r in range(nranks)]
    out: List[COOVector] = []
    for r, (comm, ar, st) in enumerate(entries):
        if ths_now[r] <= 0.0:
            # Degenerate (all-zero accumulator or k >= n): exact
            # selection, no guard — same as the serial early return.
            out.append(exact_topk(xs[r], k))
            continue
        local = selected[r]
        g = ar.selection_guard
        if local.nnz > g * k or local.nnz * g < k:
            st.local_th = kth_largest_abs(xs[r], k)
            st.local_evaluations += 1
            comm.compute_sort(n)
            comm.compute_scan(n)
            local = (threshold_select(xs[r], st.local_th)
                     if st.local_th > 0 else exact_topk(xs[r], k))
        out.append(local)
    return out


@dataclass
class OkTopkState:
    """Ok-Topk's periodic state, keyed to one full-gradient length.

    One instance per worker and gradient layout; a gradient-size change
    discards the whole object, so the cached thresholds, the consensus
    boundaries **and** the ablation counters always describe the same
    model (resetting only the thresholds used to leave stale counters
    behind).  The ``*_t`` markers record the iteration of the last
    full-gradient re-estimate so a bucketed session refreshes each shared
    quantity at most once per iteration — per-bucket execution reads this
    state, it never thrashes it.  ``pending_reduced`` is per-iteration
    scratch: the buckets' reduced values collected for the end-of-iteration
    global-threshold refresh.
    """

    n: int
    local_th: Optional[float] = None
    global_th: Optional[float] = None
    boundaries: Optional[np.ndarray] = None
    # ablation counters (Figure 4/6/7 instrumentation)
    local_evaluations: int = 0
    global_evaluations: int = 0
    repartitions: int = 0
    balancing_triggered: int = 0
    # iteration of the last full-gradient refresh (bucketed sessions only)
    local_refresh_t: int = 0
    global_refresh_t: int = 0
    repartition_t: int = 0
    # per-iteration scratch for the bucketed global-threshold refresh
    pending_t: int = 0
    pending_reduced: List[np.ndarray] = field(default_factory=list)


class OkTopkAllreduce(GradientAllreduce):
    """The paper's scheme, with every optimization toggleable for ablations.

    Args:
        tau: space-repartition period (paper: 64).
        tau_prime: threshold re-evaluation period (paper: 32 or 128).
        balanced_partition: use the balanced split (False = naive equal).
        rotation: destination rotation in split-and-reduce (Figure 2b).
        bucket_size: messages per bucket in split-and-reduce (Figure 2c).
        data_balancing: enable the pre-allgatherv balancing step.
        balance_trigger: run balancing when ``max size > trigger * avg``
            (paper: 4).
        selection_guard: re-evaluate a stale threshold immediately when the
            selected count leaves ``[k/guard, guard*k]`` (implementation
            safeguard; the paper tolerates ~11% deviation, the guard only
            catches pathological drift).
    """

    # Bucketable via the shared-state session path (module docstring):
    # buckets read the full-gradient OkTopkState instead of re-keying the
    # periodic thresholds/boundaries to their slice.
    name = "oktopk"
    bucketable = True

    def __init__(self, *, tau: int = 64, tau_prime: int = 32,
                 balanced_partition: bool = True, rotation: bool = True,
                 bucket_size: int = 8, data_balancing: bool = True,
                 balance_trigger: float = 4.0, selection_guard: float = 3.0,
                 **kwargs):
        super().__init__(**kwargs)
        if tau < 1 or tau_prime < 1:
            raise ValueError("tau and tau_prime must be >= 1")
        self.tau = tau
        self.tau_prime = tau_prime
        self.balanced_partition = balanced_partition
        self.rotation = rotation
        self.bucket_size = bucket_size
        self.data_balancing = data_balancing
        self.balance_trigger = balance_trigger
        self.selection_guard = selection_guard
        #: shared periodic state, created lazily per gradient length
        self._state: Optional[OkTopkState] = None

    # ------------------------------------------------------------------
    # Back-compat accessors over the state object
    # ------------------------------------------------------------------
    @property
    def state(self) -> Optional[OkTopkState]:
        return self._state

    @property
    def local_evaluations(self) -> int:
        return self._state.local_evaluations if self._state else 0

    @property
    def global_evaluations(self) -> int:
        return self._state.global_evaluations if self._state else 0

    @property
    def repartitions(self) -> int:
        return self._state.repartitions if self._state else 0

    @property
    def balancing_triggered(self) -> int:
        return self._state.balancing_triggered if self._state else 0

    @property
    def _local_th(self) -> Optional[float]:
        return self._state.local_th if self._state else None

    @property
    def _global_th(self) -> Optional[float]:
        return self._state.global_th if self._state else None

    @property
    def _boundaries(self) -> Optional[np.ndarray]:
        return self._state.boundaries if self._state else None

    # ------------------------------------------------------------------
    def _due(self, t: int, period: int) -> bool:
        """Is periodic work scheduled at iteration ``t``?

        Iterations are **1-based** (the contract of
        :meth:`GradientAllreduce.reduce` / :meth:`~GradientAllreduce.begin`):
        the schedule fires at ``t = 1, 1+period, 1+2*period, ...``.  A
        non-positive ``t`` would silently shift the whole tau/tau_prime
        schedule by a full period, so it is rejected here as well as at
        the public entry points.
        """
        if t < 1:
            raise ConfigError(
                f"Ok-Topk iterations are 1-based (the tau/tau_prime "
                f"schedules key off t - 1); got t={t}")
        return (t - 1) % period == 0

    def on_world_resize(self, size: int) -> None:
        """Re-key the periodic state to a shrunk world (elastic recovery).

        The consensus boundaries partition gradient space over P ranks
        and the thresholds were estimated from P-way contributions, so
        both are dropped: clearing ``boundaries`` forces the next
        :meth:`_repartition` to re-run the consensus at the new size, and
        clearing the thresholds forces fresh estimates.  The interrupted
        iteration's bucket scratch is discarded (its traffic was flushed
        by the shrink barrier); ablation counters are cumulative across
        the resize and are kept.
        """
        st = self._state
        if st is None:
            return
        st.local_th = None
        st.global_th = None
        st.boundaries = None
        st.pending_t = 0
        st.pending_reduced = []

    def _reset_state_if_needed(self, n: int) -> OkTopkState:
        st = self._state
        if st is None or st.n != n:
            # Thresholds, boundaries and the ablation counters reset
            # *together*: an instance reused across models must not carry
            # stale evaluation/repartition stats into the new run.
            st = self._state = OkTopkState(n)
        return st

    # ------------------------------------------------------------------
    # Local selection (Algorithm 1 lines 2-4)
    # ------------------------------------------------------------------
    def _select_local(self, comm: SimComm, acc: np.ndarray,
                      k: int, t: int) -> COOVector:
        """Threshold selection; under lockstep rank-batching (a
        :class:`repro.train.rankbatch.RankBatch` published on the
        communicator) the whole world's selection runs as one stacked
        dispatch — one ``np.partition`` / one threshold scan over the
        ``(P, n)`` accumulator matrix — bit-identical per rank to the
        serial path."""
        rb = getattr(comm, "rank_batch", None)
        if rb is not None and rb.engaged():
            return comm.fused_collective(("oktopk_select", t, k),
                                         (comm, self, acc),
                                         _exec_select_local)
        return self._select_local_serial(comm, acc, k, t)

    def _select_local_serial(self, comm: SimComm, acc: np.ndarray,
                             k: int, t: int) -> COOVector:
        st = self._state
        n = acc.size
        if st.local_th is None or self._due(t, self.tau_prime):
            st.local_th = kth_largest_abs(acc, k)
            st.local_evaluations += 1
            comm.compute_sort(n)
        comm.compute_scan(n)
        if st.local_th <= 0.0:
            # Degenerate (all-zero accumulator or k >= n): exact selection.
            return exact_topk(acc, k)
        local = threshold_select(acc, st.local_th)
        g = self.selection_guard
        if local.nnz > g * k or local.nnz * g < k:
            # Stale threshold drifted too far: re-evaluate immediately.
            st.local_th = kth_largest_abs(acc, k)
            st.local_evaluations += 1
            comm.compute_sort(n)
            comm.compute_scan(n)
            local = (threshold_select(acc, st.local_th)
                     if st.local_th > 0 else exact_topk(acc, k))
        return local

    # ------------------------------------------------------------------
    # Space repartition (Algorithm 1 lines 5-7)
    # ------------------------------------------------------------------
    def _consensus_boundaries(self, comm: SimComm, st: OkTopkState,
                              proposal: np.ndarray, n: int, t: int) -> None:
        """Average the boundary proposals across ranks (P+1-word
        allreduce), sanitize, and store as the shared boundaries."""
        summed = coll.allreduce_recursive_doubling(comm, proposal)
        st.boundaries = sanitize_boundaries(summed / comm.size, n)
        st.repartitions += 1
        st.repartition_t = t

    def _repartition(self, comm: SimComm, local: COOVector, n: int,
                     t: int) -> np.ndarray:
        st = self._state
        if st.boundaries is not None and not self._due(t, self.tau):
            return st.boundaries
        if self.balanced_partition:
            proposal = balanced_boundaries_local(local.indices, n, comm.size)
        else:
            proposal = equal_boundaries(n, comm.size).astype(np.float64)
        self._consensus_boundaries(comm, st, proposal, n, t)
        return st.boundaries

    # ------------------------------------------------------------------
    # Phase 1: split and reduce (Section 3.1.1)
    # ------------------------------------------------------------------
    def _split_and_reduce(self, comm: SimComm, local: COOVector,
                          boundaries: np.ndarray) -> COOVector:
        p, r = comm.size, comm.rank
        pieces = local.split(boundaries)
        comm.compute_scan(local.nnz)
        reduced = pieces[r]
        if p == 1:
            return reduced
        if _fused._available(comm):
            # Fused macro-collective: the whole rotation schedule —
            # batched egress posts, overlapped reductions, arrival-sorted
            # deliveries — in one engine dispatch (see _exec_split_reduce).
            return comm.fused_collective(
                ("oktopk_sr", self.rotation, self.bucket_size), pieces,
                _exec_split_reduce)
        steps = make_steps(r, p, self.rotation)
        # Simulated time is charged per bucket (the overlap model of
        # Figure 2c: the previous bucket's reduction hides behind the next
        # bucket's transfers, and only needs the piece sizes).  The actual
        # numpy reduction is batched into one combine_sum over all pieces —
        # a single sort/reduceat pass instead of a fold per bucket.
        pending: List[COOVector] = []
        prev_words = 0
        for bucket in buckets(steps, self.bucket_size):
            reqs = []
            sends = []
            for step in bucket:
                for src in step.recv_from:
                    reqs.append(comm.irecv(src, _TAG_SR))
                for dst in step.send_to:
                    sends.append((pieces[dst], dst, _TAG_SR))
            # One egress-booking pass for the whole bucket's fan-out
            # (bit-identical to per-message isend; see isend_batch).
            reqs.extend(comm.isend_batch(sends))
            # Overlap: reduce the previous bucket while this one flies.
            if prev_words:
                comm.compute_words(2 * prev_words)
            got = comm.waitall(reqs)
            arrived = [g for g in got if isinstance(g, COOVector)]
            pending.extend(arrived)
            prev_words = sum(v.nnz for v in arrived)
        if prev_words:
            comm.compute_words(2 * prev_words)
        if pending:
            reduced = combine_sum([reduced, *pending])
        return reduced

    # ------------------------------------------------------------------
    # Global threshold (Algorithm 1 lines 9-12)
    # ------------------------------------------------------------------
    def _estimate_global_th(self, comm: SimComm, st: OkTopkState,
                            merged_values: np.ndarray, k: int) -> float:
        """Store the ``k``-th magnitude of the gathered reduced values as
        the shared global threshold (0 when nothing was reduced); charges
        the sort and bumps the evaluation counter."""
        with comm.phase(PHASE_SPARSIFY):
            if merged_values.size:
                st.global_th = kth_largest_abs(
                    merged_values, min(k, merged_values.size))
            else:
                st.global_th = 0.0
            comm.compute_sort(merged_values.size)
        st.global_evaluations += 1
        return st.global_th

    def _global_threshold(self, comm: SimComm, reduced: COOVector,
                          k: int, t: int) -> float:
        st = self._state
        if st.global_th is not None and not self._due(t, self.tau_prime):
            return st.global_th
        with comm.phase(PHASE_COMM):
            all_reduced = coll.allgatherv_coo(comm, reduced)
        merged_values = np.concatenate(
            [v.values for v in all_reduced]) if all_reduced else np.empty(0)
        return self._estimate_global_th(comm, st, merged_values, k)

    # ------------------------------------------------------------------
    # Phase 2: balance and allgatherv (Section 3.1.2)
    # ------------------------------------------------------------------
    def _balance_and_allgatherv(self, comm: SimComm, reduced: COOVector,
                                global_th: float) -> tuple[COOVector, bool]:
        p = comm.size
        n = reduced.n
        # (1) global top-k selection inside my region + (2) packaging
        mine = (reduced.select_threshold(global_th) if global_th > 0
                else reduced)
        comm.compute_scan(reduced.nnz)
        if p == 1:
            return mine, False
        # (3) size exchange and optional data balancing
        sizes = coll.allgather_object(comm, mine.nnz)
        total = int(sum(sizes))
        balanced = False
        idx, val = mine.indices, mine.values
        if (self.data_balancing and total > 0
                and max(sizes) > self.balance_trigger * total / p):
            idx, val = self._rebalance(comm, idx, val, sizes)
            balanced = True
            self._state.balancing_triggered += 1
        # (4) allgatherv via dissemination; region order keeps global sort
        pieces = coll.allgatherv(comm, (idx, val))
        cat_idx = np.concatenate([pc[0] for pc in pieces])
        cat_val = np.concatenate([pc[1] for pc in pieces])
        out = COOVector(n, cat_idx.astype(INDEX_DTYPE),
                        cat_val.astype(VALUE_DTYPE))
        return out, balanced

    def _rebalance(self, comm: SimComm, idx: np.ndarray, val: np.ndarray,
                   sizes: List[int]) -> tuple[np.ndarray, np.ndarray]:
        """Even out package sizes with point-to-point moves.

        Every rank knows all package sizes, hence the global position range
        it holds and the near-equal target ranges; overlaps define the
        moves.  Source-rank order preserves the global (sorted) order.
        """
        p, r = comm.size, comm.rank
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        targets = np.linspace(0, offsets[-1], p + 1).astype(np.int64)
        my_lo, my_hi = int(offsets[r]), int(offsets[r + 1])
        blocks = []
        for j in range(p):
            a = max(my_lo, int(targets[j]))
            b = min(my_hi, int(targets[j + 1]))
            if b > a:
                blocks.append((idx[a - my_lo:b - my_lo],
                               val[a - my_lo:b - my_lo]))
            else:
                blocks.append(None)
        got = coll.alltoallv(comm, blocks)
        kept = [g for g in got if g is not None]
        if not kept:
            return (np.empty(0, INDEX_DTYPE), np.empty(0, VALUE_DTYPE))
        return (np.concatenate([g[0] for g in kept]),
                np.concatenate([g[1] for g in kept]))

    # ------------------------------------------------------------------
    # Algorithm 1 driver
    # ------------------------------------------------------------------
    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        n = acc.size
        k = self.resolve_k(n)
        self._reset_state_if_needed(n)

        with comm.phase(PHASE_SPARSIFY):                 # lines 2-4
            local = self._select_local(comm, acc, k, t)
        with comm.phase(PHASE_COMM):                      # lines 5-7
            boundaries = self._repartition(comm, local, n, t)
            reduced = self._split_and_reduce(comm, local, boundaries)  # l.8
        global_th = self._global_threshold(comm, reduced, k, t)  # lines 9-12
        with comm.phase(PHASE_COMM):                      # line 13
            u_t, balanced = self._balance_and_allgatherv(
                comm, reduced, global_th)
        indexes = intersect_sorted(local.indices, u_t.indices)   # line 14

        return AllreduceResult(
            update=u_t,
            contributed_indices=indexes,
            info={
                "k": k,
                "selected_local": local.nnz,
                "selected_global": u_t.nnz,
                "local_threshold": self._state.local_th,
                "global_threshold": global_th,
                "balancing_triggered": balanced,
                "boundaries": boundaries,
            },
        )

    # ------------------------------------------------------------------
    # Native bucketed sessions (shared periodic state; module docstring)
    # ------------------------------------------------------------------
    def _reduce_bucket(self, comm: SimComm, acc: np.ndarray, t: int, *,
                       k: Optional[int] = None,
                       view: Optional[BucketView] = None) -> AllreduceResult:
        """Run Algorithm 1 over one session bucket, reading shared state.

        ``view`` locates the bucket inside the full gradient (sessions
        always provide it); without one the slice is treated as a complete
        single-bucket gradient.
        """
        n_b = acc.size
        if view is None:
            view = BucketView(lo=0, hi=n_b, n=n_b, index=0, nbuckets=1,
                              final=True, acc=acc)
        st = self._reset_state_if_needed(view.n)
        k_total = self.resolve_k(view.n)
        if k is None:
            k_b = max(1, min(n_b, int(round(k_total * n_b / view.n))))
        else:
            k_b = max(1, min(int(k), n_b))

        with comm.phase(PHASE_SPARSIFY):
            local = self._select_local_bucket(comm, st, acc, k_b, k_total,
                                              view)
        with comm.phase(PHASE_COMM):
            bnd = self._bucket_boundaries(comm, st, view)
            reduced = self._split_and_reduce(comm, local, bnd)
        if self._due(t, self.tau_prime):
            # This iteration ends with a global-threshold refresh: keep
            # the bucket's reduced values for the union (scratch, cleared
            # by the refresh).
            if st.pending_t != t:
                st.pending_t = t
                st.pending_reduced = []
            st.pending_reduced.append(reduced.values)
        global_th = self._global_threshold_bucket(comm, st, reduced, k_b)
        with comm.phase(PHASE_COMM):
            u_t, balanced = self._balance_and_allgatherv(
                comm, reduced, global_th)
        if view.final:
            # The whole gradient has been pushed by now: run the scheduled
            # full-gradient re-estimates (thresholds, consensus
            # boundaries) for the *next* iterations — this one already ran
            # every bucket on the previous estimates.
            self._refresh_shared_state(comm, st, view, t)
        indexes = intersect_sorted(local.indices, u_t.indices)

        return AllreduceResult(
            update=u_t,
            contributed_indices=indexes,
            info={
                "k": k_b,
                "selected_local": local.nnz,
                "selected_global": u_t.nnz,
                "local_threshold": st.local_th,
                "global_threshold": global_th,
                "balancing_triggered": balanced,
                "boundaries": bnd,
            },
        )

    def _select_local_bucket(self, comm: SimComm, st: OkTopkState,
                             acc: np.ndarray, k_b: int, k_total: int,
                             view: BucketView) -> COOVector:
        """Per-bucket threshold selection against the shared local threshold.

        The shared threshold is normally refreshed from the full gradient
        at the end of each due iteration (:meth:`_refresh_shared_state`);
        only the very first bucket ever run bootstraps it from the
        concatenation of the segments pushed so far, with ``k`` scaled to
        the visible fraction of the gradient.  The guard is applied per
        bucket against its own budget; a guard re-evaluation is
        bucket-local and never written back (writing it would thrash the
        full-gradient estimate the other buckets read).
        """
        n_b = acc.size
        if st.local_th is None:
            pushed = view.pushed
            k_eval = max(1, min(pushed.size,
                                int(round(k_total * pushed.size / view.n))))
            st.local_th = kth_largest_abs(pushed, k_eval)
            st.local_evaluations += 1
            comm.compute_sort(pushed.size)
        comm.compute_scan(n_b)
        if st.local_th <= 0.0:
            return exact_topk(acc, k_b)
        local = threshold_select(acc, st.local_th)
        g = self.selection_guard
        if local.nnz > g * k_b or local.nnz * g < k_b:
            th_b = kth_largest_abs(acc, k_b)
            # counted like the one-shot guard path: the sort really ran,
            # even though the corrected threshold stays bucket-local
            st.local_evaluations += 1
            comm.compute_sort(n_b)
            comm.compute_scan(n_b)
            local = (threshold_select(acc, th_b) if th_b > 0
                     else exact_topk(acc, k_b))
        return local

    def _bucket_boundaries(self, comm: SimComm, st: OkTopkState,
                           view: BucketView) -> np.ndarray:
        """Consensus full-gradient boundaries intersected with the bucket.

        Worker ``i`` reduces ``region i ∩ [lo, hi)``; regions that miss the
        bucket degenerate to empty slices (their pieces carry no words).
        Before the first consensus (iteration 1's buckets) the naive equal
        split is used — identical on every rank without a collective.
        """
        full = st.boundaries
        if full is None:
            full = equal_boundaries(view.n, comm.size)
        return np.clip(full, view.lo, view.hi) - view.lo

    def _global_threshold_bucket(self, comm: SimComm, st: OkTopkState,
                                 reduced: COOVector, k_b: int) -> float:
        """Shared global threshold; bootstrapped by the first bucket ever
        run (from its own reduced slice, bucket budget) and otherwise
        refreshed from the full reduced gradient at the end of each due
        iteration (:meth:`_refresh_shared_state`)."""
        if st.global_th is not None:
            return st.global_th
        with comm.phase(PHASE_COMM):
            all_reduced = coll.allgatherv_coo(comm, reduced)
        merged_values = np.concatenate(
            [v.values for v in all_reduced]) if all_reduced else np.empty(0)
        return self._estimate_global_th(comm, st, merged_values, k_b)

    def _refresh_shared_state(self, comm: SimComm, st: OkTopkState,
                              view: BucketView, t: int) -> None:
        """End-of-iteration re-estimates from the fully pushed gradient.

        Runs inside the last funded bucket, after its phase 2: each shared
        quantity is refreshed at most once per iteration, on its own
        schedule, and takes effect from the next iteration.  The local
        threshold is the exact ``k``-th magnitude of the full accumulator
        and the global threshold the ``k``-th magnitude of the union of
        all buckets' reduced values (one values-only allgatherv) — the
        same estimates the one-shot path computes, evaluated one bucket
        plan later.
        """
        acc_full = view.acc
        n = acc_full.size
        k_total = self.resolve_k(n)
        if self._due(t, self.tau_prime) and st.local_refresh_t != t:
            with comm.phase(PHASE_SPARSIFY):
                st.local_th = kth_largest_abs(acc_full, k_total)
                st.local_evaluations += 1
                st.local_refresh_t = t
                comm.compute_sort(n)
        if self._due(t, self.tau) and st.repartition_t != t:
            with comm.phase(PHASE_COMM):
                self._repartition_full(comm, st, acc_full, t)
        if self._due(t, self.tau_prime) and st.global_refresh_t != t:
            mine = (np.concatenate(st.pending_reduced)
                    if st.pending_reduced
                    else np.empty(0, VALUE_DTYPE))
            with comm.phase(PHASE_COMM):
                pieces = coll.allgatherv(comm, mine)
            merged_values = (np.concatenate(pieces) if pieces
                             else np.empty(0))
            self._estimate_global_th(comm, st, merged_values, k_total)
            st.global_refresh_t = t
            st.pending_t = 0
            st.pending_reduced = []

    def _repartition_full(self, comm: SimComm, st: OkTopkState,
                          acc_full: np.ndarray, t: int) -> None:
        """The tau-schedule consensus repartition, run once per due
        iteration from the fully pushed gradient (one threshold scan
        recovers this rank's selected coordinates)."""
        p = comm.size
        if self.balanced_partition and st.local_th is not None \
                and st.local_th > 0.0:
            sel = np.flatnonzero(np.abs(acc_full) >= st.local_th)
            comm.compute_scan(acc_full.size)
            proposal = balanced_boundaries_local(sel, acc_full.size, p)
        else:
            proposal = equal_boundaries(acc_full.size, p).astype(np.float64)
        self._consensus_boundaries(comm, st, proposal, acc_full.size, t)
