"""Top-k Allgather sparse allreduce (``TopkA``, Table 1 row 2).

Every worker selects its local top-k, allgathers the P sparse vectors, and
sums them locally.  Simple, no fill-in *during* the exchange, but the
receive volume is ``2k (P-1)`` per rank — proportional to P, hence not
scalable (the key negative result motivating Ok-Topk).

The output is the *sum of all local top-k contributions*; its support is
the union of the P supports, so the output density expands (Section 5.2
reports 13.2% / 34.5% from 1% / 2% local density).
"""

from __future__ import annotations

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import combine_sum, exact_topk
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce


class TopkAAllreduce(GradientAllreduce):
    # Stateless and position-independent, so sessions may run it natively
    # per bucket: each bucket allgathers its own top-k_b (k split
    # proportional to bucket length) and the union of bucket supports is
    # the merged update.
    name = "topka"
    bucketable = True

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        k = self.resolve_k(acc.size)
        with comm.phase(PHASE_SPARSIFY):
            local = exact_topk(acc, k)
            comm.compute_topk(acc.size, k)
        with comm.phase(PHASE_COMM):
            gathered = coll.allgatherv_coo(comm, local)
            total = combine_sum(gathered)
            comm.compute_words(sum(v.nnz for v in gathered))
        return AllreduceResult(
            update=total,
            contributed_indices=local.indices,
            info={"k": k, "selected": local.nnz, "output_nnz": total.nnz,
                  "fill_in": total.nnz / max(1, k)},
        )
