"""Gaussian-k sparse allreduce (Shi et al. 2019; Table 1 row 5).

Same allgather exchange as TopkA, but the local selection uses a threshold
estimated from a Gaussian fit of the gradient values (percent-point
function) instead of an exact top-k — O(n) and GPU-friendly, but it
under-estimates k on real (lighter-tailed) distributions.

Following Section 5.4, the threshold is adaptively scaled until at least
``3k/4`` values are selected ("the threshold adjustment is also suggested
by [41], although it is difficult to be accurate"), so that time-to-accuracy
comparisons are fair.
"""

from __future__ import annotations

import numpy as np

from ..comm import SimComm, collectives as coll
from ..sparse import combine_sum, threshold_select
from ..sparse.threshold import gaussian_threshold
from .base import PHASE_COMM, PHASE_SPARSIFY, AllreduceResult, GradientAllreduce


class GaussiankAllreduce(GradientAllreduce):
    # The Gaussian threshold fit is per-vector, so each session bucket
    # fits its own slice (native bucketed path).
    name = "gaussiank"
    bucketable = True

    def __init__(self, *, adjust_min_fraction: float = 0.75,
                 adjust_shrink: float = 0.8, adjust_max_rounds: int = 32,
                 **kwargs):
        super().__init__(**kwargs)
        self.adjust_min_fraction = adjust_min_fraction
        self.adjust_shrink = adjust_shrink
        self.adjust_max_rounds = adjust_max_rounds

    def estimate_threshold(self, comm: SimComm, acc: np.ndarray,
                           k: int) -> tuple[float, int]:
        """Gaussian PPF estimate plus the paper's adjustment loop; returns
        the threshold and the number of adjustment rounds used."""
        if k < 1:
            # Zero-budget bucket (session k-split with k < nbuckets):
            # select nothing, like the top-k schemes do.
            return float("inf"), 0
        t = gaussian_threshold(acc, k)
        comm.compute_scan(2 * acc.size)  # mean/std pass + selection scan
        if t == 0.0:
            return t, 0
        mag = np.abs(acc)
        target = self.adjust_min_fraction * min(k, acc.size)
        rounds = 0
        while (np.count_nonzero(mag >= t) < target
               and rounds < self.adjust_max_rounds):
            t *= self.adjust_shrink
            rounds += 1
            comm.compute_scan(acc.size)  # each adjustment re-scans
        return t, rounds

    def _reduce(self, comm: SimComm, acc: np.ndarray,
                t: int) -> AllreduceResult:
        k = self.resolve_k(acc.size)
        with comm.phase(PHASE_SPARSIFY):
            threshold, rounds = self.estimate_threshold(comm, acc, k)
            local = threshold_select(acc, threshold)
            if local.nnz > 2 * k:  # degenerate underestimate of threshold
                local = local.topk(k)
        with comm.phase(PHASE_COMM):
            gathered = coll.allgatherv_coo(comm, local)
            total = combine_sum(gathered)
            comm.compute_words(sum(v.nnz for v in gathered))
        return AllreduceResult(
            update=total,
            contributed_indices=local.indices,
            info={"k": k, "selected": local.nnz, "threshold": threshold,
                  "adjust_rounds": rounds, "output_nnz": total.nnz},
        )
