"""Image classification (the paper's VGG-16 / Cifar-10 workload).

Trains a width-reduced VGG-16 on the synthetic CIFAR-like dataset with
data-parallel workers, comparing dense allreduce against Ok-Topk —
reproducing the Figure 9 story at laptop scale: similar accuracy, much
less communication time.

    python examples/image_classification.py [--workers 4] [--iters 30]
"""

import argparse

import numpy as np

from repro.bench.harness import proxy_network
from repro.comm import run_spmd
from repro.data import ShardedLoader, make_cifar_like
from repro.nn.models import make_vgg16_model
from repro.train import Trainer, TrainerConfig, top1_accuracy


def worker(comm, scheme, iters):
    train, test = make_cifar_like(128, 32, image_size=32, noise=0.6, seed=0)
    model = make_vgg16_model(width_mult=0.05, seed=42)
    loader = ShardedLoader(train, 16, comm.rank, comm.size, seed=1)

    def evaluate(m):
        return {"acc": top1_accuracy(m.predict(test.x), test.y)}

    cfg = TrainerConfig(iterations=iters, scheme=scheme, density=0.05,
                        lr=0.05, eval_every=max(1, iters // 3))
    return Trainer(comm, model, loader, cfg, eval_fn=evaluate).run()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--iters", type=int, default=30)
    args = ap.parse_args()

    print(f"Training VGG-16 (width 0.05) on {args.workers} simulated "
          f"workers, {args.iters} iterations, density 5%\n")
    print(f"{'scheme':<12} {'final acc':>10} {'sim time (s)':>14} "
          f"{'comm share':>11}")
    for scheme in ("dense", "dense_ovlp", "oktopk"):
        rec = run_spmd(args.workers, worker, scheme, args.iters,
                       model=proxy_network())[0]
        acc = rec.final_eval()["acc"]
        bd = rec.mean_breakdown(skip=1)
        share = bd["communication"] / bd["total"]
        print(f"{scheme:<12} {acc:>10.3f} {rec.total_time:>14.4f} "
              f"{share:>10.1%}")
    print("\nOk-Topk reaches dense-level accuracy with a fraction of the "
          "communication (Figure 9 shape).")


if __name__ == "__main__":
    main()
