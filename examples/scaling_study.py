"""Scaling study: measured volumes and paper-scale projections.

Part 1 executes every allreduce scheme on simulated ranks and measures
the per-rank communication volume as P grows (the scalability argument of
Sections 1-3).  Part 2 evaluates the calibrated analytic model at the
paper's BERT scale (n = 133.5M, up to 256 GPUs) and prints the Figure 12
weak-scaling table, including Ok-Topk's speedups.

    python examples/scaling_study.py
"""

import numpy as np

from repro.allreduce import PAPER_ORDER
from repro.bench import format_table, paper_scale_breakdown
from repro.costmodel import measure_steady_state_volume

N, K = 8192, 128


def main():
    print("Part 1: measured per-rank receive volume (words/iteration), "
          f"n={N}, k={K}\n")
    ps = (4, 8, 16)
    rows = []
    for scheme in PAPER_ORDER:
        kwargs = {"tau_prime": 64} if scheme == "oktopk" else {}
        vols = [measure_steady_state_volume(scheme, N, p, K, **kwargs)
                for p in ps]
        rows.append([scheme] + [f"{v:.0f}" for v in vols])
    print(format_table(["scheme"] + [f"P={p}" for p in ps], rows))

    print("\n\nPart 2: paper-scale projection, BERT (n=133.5M), "
          "density=1%\n")
    for p in (32, 256):
        rows = []
        for scheme in PAPER_ORDER:
            b = paper_scale_breakdown("bert", scheme, p, tau_prime=128)
            rows.append([scheme, f"{b['sparsification']:.3f}",
                         f"{b['communication']:.3f}",
                         f"{b['computation+io']:.3f}",
                         f"{b['total']:.3f}"])
        print(format_table(
            ["scheme", "sparsify (s)", "comm (s)", "compute+io (s)",
             "total (s)"], rows,
            title=f"{p} GPUs"))
        print()
    t = {s: paper_scale_breakdown("bert", s, 256, tau_prime=128)["total"]
         for s in PAPER_ORDER}
    speedups = sorted(t[s] / t["oktopk"] for s in PAPER_ORDER
                      if s != "oktopk")
    print(f"Ok-Topk speedup over the other schemes at 256 GPUs: "
          f"{speedups[0]:.2f}x .. {speedups[-1]:.2f}x "
          "(paper reports 3.29x .. 12.95x)")


if __name__ == "__main__":
    main()
