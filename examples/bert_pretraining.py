"""BERT pre-training (the paper's BERT / Wikipedia workload).

Pre-trains the mini-BERT masked language model on the synthetic Markov
corpus.  As in the paper's BERT runs, the sparse allreduce operates on
raw gradients and Adam is applied afterwards (error-feedback wrapper).
Reproduces the Figure 13 story: Ok-Topk's loss curve tracks DenseOvlp
while needing a fraction of the (simulated) time.

    python examples/bert_pretraining.py [--workers 4] [--iters 40]
"""

import argparse

import numpy as np

from repro.bench.harness import proxy_network
from repro.comm import run_spmd
from repro.data import ShardedLoader, make_wikipedia_like
from repro.nn.models import BertConfig, make_bert_model
from repro.train import Trainer, TrainerConfig


def worker(comm, scheme, iters):
    train, test = make_wikipedia_like(128, 32, vocab=200, seq_len=16,
                                      seed=4)
    cfg_model = BertConfig(vocab=200, hidden=32, layers=2, heads=4,
                           intermediate=64, max_seq=16)
    model = make_bert_model(cfg_model, seq_len=16, seed=5)
    loader = ShardedLoader(train, 16, comm.rank, comm.size, seed=6)

    def evaluate(m):
        return {"mlm_loss": m.eval_loss(test.x, test.y)}

    cfg = TrainerConfig(iterations=iters, scheme=scheme, density=0.02,
                        mode="adam", lr=2e-3,
                        eval_every=max(1, iters // 4))
    return Trainer(comm, model, loader, cfg, eval_fn=evaluate).run()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--iters", type=int, default=40)
    args = ap.parse_args()

    print(f"Pre-training mini-BERT (MLM) on {args.workers} simulated "
          f"workers, density 2%, sparse-allreduce + Adam\n")
    print(f"{'scheme':<12} {'loss t=0':>9} {'loss final':>11} "
          f"{'sim time (s)':>13}")
    for scheme in ("dense_ovlp", "gaussiank", "oktopk"):
        rec = run_spmd(args.workers, worker, scheme, args.iters,
                       model=proxy_network())[0]
        print(f"{scheme:<12} {np.mean(rec.losses[:4]):>9.3f} "
              f"{np.mean(rec.losses[-4:]):>11.3f} "
              f"{rec.total_time:>13.4f}")
    print("\nSame downward loss curve, >3x less simulated training time "
          "for Ok-Topk (Figure 13 shape).")


if __name__ == "__main__":
    main()
