"""Quickstart: one Ok-Topk sparse allreduce on 8 simulated workers.

Runs the paper's O(k) sparse allreduce (Algorithm 1) on random gradients,
prints the result, the per-rank communication volume against Theorem 3.1's
optimality interval, and the simulated time.

    python examples/quickstart.py
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.comm import NetworkModel, run_spmd

P = 8          # simulated workers
N = 100_000    # gradient components
DENSITY = 0.01 # k/n


def worker(comm):
    rng = np.random.default_rng(comm.rank)
    gradient = rng.normal(size=N).astype(np.float32)

    algo = make_allreduce("oktopk", density=DENSITY)
    result = algo.reduce(comm, gradient, t=1)   # threshold evaluation
    before = int(comm.net.words_recv[comm.rank])
    result = algo.reduce(comm, gradient, t=2)   # steady state

    return {
        "update_nnz": result.update.nnz,
        "contributed": len(result.contributed_indices),
        "comm_time_us": result.comm_time * 1e6,
        "sparsify_time_us": result.sparsify_time * 1e6,
        "words_recv": int(comm.net.words_recv[comm.rank]) - before,
    }


def main():
    res = run_spmd(P, worker, model=NetworkModel.aries())
    k = int(DENSITY * N)
    lo = 2 * k * (P - 1) / P
    hi = 6 * k * (P - 1) / P

    print(f"Ok-Topk sparse allreduce: P={P}, n={N}, k={k} (density "
          f"{DENSITY:.0%})")
    print(f"  global top-k values in the update : {res[0]['update_nnz']}")
    print(f"  locally contributed entries (rank0): {res[0]['contributed']}")
    print(f"  simulated communication time       : "
          f"{res[0]['comm_time_us']:.1f} us/iteration")
    print(f"  simulated sparsification time      : "
          f"{res[0]['sparsify_time_us']:.1f} us/iteration")
    per_iter = np.mean([r["words_recv"] for r in res])
    print(f"  received words per rank/iteration  : {per_iter:.0f} "
          f"(Theorem 3.1 interval: [{lo:.0f}, {hi:.0f}])")
    print(f"  simulated makespan                 : "
          f"{res.makespan * 1e6:.1f} us")


if __name__ == "__main__":
    main()
