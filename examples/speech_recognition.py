"""Speech recognition (the paper's LSTM / AN4 workload).

Trains the LSTM framewise-phone model on synthetic audio-like sequences
and reports Word Error Rate vs simulated training time for several
allreduce schemes (the Figure 11 experiment at laptop scale).

    python examples/speech_recognition.py [--workers 4] [--iters 24]
"""

import argparse

import numpy as np

from repro.bench.harness import proxy_network
from repro.comm import run_spmd
from repro.data import ShardedLoader, make_an4_like
from repro.nn.models import make_lstm_speech_model
from repro.train import (
    Trainer,
    TrainerConfig,
    collapse_repeats,
    word_error_rate,
)


def worker(comm, scheme, iters):
    train, test = make_an4_like(96, 24, features=12, seq_len=12,
                                n_phones=8, seed=2)
    model = make_lstm_speech_model(features=12, hidden=32, layers=1,
                                   classes=8, seq_len=12, seed=3)
    loader = ShardedLoader(train, 16, comm.rank, comm.size, seed=4)

    def evaluate(m):
        hyp = np.argmax(m.predict(test.x), axis=-1)
        hyps = [collapse_repeats(h) for h in hyp]
        refs = [collapse_repeats(r) for r in test.y]
        return {"wer": word_error_rate(hyps, refs)}

    cfg = TrainerConfig(iterations=iters, scheme=scheme, density=0.02,
                        lr=0.3, eval_every=max(1, iters // 3))
    return Trainer(comm, model, loader, cfg, eval_fn=evaluate).run()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--iters", type=int, default=24)
    args = ap.parse_args()

    print(f"Training LSTM speech model on {args.workers} simulated "
          f"workers, density 2%\n")
    print(f"{'scheme':<12} {'final WER':>10} {'sim time (s)':>14}")
    for scheme in ("dense_ovlp", "gaussiank", "oktopk"):
        rec = run_spmd(args.workers, worker, scheme, args.iters,
                       model=proxy_network())[0]
        wer = rec.final_eval()["wer"]
        print(f"{scheme:<12} {wer:>10.3f} {rec.total_time:>14.4f}")
    print("\nLower WER is better; Ok-Topk reaches dense-level WER at the "
          "fastest time-to-solution (Figure 11 shape).")


if __name__ == "__main__":
    main()
