"""Figure 6 + Section 5.2: selected-value counts and fill-in statistics.

Reproduces two findings:

* Ok-Topk's local and global selections track the accurate count k
  (average deviation ~11% in the paper), while Gaussian-k's adjusted
  threshold still under-selects;
* TopkA/TopkDSA's *output* density expands by an order of magnitude over
  the local density (fill-in; 13.2% from 1% for VGG in the paper).
"""

import numpy as np

from repro.bench import format_table, lstm_proxy, vgg_proxy
from repro.bench.instrumented import output_density_stats, selection_curves


def test_selection_counts_track_k(benchmark, report):
    """The paper reports <11% average deviation over *full* training; the
    over-selection transient of the first epochs (visible in its Figure 6
    too) is excluded by evaluating the second half of the run."""
    def run():
        return {
            "vgg16": selection_curves(vgg_proxy(), density=0.01,
                                      iterations=24, tau_prime=8),
            "lstm": selection_curves(lstm_proxy(), density=0.02,
                                     iterations=24, tau_prime=8),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    def _dev(series, k):
        tail = series[len(series) // 2:]
        return np.mean([abs(s - k) / k for s in tail])

    rows = []
    for name, c in curves.items():
        rows.append([name, c.k,
                     f"{np.mean(c.oktopk_local[12:]):.0f} "
                     f"({_dev(c.oktopk_local, c.k):.1%})",
                     f"{np.mean(c.oktopk_global[12:]):.0f} "
                     f"({_dev(c.oktopk_global, c.k):.1%})",
                     f"{np.mean(c.gaussian[12:]):.0f}"])
    report("fig6_selection", format_table(
        ["model", "accurate k", "oktopk local (dev)", "oktopk global (dev)",
         "gaussiank"],
        rows,
        title="Figure 6: number of selected values (steady-state mean)"))

    for name, c in curves.items():
        assert _dev(c.oktopk_local, c.k) < 0.5, name
        # the global selection is capped at ~k by construction
        assert np.mean(c.oktopk_global[12:]) <= 1.6 * c.k, name


def test_fill_in_expansion(benchmark, report):
    def run():
        return output_density_stats(vgg_proxy(), p=4, density=0.01)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["vgg16 (TopkA output)", f"{stats['local_density']:.1%}",
             f"{stats['output_density']:.1%}",
             f"{stats['expansion']:.1f}x"]]
    report("fig6_fill_in", format_table(
        ["workload", "local density", "output density", "expansion"],
        rows, title="Section 5.2: fill-in of allgather-based reduction"))
    # P=4 workers with barely-overlapping supports: expect ~P-fold growth
    assert stats["expansion"] > 2.0
