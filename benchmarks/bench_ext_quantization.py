"""Extension: sparsification + quantization (Section 2's orthogonal
technique, combined as in SparCML).

Sweeps the value width of the quantized schemes and reports measured
volume, simulated iteration time, and the training-quality cost on the
noisy quadratic."""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd
from repro.optim import TopkSGD

N, K, P = 16384, 256, 8
MODEL = NetworkModel(alpha=1e-6, beta=1e-8)


def _volume_and_time(scheme, **kwargs):
    def prog(comm):
        algo = make_allreduce(scheme, k=K, tau_prime=64, **kwargs)
        rng = np.random.default_rng(11 + comm.rank)
        acc = rng.normal(size=N).astype(np.float32)
        algo.reduce(comm, acc, 1)
        before = int(comm.net.words_recv[comm.rank])
        start = comm.clock
        algo.reduce(comm, acc, 2)
        return (int(comm.net.words_recv[comm.rank]) - before,
                comm.clock - start)

    res = run_spmd(P, prog, model=MODEL)
    return (float(np.mean([r[0] for r in res.results])),
            float(max(r[1] for r in res.results)))


def _train_error(scheme, **kwargs):
    n = 256
    target = np.linspace(-1, 1, n).astype(np.float32)

    def prog(comm):
        algo = make_allreduce(scheme, k=32, **kwargs)
        opt = TopkSGD(algo, 0.2, n)
        w = np.zeros(n, dtype=np.float32)
        rng = np.random.default_rng(comm.rank)
        for _ in range(50):
            noise = rng.normal(0, 0.05, size=n).astype(np.float32)
            opt.step(comm, w, (w - target) + noise)
        return float(np.linalg.norm(w - target))

    return max(run_spmd(4, prog).results)


def test_quantization_sweep(benchmark, report):
    def run():
        out = {"full (32b)": (*_volume_and_time("oktopk"),
                              _train_error("oktopk"))}
        for bits in (16, 8, 4):
            out[f"{bits}-bit"] = (
                *_volume_and_time("oktopk_q", bits=bits),
                _train_error("oktopk_q", bits=bits))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{v:.0f}", f"{t * 1e6:.1f}", f"{e:.3f}"]
            for name, (v, t, e) in data.items()]
    report("ext_quantization", format_table(
        ["values", "words/rank/iter", "iter time (us)", "final L2 error"],
        rows, title="Extension: Ok-Topk value quantization sweep "
                    f"(P={P}, k={K})"))

    vols = {name: v for name, (v, _, _) in data.items()}
    errs = {name: e for name, (_, _, e) in data.items()}
    # volume strictly decreases with fewer bits
    assert vols["4-bit"] < vols["8-bit"] < vols["16-bit"] < vols["full (32b)"]
    # 16-bit is effectively lossless for training quality
    assert errs["16-bit"] <= errs["full (32b)"] + 0.1
