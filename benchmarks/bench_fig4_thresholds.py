"""Figure 4: gradient value distributions and top-k threshold predictions.

Two parts:

1. **Trained proxies** — train each proxy model so Ok-Topk's reused
   threshold is tau'-1 iterations stale, then compare the accurate,
   reused, and Gaussian thresholds on the fresh accumulator.  Claim
   reproduced: the reused threshold stays close to the accurate one
   (threshold-reuse works because gradient statistics drift slowly).

2. **Distribution shape** — the paper's second claim (Gaussian-k severely
   under-selects late in training) is a property of real late-training
   gradients having *lighter tails than a Gaussian fit*.  Our synthetic
   proxies are near-Gaussian mid-training, so we demonstrate this on a
   controlled light-tailed (clipped normal) distribution, the shape the
   paper's Figure 4 histograms show.
"""

import numpy as np

from repro.bench import bert_proxy, format_table, lstm_proxy, vgg_proxy
from repro.bench.instrumented import threshold_snapshot
from repro.sparse import exact_threshold, gaussian_threshold

PROXY_BUILDERS = [("vgg16", vgg_proxy, 0.01), ("lstm", lstm_proxy, 0.02),
                  ("bert", bert_proxy, 0.01)]


def test_threshold_reuse_stays_accurate(benchmark, report):
    def run():
        return {name: threshold_snapshot(builder(), density=density,
                                         iterations=24, tau_prime=8)
                for name, builder, density in PROXY_BUILDERS}

    snaps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, snap in snaps.items():
        rows.append([
            name, snap.k,
            f"{snap.accurate:.2e}", f"{snap.oktopk_reused:.2e}",
            f"{snap.gaussian:.2e}",
            snap.selected_oktopk, snap.selected_gaussian,
        ])
    report("fig4_thresholds", format_table(
        ["model", "k", "accurate th", "oktopk th (stale)", "gaussian th",
         "#sel oktopk", "#sel gaussian"],
        rows, title="Figure 4: threshold predictions (stale age = tau'-1)"))

    for name, snap in snaps.items():
        # reused threshold within 2x of the accurate one...
        assert 0.5 <= snap.oktopk_reused / snap.accurate <= 2.0, name
        # ...selecting a k-like number of values
        assert 0.25 <= snap.selected_oktopk / snap.k <= 4.0, name


def test_gaussian_underestimates_on_light_tails(benchmark, report):
    """Late-training gradient distributions are lighter-tailed than their
    Gaussian fit -> the PPF threshold is too high -> k under-selected
    (by an order of magnitude in the paper)."""
    def run():
        rng = np.random.default_rng(0)
        n, k = 200_000, 2000
        x = np.clip(rng.normal(0, 0.01, size=n), -0.018, 0.018)
        x = x.astype(np.float32)
        t_acc = exact_threshold(x, k)
        t_gauss = gaussian_threshold(x, k)
        sel = int((np.abs(x) >= t_gauss).sum())
        return t_acc, t_gauss, sel, k

    t_acc, t_gauss, sel, k = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["clipped normal (late-training shape)",
             f"{t_acc:.3e}", f"{t_gauss:.3e}", k, sel,
             f"{sel / k:.2f}x"]]
    report("fig4_light_tails", format_table(
        ["distribution", "accurate th", "gaussian th", "target k",
         "gaussian #selected", "ratio"],
        rows, title="Figure 4 (shape): Gaussian fit on light tails"))
    assert t_gauss > t_acc
    assert sel < 0.5 * k  # severe under-selection
