"""Ablation: the space-repartition period tau (Section 5.3, paper uses 64).

Sweeps tau for Ok-Topk on a drifting clustered gradient: small tau pays
the consensus allreduce often; huge tau lets boundaries go stale when the
top-k coordinate distribution drifts.  Also sweeps the threshold
re-evaluation period tau' (Section 3.1.3): small tau' pays the sort every
iteration; large tau' lets the threshold drift off k.
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd

N, K, ITERS = 16384, 256, 24
MODEL = NetworkModel(alpha=1e-6, beta=1e-8)


def _drifting_acc(rank: int, t: int, n: int = N) -> np.ndarray:
    """Top-k cluster slowly slides through the index space."""
    rng = np.random.default_rng(rank * 1000 + t)
    acc = rng.normal(0, 0.01, size=n).astype(np.float32)
    start = (t * n // (4 * ITERS)) % n
    width = n // 8
    hot = np.arange(start, start + width) % n
    acc[hot] += rng.normal(0, 10.0, size=width).astype(np.float32)
    return acc


def _run_tau(p: int, tau: int, tau_prime: int = 8) -> float:
    def prog(comm):
        algo = make_allreduce("oktopk", k=K, tau=tau, tau_prime=tau_prime)
        for t in range(1, ITERS + 1):
            algo.reduce(comm, _drifting_acc(comm.rank, t), t)
        return comm.clock

    return max(run_spmd(p, prog, model=MODEL).results)


def test_tau_sweep(benchmark, report):
    def run():
        return {tau: _run_tau(8, tau) for tau in (1, 4, 16, 64, 10_000)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    best = min(times, key=times.get)
    rows = [[tau if tau < 10_000 else "inf", f"{t * 1e3:.3f}",
             "<-- best" if tau == best else ""]
            for tau, t in times.items()]
    report("ablation_tau", format_table(
        ["tau (repartition period)", "total time (ms)", ""],
        rows, title=f"Ablation: space repartition period "
                    f"(P=8, {ITERS} iters, drifting top-k)"))
    # periodic repartition should beat never repartitioning under drift
    assert min(times[4], times[16], times[64]) <= times[10_000] * 1.05


def test_tau_prime_sweep(benchmark, report):
    """tau' trades sparsification time against selection accuracy."""
    def _run(tau_prime):
        def prog(comm):
            algo = make_allreduce("oktopk", k=K, tau=16,
                                  tau_prime=tau_prime,
                                  selection_guard=1e9)
            devs, spars = [], 0.0
            for t in range(1, ITERS + 1):
                res = algo.reduce(comm, _drifting_acc(comm.rank, t), t)
                devs.append(abs(res.info["selected_local"] - K) / K)
                spars += res.sparsify_time
            return float(np.mean(devs)), spars / ITERS

        return run_spmd(2, prog, model=MODEL)[0]

    def run():
        return {tp: _run(tp) for tp in (1, 4, 16, 64)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[tp, f"{dev:.1%}", f"{spars * 1e6:.1f}"]
            for tp, (dev, spars) in data.items()]
    report("ablation_tau_prime", format_table(
        ["tau' (threshold period)", "mean |selected-k|/k",
         "sparsify time/iter (us)"],
        rows, title="Ablation: threshold re-evaluation period"))
    # fresh thresholds are exact; longer reuse costs selection accuracy
    assert data[1][0] <= data[64][0] + 1e-9
    # ...but amortizes the sort cost
    assert data[64][1] < data[1][1]
