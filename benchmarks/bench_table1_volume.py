"""Table 1: communication overhead of dense and sparse allreduces.

Regenerates the paper's cost table three ways:

1. the symbolic alpha/beta terms (the table as printed in the paper),
2. the analytic model evaluated at a concrete (n, P, k),
3. the *measured* per-rank receive volume of the executed algorithms,

and checks Theorem 3.1's optimality interval for Ok-Topk.
"""

from repro.allreduce import PAPER_ORDER
from repro.bench import format_table
from repro.costmodel import validate_against_measurement

N, P, K = 4096, 8, 64

SYMBOLIC = {
    "dense": ("2n(P-1)/P b", "2(log P) a"),
    "dense_ovlp": ("2n(P-1)/P b (overlapped)", "2(log P) a"),
    "topka": ("2k(P-1) b", "(log P) a"),
    "topkdsa": ("[4k(P-1)/P, (2k+n)(P-1)/P] b", "(P + 2 log P) a"),
    "gtopk": ("4k(log P) b", "2(log P) a"),
    "gaussiank": ("2k(P-1) b", "2(log P) a"),
    "oktopk": ("[2k(P-1)/P, 6k(P-1)/P] b", "(2P + 2 log P) a"),
}


def test_table1_volumes(benchmark, report):
    def run():
        return {s: validate_against_measurement(s, n=N, p=P, k=K)
                for s in PAPER_ORDER}

    cals = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scheme in PAPER_ORDER:
        cal = cals[scheme]
        rows.append([scheme, SYMBOLIC[scheme][0], SYMBOLIC[scheme][1],
                     f"{cal.predicted_words:.0f}",
                     f"{cal.measured_words:.0f}",
                     f"{cal.ratio:.2f}"])
    report("table1_volume", format_table(
        ["algorithm", "bandwidth (paper)", "latency (paper)",
         f"model words (n={N},P={P},k={K})", "measured words", "meas/model"],
        rows, title="Table 1: communication overhead per rank"))

    # Measured volumes track the model (DSA uses a fill-in estimate; allow
    # the widest factor there).
    for scheme in PAPER_ORDER:
        cal = cals[scheme]
        tol = 3.0 if scheme == "topkdsa" else 1.6
        assert cal.ratio < tol, (scheme, cal)
        assert cal.ratio > 0.3, (scheme, cal)


def test_theorem31_interval(benchmark, report):
    """Ok-Topk steady-state volume sits inside [2k, 6k] * (P-1)/P."""
    from repro.costmodel import measure_steady_state_volume

    def run():
        return {p: measure_steady_state_volume("oktopk", N, p, K,
                                               tau_prime=64)
                for p in (4, 8, 16)}

    vols = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for p, v in vols.items():
        lo = 2 * K * (p - 1) / p
        hi = 6 * K * (p - 1) / p
        slack = 8 * p + 64
        rows.append([p, f"{lo:.0f}", f"{v:.0f}", f"{hi:.0f}",
                     "yes" if lo * 0.5 <= v <= hi + slack else "NO"])
        assert v <= hi + slack
    report("theorem31_interval", format_table(
        ["P", "lower 2k(P-1)/P", "measured", "upper 6k(P-1)/P", "in bound"],
        rows, title="Theorem 3.1: Ok-Topk optimality interval (k=64)"))


def test_volume_scaling_with_p(benchmark, report):
    """The scalability story: TopkA grows with P, Ok-Topk does not."""
    from repro.costmodel import measure_steady_state_volume

    def run():
        out = {}
        for scheme in ("topka", "gtopk", "oktopk"):
            kwargs = {"tau_prime": 64} if scheme == "oktopk" else {}
            out[scheme] = [measure_steady_state_volume(scheme, N, p, K,
                                                       **kwargs)
                           for p in (4, 8, 16)]
        return out

    vols = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[s] + [f"{v:.0f}" for v in vs] + [f"{vs[-1] / vs[0]:.2f}x"]
            for s, vs in vols.items()]
    report("volume_scaling", format_table(
        ["algorithm", "P=4", "P=8", "P=16", "growth 4->16"],
        rows, title="Per-rank received words vs P (n=4096, k=64)"))
    assert vols["topka"][-1] / vols["topka"][0] > 3.0   # ~ P growth
    assert vols["oktopk"][-1] / vols["oktopk"][0] < 2.0  # ~ flat
