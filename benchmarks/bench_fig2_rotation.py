"""Figure 2: destination rotation and bucketing in split-and-reduce.

Measures the simulated makespan of Ok-Topk's split-and-reduce exchange
under the naive (hot-spot) and rotated schedules, plus a bucket-size
sweep — the two communication-schedule optimizations of Section 3.1.1.
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd

N, K = 8192, 256
MODEL = NetworkModel(alpha=1e-6, beta=1e-8, gamma=0.0)


def _steady_state_time(p: int, **kwargs) -> float:
    def prog(comm):
        algo = make_allreduce("oktopk", k=K, tau_prime=64, **kwargs)
        rng = np.random.default_rng(5 + comm.rank)
        acc = rng.normal(size=N).astype(np.float32)
        algo.reduce(comm, acc, 1)       # warmup (threshold evaluation)
        start = comm.clock
        algo.reduce(comm, acc, 2)       # steady state
        return comm.clock - start

    return max(run_spmd(p, prog, model=MODEL).results)


def test_rotation_vs_naive(benchmark, report):
    def run():
        out = {}
        for p in (8, 16):
            t_naive = _steady_state_time(p, rotation=False)
            t_rot = _steady_state_time(p, rotation=True)
            out[p] = (t_naive, t_rot)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for p, (t_naive, t_rot) in times.items():
        rows.append([p, f"{t_naive * 1e6:.1f}", f"{t_rot * 1e6:.1f}",
                     f"{t_naive / t_rot:.2f}x"])
        assert t_rot < t_naive, f"rotation must help at P={p}"
    report("fig2_rotation", format_table(
        ["P", "naive schedule (us)", "rotated (us)", "speedup"],
        rows, title="Figure 2: endpoint-congestion avoidance by rotation"))


def test_bucket_size_sweep(benchmark, report):
    def run():
        return {b: _steady_state_time(16, bucket_size=b)
                for b in (1, 2, 4, 8, 15)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[b, f"{t * 1e6:.1f}"] for b, t in times.items()]
    report("fig2_bucketing", format_table(
        ["bucket size", "iteration time (us)"], rows,
        title="Figure 2c: bucketing sweep (P=16)"))
    # bucketing (b>1) should not be slower than fully serialized steps
    assert min(times.values()) <= times[1] * 1.05
