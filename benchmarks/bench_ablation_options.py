"""Ablation: Ok-Topk's individual optimizations toggled one at a time.

Quantifies each design choice called out in DESIGN.md: balanced
partition, destination rotation, bucketing, data balancing — against the
full configuration, on the clustered workload where they matter.
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd

N, K, P = 32768, 512, 16
MODEL = NetworkModel(alpha=1e-6, beta=1e-8, gamma=0.0)

VARIANTS = {
    "full": {},
    "no balanced partition": {"balanced_partition": False},
    "no rotation": {"rotation": False},
    "no bucketing (size 1)": {"bucket_size": 1},
    "no data balancing": {"data_balancing": False},
    "all off": {"balanced_partition": False, "rotation": False,
                "bucket_size": 1, "data_balancing": False},
}


def _clustered_acc(rank: int) -> np.ndarray:
    rng = np.random.default_rng(37 + rank)
    acc = rng.normal(0, 0.01, size=N).astype(np.float32)
    acc[: N // 8] += rng.normal(0, 10.0, size=N // 8).astype(np.float32)
    return acc


def _steady_time(**kwargs) -> float:
    def prog(comm):
        algo = make_allreduce("oktopk", k=K, tau_prime=64, **kwargs)
        acc = _clustered_acc(comm.rank)
        algo.reduce(comm, acc, 1)
        start = comm.clock
        algo.reduce(comm, acc, 2)
        return comm.clock - start

    return max(run_spmd(P, prog, model=MODEL).results)


def test_optimization_ablation(benchmark, report):
    def run():
        return {name: _steady_time(**kw) for name, kw in VARIANTS.items()}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    base = times["full"]
    rows = [[name, f"{t * 1e6:.1f}", f"{t / base:.2f}x"]
            for name, t in times.items()]
    report("ablation_options", format_table(
        ["variant", "iteration time (us)", "vs full"],
        rows, title=f"Ablation: Ok-Topk optimizations (P={P}, "
                    "clustered top-k)"))

    # the full configuration is the fastest (or tied)
    assert base <= min(times.values()) * 1.02
    # removing everything is clearly worse
    assert times["all off"] > 1.2 * base


def test_results_equivalent_across_variants(benchmark):
    """All ablation variants compute the same mathematical result (up to
    float32 summation-order noise: different partitions reduce region
    pieces in different orders)."""
    def run():
        outs = {}
        for name, kw in VARIANTS.items():
            def prog(comm, kw=kw):
                algo = make_allreduce("oktopk", k=K, tau_prime=1, **kw)
                return algo.reduce(comm, _clustered_acc(comm.rank), 1)

            outs[name] = run_spmd(P, prog, model=MODEL)[0].update
        return outs

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    ref = outs["full"].to_dense()
    ref_norm = np.linalg.norm(ref)
    for name, got in outs.items():
        assert abs(got.nnz - outs["full"].nnz) <= 2, name
        diff = np.linalg.norm(got.to_dense() - ref)
        assert diff <= 5e-2 * ref_norm, (name, diff, ref_norm)
