"""Figure 7: load-balancing optimizations of Ok-Topk.

(a) split-and-reduce with the balanced (consensus) partition vs the naive
    equal partition, on gradients whose top-k values cluster in a narrow
    index range (as real layer-wise gradients do);
(b) balance-and-allgatherv with data balancing on vs off, when the global
    top-k values concentrate in one worker's region.

Both effects grow with P, matching the paper's 1.13x-1.75x / 1.12x-1.43x.
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd

N, K = 16384, 256
MODEL = NetworkModel(alpha=1e-6, beta=1e-8, gamma=0.0)


def _clustered_acc(rank: int, n: int = N) -> np.ndarray:
    """Top-k values live in the first eighth of the space on all ranks."""
    rng = np.random.default_rng(23 + rank)
    acc = rng.normal(0, 0.01, size=n).astype(np.float32)
    acc[: n // 8] += rng.normal(0, 10.0, size=n // 8).astype(np.float32)
    return acc


def _reduce_time(p: int, **kwargs) -> float:
    def prog(comm):
        algo = make_allreduce("oktopk", k=K, tau_prime=64, **kwargs)
        acc = _clustered_acc(comm.rank)
        algo.reduce(comm, acc, 1)
        start = comm.clock
        algo.reduce(comm, acc, 2)
        return comm.clock - start

    return max(run_spmd(p, prog, model=MODEL).results)


def test_balanced_vs_naive_reduce(benchmark, report):
    def run():
        out = {}
        for p in (8, 16, 32):
            t_naive = _reduce_time(p, balanced_partition=False)
            t_bal = _reduce_time(p, balanced_partition=True)
            out[p] = (t_naive, t_bal)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, f"{a * 1e6:.1f}", f"{b * 1e6:.1f}", f"{a / b:.2f}x"]
            for p, (a, b) in times.items()]
    report("fig7a_balanced_reduce", format_table(
        ["P", "naive reduce (us)", "balanced reduce (us)", "speedup"],
        rows, title="Figure 7a: balanced split-and-reduce speedup"))

    speedups = [a / b for a, b in times.values()]
    assert all(s > 1.0 for s in speedups)
    # speedup grows with P (the paper's trend)
    assert speedups[-1] >= speedups[0]


def _gather_time(p: int, **kwargs) -> float:
    """Like _reduce_time but in the bandwidth-dominant regime the paper's
    BERT runs occupy (k large relative to P*alpha/beta)."""
    n, k = 1 << 17, 4096

    def prog(comm):
        algo = make_allreduce("oktopk", k=k, tau_prime=64,
                              balanced_partition=False, **kwargs)
        rng = np.random.default_rng(29 + comm.rank)
        acc = rng.normal(0, 0.01, size=n).astype(np.float32)
        acc[: n // 8] += rng.normal(0, 10.0, size=n // 8).astype(np.float32)
        algo.reduce(comm, acc, 1)
        start = comm.clock
        algo.reduce(comm, acc, 2)
        return comm.clock - start

    return max(run_spmd(p, prog, model=MODEL).results)


def test_data_balancing_vs_direct(benchmark, report):
    def run():
        out = {}
        for p in (8, 16, 32):
            t_direct = _gather_time(p, data_balancing=False)
            t_bal = _gather_time(p, data_balancing=True,
                                 balance_trigger=2.0)
            out[p] = (t_direct, t_bal)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, f"{a * 1e6:.1f}", f"{b * 1e6:.1f}", f"{a / b:.2f}x"]
            for p, (a, b) in times.items()]
    report("fig7b_data_balancing", format_table(
        ["P", "direct allgatherv (us)", "balance+allgatherv (us)",
         "speedup"],
        rows, title="Figure 7b: data balancing before allgatherv"))
    # With all global top-k in one region, balancing must help at scale.
    assert times[32][0] / times[32][1] > 1.0
