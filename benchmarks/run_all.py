#!/usr/bin/env python
"""Run the benchmark suite.

* default: every ``bench_*.py`` pytest benchmark (the paper-figure
  reproductions) followed by the wall-clock perf benchmark;
* ``--quick``: a post-merge smoke check — the fast non-slow unit tests,
  the fault-injection, serving and sanitizer smokes
  (``sanitize_smoke.py``: P=4 train + serve bit-identical under
  ``REPRO_SANITIZE=1``, every shipped scheme race-free under a perturbed
  schedule, and the detectors proven live on injected bugs), plus
  ``bench_perf_wallclock.py --quick`` (a couple of minutes total).  The
  quick perf run covers the bucketed and streaming session cases for
  dense/topka/oktopk, so the Ok-Topk shared-state bucketed-stream path is
  exercised on every post-merge smoke; the serving smoke pins the
  P=4 tensor-parallel serving loop's cross-runner bit-identity and the
  size-adaptive allreduce selector.

Perf regression gate
--------------------

``--quick`` runs the perf benchmark into a scratch file
(``BENCH_PERF.quick.json``, not committed — the committed
``BENCH_PERF.json`` baseline is only refreshed by full runs) and compares
its ``speedups`` entries against the committed baseline, **failing** when
any shared entry regressed by more than ``--gate-threshold`` (default
25%).  Re-baselining on purpose?  Pass ``--rebaseline`` to skip the
comparison.

Usage::

    python benchmarks/run_all.py [--quick] [--skip-tests] [--rebaseline]
        [--gate-threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_JSON = REPO_ROOT / "BENCH_PERF.json"


def _run(cmd: list[str], **kwargs) -> int:
    print(f"$ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env, **kwargs).returncode


def check_perf_gate(baseline: dict, fresh: dict,
                    threshold: float = 0.25) -> list[str]:
    """Compare ``speedups`` entries; return the failing keys.

    Only keys present in both files are gated (new benchmarks grow the
    dict freely).  An entry fails when the fresh speedup dropped more
    than ``threshold`` (fractional) below the committed baseline.
    """
    base = baseline.get("speedups", {})
    new = fresh.get("speedups", {})
    failures = []
    for key in sorted(set(base) & set(new)):
        b, f = float(base[key]), float(new[key])
        if b <= 0:
            continue
        drop = 1.0 - f / b
        status = "FAIL" if drop > threshold else "ok"
        print(f"  gate {key}: baseline {b:.2f}x -> fresh {f:.2f}x "
              f"({-drop * 100:+.1f}%) {status}")
        if drop > threshold:
            failures.append(key)
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="post-merge smoke: fast tests + quick perf run")
    ap.add_argument("--skip-tests", action="store_true",
                    help="benchmarks only, no pytest smoke")
    ap.add_argument("--rebaseline", action="store_true",
                    help="skip the perf regression gate (intentional "
                         "re-baselining of BENCH_PERF.json)")
    ap.add_argument("--gate-threshold", type=float, default=0.25,
                    help="fractional speedup regression that fails the "
                         "gate (default 0.25)")
    args = ap.parse_args(argv)

    rc = 0
    if args.quick:
        baseline = None
        if BENCH_JSON.exists() and not args.rebaseline:
            baseline = json.loads(BENCH_JSON.read_text())
        if not args.skip_tests:
            rc |= _run([sys.executable, "-m", "pytest", "-q",
                        "-m", "not slow", "tests"])
        rc |= _run([sys.executable, str(BENCH_DIR / "fault_smoke.py")])
        rc |= _run([sys.executable, str(BENCH_DIR / "serve_smoke.py")])
        rc |= _run([sys.executable, str(BENCH_DIR / "sanitize_smoke.py")])
        quick_json = REPO_ROOT / "BENCH_PERF.quick.json"
        rc |= _run([sys.executable, str(BENCH_DIR / "bench_perf_wallclock.py"),
                    "--quick", "--out", str(quick_json)])
        if baseline is not None and quick_json.exists():
            fresh = json.loads(quick_json.read_text())
            print("perf regression gate (fresh BENCH_PERF.json vs "
                  "committed baseline):")
            failures = check_perf_gate(baseline, fresh,
                                       args.gate_threshold)
            if failures:
                print(f"PERF GATE FAILED: {len(failures)} speedup entr"
                      f"{'y' if len(failures) == 1 else 'ies'} regressed "
                      f"more than {args.gate_threshold * 100:.0f}%: "
                      + ", ".join(failures))
                print("(re-baselining on purpose? rerun with "
                      "--rebaseline)")
                rc |= 1
        return rc

    if not args.skip_tests:
        rc |= _run([sys.executable, "-m", "pytest", "-q", "tests"])
    bench_files = sorted(BENCH_DIR.glob("bench_fig*.py")) + \
        sorted(BENCH_DIR.glob("bench_table*.py")) + \
        sorted(BENCH_DIR.glob("bench_ablation*.py")) + \
        sorted(BENCH_DIR.glob("bench_ext*.py"))
    rc |= _run([sys.executable, "-m", "pytest", "-q", "-p",
                "no:cacheprovider"] + [str(f) for f in bench_files])
    rc |= _run([sys.executable, str(BENCH_DIR / "bench_perf_wallclock.py")])
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
