#!/usr/bin/env python
"""Run the benchmark suite.

* default: every ``bench_*.py`` pytest benchmark (the paper-figure
  reproductions) followed by the wall-clock perf benchmark;
* ``--quick``: a post-merge smoke check — the fast non-slow unit tests plus
  ``bench_perf_wallclock.py --quick`` (a couple of minutes total).  The
  quick perf run covers the bucketed and streaming session cases for
  dense/topka/oktopk, so the Ok-Topk shared-state bucketed-stream path is
  exercised on every post-merge smoke.

Usage::

    python benchmarks/run_all.py [--quick] [--skip-tests]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def _run(cmd: list[str], **kwargs) -> int:
    print(f"$ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env, **kwargs).returncode


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="post-merge smoke: fast tests + quick perf run")
    ap.add_argument("--skip-tests", action="store_true",
                    help="benchmarks only, no pytest smoke")
    args = ap.parse_args(argv)

    rc = 0
    if args.quick:
        if not args.skip_tests:
            rc |= _run([sys.executable, "-m", "pytest", "-q",
                        "-m", "not slow", "tests"])
        rc |= _run([sys.executable, str(BENCH_DIR / "bench_perf_wallclock.py"),
                    "--quick"])
        return rc

    if not args.skip_tests:
        rc |= _run([sys.executable, "-m", "pytest", "-q", "tests"])
    bench_files = sorted(BENCH_DIR.glob("bench_fig*.py")) + \
        sorted(BENCH_DIR.glob("bench_table*.py")) + \
        sorted(BENCH_DIR.glob("bench_ablation*.py")) + \
        sorted(BENCH_DIR.glob("bench_ext*.py"))
    rc |= _run([sys.executable, "-m", "pytest", "-q", "-p",
                "no:cacheprovider"] + [str(f) for f in bench_files])
    rc |= _run([sys.executable, str(BENCH_DIR / "bench_perf_wallclock.py")])
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
