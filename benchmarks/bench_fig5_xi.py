"""Figure 5: the empirical value of ξ (Assumption 1) during training.

Trains each proxy with Ok-Topk at two densities and records ξ every few
iterations.  The paper's observations to reproduce:

* ξ stays bounded (no blow-up) and well below P for all three models,
* higher density gives (generally) smaller ξ.
"""

import numpy as np

from repro.bench import bert_proxy, format_table, lstm_proxy, train_scheme, \
    vgg_proxy

P = 4
ITERS = 12


def _xi_series(proxy, density):
    rec = train_scheme(proxy, "oktopk", P, ITERS, density=density,
                       xi_every=3)
    return [r.xi for r in rec.records if r.xi is not None]


def test_xi_bounded(benchmark, report):
    def run():
        out = {}
        for name, builder in (("vgg16", vgg_proxy), ("lstm", lstm_proxy),
                              ("bert", bert_proxy)):
            out[name] = {d: _xi_series(builder(), d)
                         for d in (0.01, 0.02)}
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, by_density in series.items():
        for d, xs in by_density.items():
            rows.append([name, f"{d:.0%}",
                         f"{np.mean(xs):.3f}", f"{np.max(xs):.3f}",
                         len(xs)])
    report("fig5_xi", format_table(
        ["model", "density", "mean xi", "max xi", "#samples"],
        rows, title=f"Figure 5: empirical xi during training (P={P})"))

    for name, by_density in series.items():
        for d, xs in by_density.items():
            assert all(np.isfinite(x) for x in xs), (name, d)
            # the paper's criterion: xi < P (or not much larger)
            assert np.mean(xs) < 4 * P, (name, d, xs)
