"""Figure 13: BERT pre-training loss vs time.

The paper compares DenseOvlp (lossless), Gaussian-k (fastest baseline)
and Ok-Topk only, because full pre-training is costly; we do the same on
the mini-BERT proxy.  Shape to reproduce: Ok-Topk's loss curve tracks
DenseOvlp's closely while finishing in much less (simulated) time."""

import numpy as np

from repro.bench import bert_proxy, format_table, train_scheme
from repro.bench.harness import proxy_network

SCHEMES = ["dense_ovlp", "gaussiank", "oktopk"]
P = 4
ITERS = 44


def test_bert_loss_vs_time(benchmark, report):
    def run():
        return {s: train_scheme(bert_proxy(), s, P, ITERS,
                                density=0.02, eval_every=11,
                                network=proxy_network())
                for s in SCHEMES}

    recs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for s, rec in recs.items():
        rows.append([s,
                     f"{np.mean(rec.losses[:5]):.3f}",
                     f"{np.mean(rec.losses[-5:]):.3f}",
                     f"{rec.total_time:.4f}"])
    report("fig13_bert_loss", format_table(
        ["scheme", "initial train loss", "final train loss",
         "total sim time (s)"],
        rows, title=f"Figure 13: BERT MLM loss vs time (P={P}, "
                    f"density=2%)"))

    final = {s: float(np.mean(recs[s].losses[-5:])) for s in SCHEMES}
    times = {s: recs[s].total_time for s in SCHEMES}
    for s, rec in recs.items():
        assert final[s] < float(np.mean(rec.losses[:5])), s  # learning
    # Ok-Topk's per-iteration convergence tracks dense
    assert final["oktopk"] <= final["dense_ovlp"] + 1.2
    # the figure's framing is loss *vs time*: at Ok-Topk's total time
    # budget, DenseOvlp has barely started (paper: 150h -> 47h)
    dense_rec = recs["dense_ovlp"]
    cum = dense_rec.times
    done = int(np.searchsorted(cum, times["oktopk"]))
    dense_loss_at_budget = (float(dense_rec.losses[max(0, done - 1)])
                            if done else float(dense_rec.losses[0]))
    assert final["oktopk"] < dense_loss_at_budget
    # and a clear time advantage (paper: >3x vs DenseOvlp on 32 GPUs)
    assert times["oktopk"] * 3 < times["dense_ovlp"]
