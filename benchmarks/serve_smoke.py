#!/usr/bin/env python
"""Post-merge serving smoke (run_all.py --quick): a P=4 tensor-parallel
serving run under open-loop Poisson traffic, checked for the subsystem's
two hard invariants:

* **determinism** — the report (request records, percentiles, goodput,
  checksum, algorithm provenance) is bit-identical across the ``coop``,
  ``gen`` and ``threads`` runners and the fused/unfused collective paths;
* **adaptive selection** — the size-adaptive allreduce selector matches
  or beats both fixed algorithm choices on the mixed workload, and its
  provenance shows both the latency-optimal (decode) and
  bandwidth-optimal (prefill) schedules actually ran;
* **crash recovery** — a mid-run rank crash at P=4 shrinks the group to
  3 survivors, re-enqueues the in-flight requests and finishes them, with
  goodput on both sides of the failure and the full report still
  bit-identical across every runner x fused combination.

Everything is simulated time; the whole smoke takes a few seconds.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.comm.faults import FaultPlan, RankCrash  # noqa: E402
from repro.comm.fused import LATENCY_OPTIMAL  # noqa: E402
from repro.serve import ServeConfig, simulate_serving  # noqa: E402

CFG = ServeConfig(p=4, rate=2000.0, n_requests=24, prompt_tokens=96,
                  output_tokens=8, max_batch_size=8, seed=0)


def _signature(rep):
    # "unfused-small" is a coop+fused-only wall-clock provenance note,
    # excluded from the cross-runner semantic comparison
    algos = {k: v for k, v in rep.algorithms.items()
             if not k.endswith("/unfused-small")}
    return (rep.requests, rep.summary(), rep.steps, rep.events, algos)


def main() -> int:
    base = None
    for runner in ("coop", "gen", "threads"):
        for fused in (True, False):
            rep = simulate_serving(CFG, runner=runner, fused=fused)
            sig = (rep.requests, rep.summary(), rep.steps, rep.algorithms)
            if base is None:
                base = sig
            elif sig != base:
                print(f"FAIL: serving report diverged under "
                      f"runner={runner} fused={fused}")
                return 1
    print(f"determinism: bit-identical across coop/gen/threads x "
          f"fused/unfused (checksum {base[1]['checksum']:.6f})")

    makespans = {}
    for alg in ("latency", "bandwidth", "adaptive"):
        makespans[alg] = simulate_serving(
            replace(CFG, algorithm=alg)).makespan
    print("makespans: " + "  ".join(
        f"{alg}={t * 1e3:.3f}ms" for alg, t in makespans.items()))
    if makespans["adaptive"] > makespans["latency"] or \
            makespans["adaptive"] > makespans["bandwidth"]:
        print("FAIL: adaptive selector lost to a fixed algorithm choice")
        return 1

    rep = simulate_serving(CFG)
    want = (f"allreduce/{LATENCY_OPTIMAL}/adaptive",
            "allreduce/rabenseifner/adaptive")
    missing = [k for k in want if k not in rep.algorithms]
    if missing:
        print(f"FAIL: expected adaptive schedules missing: {missing}")
        return 1

    # crash recovery under live traffic: kill a rank mid-decode of the
    # second admission cohort — the first cohort's completions are
    # already committed (goodput measurable on both sides) and the second
    # is in flight (its tokens die and must be re-enqueued)
    done = sorted(set(r.token_times[-1] for r in rep.requests))
    second = next(r for r in rep.requests
                  if r.token_times[0] > done[0] and len(r.token_times) >= 2)
    crash_t = 0.5 * (second.token_times[0] + second.token_times[1])
    plan = FaultPlan(crashes=[RankCrash(rank=1, time=crash_t)],
                     detect_timeout=1e-4)
    crash_base = None
    for runner in ("coop", "gen", "threads"):
        for fused in (True, False):
            crashed = simulate_serving(CFG, faults=plan,
                                       runner=runner, fused=fused)
            sig = _signature(crashed)
            if crash_base is None:
                crash_base = crashed
                base_sig = sig
            elif sig != base_sig:
                print(f"FAIL: crash-recovery report diverged under "
                      f"runner={runner} fused={fused}")
                return 1
    s = crash_base.summary()
    (ev,) = crash_base.events
    if (ev["old_size"], ev["new_size"]) != (4, 3) or not ev["requeued"]:
        print(f"FAIL: expected a 4 -> 3 shrink with re-enqueues, got {ev}")
        return 1
    if s["availability"] != 1.0 or s["goodput_tokens_per_s_pre"] <= 0 \
            or s["goodput_tokens_per_s_post"] <= 0:
        print(f"FAIL: crash recovery lost requests or goodput: "
              f"availability={s['availability']} "
              f"pre={s['goodput_tokens_per_s_pre']} "
              f"post={s['goodput_tokens_per_s_post']}")
        return 1
    print(f"crash recovery: rank 1 died at t={crash_t * 1e3:.3f}ms, "
          f"shrank 4 -> 3, {len(ev['requeued'])} re-enqueued, "
          f"availability 100%, recovery {s['recovery_time'] * 1e3:.3f}ms, "
          f"bit-identical across runners")

    print(rep.format_report())
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
