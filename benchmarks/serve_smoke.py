#!/usr/bin/env python
"""Post-merge serving smoke (run_all.py --quick): a P=4 tensor-parallel
serving run under open-loop Poisson traffic, checked for the subsystem's
two hard invariants:

* **determinism** — the report (request records, percentiles, goodput,
  checksum, algorithm provenance) is bit-identical across the ``coop``
  and ``threads`` runners and the fused/unfused collective paths;
* **adaptive selection** — the size-adaptive allreduce selector matches
  or beats both fixed algorithm choices on the mixed workload, and its
  provenance shows both the latency-optimal (decode) and
  bandwidth-optimal (prefill) schedules actually ran.

Everything is simulated time; the whole smoke takes a few seconds.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.comm.fused import LATENCY_OPTIMAL  # noqa: E402
from repro.serve import ServeConfig, simulate_serving  # noqa: E402

CFG = ServeConfig(p=4, rate=2000.0, n_requests=24, prompt_tokens=96,
                  output_tokens=8, max_batch_size=8, seed=0)


def main() -> int:
    base = None
    for runner in ("coop", "threads"):
        for fused in (True, False):
            rep = simulate_serving(CFG, runner=runner, fused=fused)
            sig = (rep.requests, rep.summary(), rep.steps, rep.algorithms)
            if base is None:
                base = sig
            elif sig != base:
                print(f"FAIL: serving report diverged under "
                      f"runner={runner} fused={fused}")
                return 1
    print(f"determinism: bit-identical across coop/threads x fused/unfused "
          f"(checksum {base[1]['checksum']:.6f})")

    makespans = {}
    for alg in ("latency", "bandwidth", "adaptive"):
        makespans[alg] = simulate_serving(
            replace(CFG, algorithm=alg)).makespan
    print("makespans: " + "  ".join(
        f"{alg}={t * 1e3:.3f}ms" for alg, t in makespans.items()))
    if makespans["adaptive"] > makespans["latency"] or \
            makespans["adaptive"] > makespans["bandwidth"]:
        print("FAIL: adaptive selector lost to a fixed algorithm choice")
        return 1

    rep = simulate_serving(CFG)
    want = (f"allreduce/{LATENCY_OPTIMAL}/adaptive",
            "allreduce/rabenseifner/adaptive")
    missing = [k for k in want if k not in rep.algorithms]
    if missing:
        print(f"FAIL: expected adaptive schedules missing: {missing}")
        return 1
    print(rep.format_report())
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
