"""Extension: commodity-network study (the paper's conclusion claim).

"The throughput improvement would be more significant on commodity
clusters with low-bandwidth network" — evaluated with the analytic model
at BERT scale across three network presets, and with the executed
algorithms on the simulated Aries vs commodity fabrics.
"""

import numpy as np

from repro.allreduce import make_allreduce
from repro.bench import format_table
from repro.comm import NetworkModel, run_spmd
from repro.costmodel import PAPER_COMPUTE_SECONDS, iteration_seconds

N_BERT = 133_547_324
K_BERT = N_BERT // 100

PRESETS = {
    "infiniband": NetworkModel.infiniband(),
    "aries (Piz Daint raw)": NetworkModel.aries(),
    "commodity ethernet": NetworkModel.commodity(),
}


def test_speedup_grows_on_slower_networks(benchmark, report):
    def run():
        out = {}
        compute = PAPER_COMPUTE_SECONDS["bert"] * 8
        for name, net in PRESETS.items():
            dense = iteration_seconds("dense", N_BERT, 64, K_BERT,
                                      net, compute_seconds=compute,
                                      tau_prime=128)["total"]
            ok = iteration_seconds("oktopk", N_BERT, 64, K_BERT, net,
                                   compute_seconds=compute,
                                   tau_prime=128)["total"]
            out[name] = (dense, ok, dense / ok)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{d:.3f}", f"{o:.3f}", f"{s:.2f}x"]
            for name, (d, o, s) in data.items()]
    report("ext_commodity", format_table(
        ["network", "Dense (s/iter)", "Ok-Topk (s/iter)", "speedup"],
        rows, title="Conclusion claim: Ok-Topk speedup vs network "
                    "(BERT, 64 GPUs, density=1%)"))

    speedups = [s for _, _, s in data.values()]
    # monotone: slower network -> larger Ok-Topk advantage
    assert speedups[0] < speedups[1] < speedups[2]


def test_executed_volume_is_network_independent(benchmark, report):
    """Sanity: volumes depend on the algorithm, times on the network."""
    n, p, k = 4096, 8, 64

    def _run(net):
        def prog(comm):
            algo = make_allreduce("oktopk", k=k, tau_prime=64)
            rng = np.random.default_rng(3 + comm.rank)
            acc = rng.normal(size=n).astype(np.float32)
            algo.reduce(comm, acc, 1)
            before = int(comm.net.words_recv[comm.rank])
            start = comm.clock
            algo.reduce(comm, acc, 2)
            return (int(comm.net.words_recv[comm.rank]) - before,
                    comm.clock - start)

        res = run_spmd(p, prog, model=net)
        vols = [r[0] for r in res.results]
        times = [r[1] for r in res.results]
        return float(np.mean(vols)), float(max(times))

    def run():
        return {name: _run(net) for name, net in PRESETS.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{v:.0f}", f"{t * 1e6:.1f}"]
            for name, (v, t) in data.items()]
    report("ext_commodity_executed", format_table(
        ["network", "words/rank/iter", "iteration time (us)"],
        rows, title="Executed Ok-Topk across network presets"))

    vols = [v for v, _ in data.values()]
    assert max(vols) == min(vols)  # identical traffic
    times = [t for _, t in data.values()]
    assert times[2] > times[1] > times[0]  # slower fabric, slower iter
