#!/usr/bin/env python
"""Fast fault-injection smoke (part of ``run_all.py --quick``).

One P=4 elastic training run under a combined fault plan — a compute
straggler, a persistent slow link and an iteration-pinned crash — checked
for the three properties the fault subsystem guarantees:

* the run survives the planned crash (shrinks 4 -> 3 and resumes),
* the same plan produces the bit-identical run on both SPMD runners,
* training keeps converging after the shrink (final loss < first loss).

Exits non-zero on any violation.  Takes a few seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import perf_proxy, train_scheme  # noqa: E402
from repro.bench.harness import proxy_network  # noqa: E402
from repro.comm.faults import (ComputeStraggler, FaultPlan,  # noqa: E402
                               LinkSlowdown, RankCrash)

ITERS = 8
P = 4


def main() -> int:
    plan = FaultPlan(
        links=[LinkSlowdown(rank=3, factor=4.0)],
        stragglers=[ComputeStraggler(rank=2, factor=4.0)],
        crashes=[RankCrash(rank=1, iteration=4)],
    )
    recs = {}
    for runner in ("coop", "threads"):
        import os
        os.environ["REPRO_SPMD_RUNNER"] = runner
        recs[runner] = train_scheme(
            perf_proxy(), "oktopk", P, ITERS, density=0.05,
            network=proxy_network(), faults=plan, elastic=True)

    ok = True
    for runner, rec in recs.items():
        events = rec.events
        losses = [r.loss for r in rec.records]
        survived = (len(rec.records) == ITERS and len(events) == 1
                    and events[0]["failed_ranks"] == [1]
                    and events[0]["new_size"] == P - 1)
        converged = losses[-1] < losses[0]
        print(f"{runner:7s}: iters={len(rec.records)} events={events} "
              f"loss {losses[0]:.4f} -> {losses[-1]:.4f}")
        if not survived:
            print(f"  FAIL({runner}): run did not survive the planned "
                  f"crash as expected")
            ok = False
        if not converged:
            print(f"  FAIL({runner}): loss did not decrease after the "
                  f"shrink")
            ok = False

    a, b = recs["coop"], recs["threads"]
    same = ([r.loss for r in a.records] == [r.loss for r in b.records]
            and [r.iteration_time for r in a.records]
            == [r.iteration_time for r in b.records]
            and a.events == b.events)
    if not same:
        print("FAIL: coop and threads runners diverged under the same "
              "fault plan")
        ok = False
    else:
        print("runners  : bit-identical under the fault plan")

    print("fault smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
