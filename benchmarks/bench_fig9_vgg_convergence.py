"""Figure 9: top-1 test accuracy vs training time, VGG-16 proxy.

Runs the executed proxy to convergence-ish with four schemes and prints
(final accuracy, total simulated time, time to reach an accuracy
threshold).  Shape to reproduce: Ok-Topk reaches dense-level accuracy at
the fastest time-to-solution."""

from repro.bench import format_table, train_scheme, vgg_proxy
from repro.bench.harness import proxy_network

SCHEMES = ["dense_ovlp", "topka", "gaussiank", "oktopk"]
P = 4
ITERS = 40


def _time_to(rec, key, threshold):
    for t, v in rec.eval_curve(key):
        if v >= threshold:
            return t
    return float("inf")


def test_vgg_accuracy_vs_time(benchmark, report):
    def run():
        return {s: train_scheme(vgg_proxy(), s, P, ITERS,
                                density=0.05, eval_every=10,
                                network=proxy_network())
                for s in SCHEMES}

    recs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for s, rec in recs.items():
        acc = rec.final_eval()["acc"]
        rows.append([s, f"{acc:.3f}", f"{rec.total_time:.4f}",
                     f"{_time_to(rec, 'acc', 0.5):.4f}"])
    report("fig9_vgg_convergence", format_table(
        ["scheme", "final top-1 acc", "total sim time (s)",
         "time to 50% acc (s)"],
        rows,
        title=f"Figure 9: VGG accuracy vs time (P={P}, density=5%)"))

    accs = {s: recs[s].final_eval()["acc"] for s in SCHEMES}
    times = {s: recs[s].total_time for s in SCHEMES}
    # accuracy of Ok-Topk close to dense (error feedback catches up)
    assert accs["oktopk"] >= accs["dense_ovlp"] - 0.25
    # much faster than the dense baseline (the headline claim); the
    # ordering among sparse schemes at P=4 proxy scale is constant-bound,
    # the paper-scale ordering is established by bench_fig8/10/12
    assert times["oktopk"] < times["dense_ovlp"]
    assert times["oktopk"] <= 2.0 * min(times.values())
