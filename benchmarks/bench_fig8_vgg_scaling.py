"""Figure 8: weak scaling of VGG-16 on Cifar-10, density 2%.

Two tiers (DESIGN.md section 4):

* executed proxy: real training of the width-reduced VGG on simulated
  ranks (P = 4, 8), measuring the per-iteration breakdown
  (sparsification / communication / computation+io);
* paper scale: the calibrated analytic model at n = 14,728,266 and the
  paper's P = 16 and 32, printed as the same bar rows.
"""

from repro.allreduce import PAPER_ORDER
from repro.bench import format_table, paper_scale_breakdown, train_scheme, \
    vgg_proxy
from repro.bench.harness import proxy_network

SCHEMES = PAPER_ORDER


def test_vgg_weak_scaling_paper_scale(benchmark, report):
    def run():
        return {p: {s: paper_scale_breakdown("vgg16", s, p)
                    for s in SCHEMES} for p in (16, 32)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by_scheme in data.items():
        rows = [[s, f"{b['sparsification']:.3f}",
                 f"{b['communication']:.3f}", f"{b['computation+io']:.3f}",
                 f"{b['total']:.3f}"] for s, b in by_scheme.items()]
        lines.append(format_table(
            ["scheme", "sparsification (s)", "communication (s)",
             "computation+io (s)", "total (s)"],
            rows, title=f"Figure 8 (paper scale): VGG-16, {p} GPUs, "
                        f"density=2%"))
    report("fig8_vgg_paper_scale", "\n\n".join(lines))

    for p, by in data.items():
        # Ok-Topk has the lowest communication cost of the sparse schemes
        comm = {s: b["communication"] for s, b in by.items()}
        assert comm["oktopk"] == min(comm.values()), (p, comm)
        # allgather-based schemes roughly double their comm from 16->32
    growth = (data[32]["topka"]["communication"]
              / data[16]["topka"]["communication"])
    assert growth > 1.7
    ok_growth = (data[32]["oktopk"]["communication"]
                 / data[16]["oktopk"]["communication"])
    assert ok_growth < 1.3


def test_vgg_weak_scaling_executed(benchmark, report):
    def run():
        out = {}
        for p in (4, 8):
            by = {}
            for scheme in ("dense", "dense_ovlp", "topka", "gaussiank",
                           "oktopk"):
                rec = train_scheme(vgg_proxy(), scheme, p, 4,
                                   density=0.02,
                                   network=proxy_network())
                by[scheme] = rec.mean_breakdown(skip=1)
            out[p] = by
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by in data.items():
        rows = [[s, f"{b['sparsification'] * 1e3:.3f}",
                 f"{b['communication'] * 1e3:.3f}",
                 f"{b['computation+io'] * 1e3:.3f}",
                 f"{b['total'] * 1e3:.3f}"] for s, b in by.items()]
        lines.append(format_table(
            ["scheme", "sparsify (ms)", "comm (ms)", "compute+io (ms)",
             "total (ms)"],
            rows, title=f"Figure 8 (executed proxy): VGG, P={p}, "
                        f"density=2%, bandwidth-scaled network"))
    report("fig8_vgg_executed", "\n\n".join(lines))

    for p, by in data.items():
        # headline: Ok-Topk beats the dense schemes end to end
        assert by["oktopk"]["total"] < by["dense"]["total"], p
    # TopkA's comm grows with P while Ok-Topk's stays ~flat
    topka_growth = (data[8]["topka"]["communication"]
                    / data[4]["topka"]["communication"])
    ok_growth = (data[8]["oktopk"]["communication"]
                 / data[4]["oktopk"]["communication"])
    assert topka_growth > ok_growth
