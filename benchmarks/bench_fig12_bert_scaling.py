"""Figure 12: weak scaling of BERT pre-training, density 1%, up to 256
GPUs — the paper's headline result (3.29x-12.95x over all baselines on
256 GPUs, 76.3% parallel efficiency from 32 to 256).
"""

from repro.allreduce import PAPER_ORDER
from repro.bench import bert_proxy, format_table, paper_scale_breakdown, \
    train_scheme
from repro.bench.harness import proxy_network


def test_bert_weak_scaling_paper_scale(benchmark, report):
    def run():
        return {p: {s: paper_scale_breakdown("bert", s, p, tau_prime=128)
                    for s in PAPER_ORDER} for p in (32, 64, 256)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by in data.items():
        rows = [[s, f"{b['sparsification']:.3f}",
                 f"{b['communication']:.3f}", f"{b['computation+io']:.3f}",
                 f"{b['total']:.3f}"] for s, b in by.items()]
        lines.append(format_table(
            ["scheme", "sparsification (s)", "communication (s)",
             "computation+io (s)", "total (s)"],
            rows, title=f"Figure 12 (paper scale): BERT, {p} GPUs, "
                        f"density=1%"))
    totals256 = {s: data[256][s]["total"] for s in PAPER_ORDER}
    speedups = {s: totals256[s] / totals256["oktopk"]
                for s in PAPER_ORDER if s != "oktopk"}
    lines.append(format_table(
        ["baseline", "Ok-Topk speedup at 256 GPUs"],
        [[s, f"{v:.2f}x"] for s, v in sorted(speedups.items(),
                                             key=lambda kv: kv[1])],
        title="Figure 12: Ok-Topk speedups on 256 GPUs "
              "(paper: 3.29x-12.95x)"))

    # Weak-scaling parallel efficiency of Ok-Topk from 32 to 256 GPUs
    eff = data[32]["oktopk"]["total"] / data[256]["oktopk"]["total"]
    lines.append(f"\nOk-Topk weak-scaling efficiency 32->256: {eff:.1%} "
                 "(paper: 76.3%)")
    report("fig12_bert_paper_scale", "\n\n".join(lines))

    assert min(speedups.values()) > 1.5
    assert max(speedups.values()) < 60.0
    # dense & allgather-based baselines land in the paper's band
    assert 2.0 < speedups["dense_ovlp"] < 20.0
    assert eff > 0.5


def test_bert_weak_scaling_executed(benchmark, report):
    def run():
        out = {}
        for p in (4, 8):
            by = {}
            for scheme in ("dense_ovlp", "topka", "gaussiank", "oktopk"):
                rec = train_scheme(bert_proxy(), scheme, p, 4,
                                   density=0.01, network=proxy_network())
                by[scheme] = rec.mean_breakdown(skip=1)
            out[p] = by
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by in data.items():
        rows = [[s, f"{b['sparsification'] * 1e3:.3f}",
                 f"{b['communication'] * 1e3:.3f}",
                 f"{b['computation+io'] * 1e3:.3f}",
                 f"{b['total'] * 1e3:.3f}"] for s, b in by.items()]
        lines.append(format_table(
            ["scheme", "sparsify (ms)", "comm (ms)", "compute+io (ms)",
             "total (ms)"],
            rows, title=f"Figure 12 (executed proxy): BERT, P={p}, "
                        f"density=1%"))
    report("fig12_bert_executed", "\n\n".join(lines))

    for p, by in data.items():
        assert by["oktopk"]["communication"] <= \
            by["topka"]["communication"], p
