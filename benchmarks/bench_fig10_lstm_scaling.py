"""Figure 10: weak scaling of LSTM on AN4, density 2% (paper P=32, 64)."""

from repro.allreduce import PAPER_ORDER
from repro.bench import format_table, lstm_proxy, paper_scale_breakdown, \
    train_scheme
from repro.bench.harness import proxy_network


def test_lstm_weak_scaling_paper_scale(benchmark, report):
    def run():
        return {p: {s: paper_scale_breakdown("lstm", s, p)
                    for s in PAPER_ORDER} for p in (32, 64)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by in data.items():
        rows = [[s, f"{b['sparsification']:.3f}",
                 f"{b['communication']:.3f}", f"{b['computation+io']:.3f}",
                 f"{b['total']:.3f}"] for s, b in by.items()]
        lines.append(format_table(
            ["scheme", "sparsification (s)", "communication (s)",
             "computation+io (s)", "total (s)"],
            rows, title=f"Figure 10 (paper scale): LSTM, {p} GPUs, "
                        f"density=2%"))
    report("fig10_lstm_paper_scale", "\n\n".join(lines))

    for p, by in data.items():
        totals = {s: b["total"] for s, b in by.items()}
        assert totals["oktopk"] == min(totals.values()), (p, totals)
    # Paper: on 64 GPUs Ok-Topk outperforms others by 1.34x-7.71x
    t64 = {s: b["total"] for s, b in data[64].items()}
    ratios = sorted(t64[s] / t64["oktopk"] for s in PAPER_ORDER
                    if s != "oktopk")
    assert ratios[0] > 1.0, ratios
    assert ratios[-1] < 30.0, ratios


def test_lstm_weak_scaling_executed(benchmark, report):
    def run():
        out = {}
        for p in (4, 8):
            by = {}
            for scheme in ("dense_ovlp", "topka", "oktopk"):
                rec = train_scheme(lstm_proxy(), scheme, p, 4,
                                   density=0.02, network=proxy_network())
                by[scheme] = rec.mean_breakdown(skip=1)
            out[p] = by
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for p, by in data.items():
        rows = [[s, f"{b['sparsification'] * 1e3:.3f}",
                 f"{b['communication'] * 1e3:.3f}",
                 f"{b['computation+io'] * 1e3:.3f}",
                 f"{b['total'] * 1e3:.3f}"] for s, b in by.items()]
        lines.append(format_table(
            ["scheme", "sparsify (ms)", "comm (ms)", "compute+io (ms)",
             "total (ms)"],
            rows, title=f"Figure 10 (executed proxy): LSTM, P={p}"))
    report("fig10_lstm_executed", "\n\n".join(lines))
    assert data[8]["oktopk"]["total"] < data[8]["dense_ovlp"]["total"]
