#!/usr/bin/env python
"""Wall-clock perf benchmark of the simulator itself (not simulated time).

Seeds and extends the repo's perf trajectory: times ``train_scheme`` for
{dense, gtopk, oktopk} at P in {4, 16} on the comm-dominated ``perf_mlp``
probe — under the cooperative runner with the **fused collective fast
path** (the default), the per-message **reference** path
(``REPRO_FUSED=0``) and the legacy **threaded** runner — plus
bucketed-session and streaming-session cases for {dense, topka, oktopk},
Ok-Topk **scale cases at P in {64, 128}** on all three engines (coop /
generator / threads, one sample per rank),
a pure comm-layer message-storm microbenchmark at P in {16, 64}, and a
**per-phase breakdown** (model compute / selection / comm layer / engine
hand-offs / fused dispatch) so a regression in any future run is
attributable to a specific layer.  Writes everything to
``BENCH_PERF.json`` (repo root) and prints tables.

Measurement notes
-----------------
* CPU time (``time.process_time``), min over ``--reps``, to damp the noisy
  shared-host scheduler; on this 1-CPU container CPU ~= wall.  Run-to-run
  drift of +-10-15% on the train rows is normal on this host — the
  microbenches (storm, barrier, hand-off) are the stable signals.
* ``speedup_coop_vs_threads`` compares the cooperative runner (fused
  unless ``--no-fused``) against the threaded fallback;
  ``speedup_fused_vs_reference`` isolates the fused fast path against the
  per-message path on the same engine.  ``meta.fused`` and the per-entry
  ``fused_path`` record which path produced each number.
* The PR-3 snapshot recorded dense P=4 coop at 0.77x of threads; that
  number does not reproduce at PR-4/PR-5 HEAD (the same code measures
  ~1.0-1.1x) — it was shared-host noise, not a code regression.  The
  structural cost it pointed at is real, though: every blocked receive is
  a parked-thread hand-off (see the ``engine_handoff`` breakdown row),
  which is exactly what the fused fast path removes (one rendezvous per
  *collective* instead of one hand-off per blocked receive — compare the
  ``fused_barrier`` row against ``reference_barrier``).

Usage::

    python benchmarks/bench_perf_wallclock.py [--quick] [--reps N]
        [--out F] [--no-fused]
"""

from __future__ import annotations

# repro-lint: ignore-file[RL001] -- this harness *measures* wall/CPU time by
# design (process_time best-of-N, timestamped report); nothing here feeds
# simulated state.
import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, perf_proxy, train_scheme  # noqa: E402
from repro.bench.harness import proxy_network  # noqa: E402
from repro.comm import FUSED_ENV, collectives as coll, fusion_enabled, \
    run_spmd  # noqa: E402
from repro.sparse import COOVector, exact_topk  # noqa: E402

SCHEMES = ("dense", "gtopk", "oktopk")
RUNNERS = ("coop", "threads")


def _min_time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
    return best


# ---------------------------------------------------------------------------
# train_scheme timings
# ---------------------------------------------------------------------------
def time_train_scheme(p: int, scheme: str, runner: str, iters: int,
                      reps: int, bucket_size: int | None = None,
                      overlap_mode: str = "analytic",
                      fused: bool | None = None) -> float:
    # P <= 16 keeps the historical probe (n_train=64, global_batch=16) so
    # the perf trajectory stays comparable across PRs; larger worlds need
    # global_batch >= P (ShardedLoader), so they run one sample per rank.
    proxy = (perf_proxy() if p <= 16
             else perf_proxy(n_train=p, global_batch=p))

    def run():
        os.environ["REPRO_SPMD_RUNNER"] = runner
        if fused is not None:
            os.environ[FUSED_ENV] = "1" if fused else "0"
        try:
            train_scheme(proxy, scheme, p, iters, density=0.02,
                         bucket_size=bucket_size,
                         overlap_mode=overlap_mode,
                         network=proxy_network())
        finally:
            os.environ.pop("REPRO_SPMD_RUNNER", None)
            if fused is not None:
                os.environ.pop(FUSED_ENV, None)

    run()  # warmup (imports, data caches)
    return _min_time(run, reps)


# ---------------------------------------------------------------------------
# comm-layer microbenchmark: COO message storm (the oktopk exchange shape)
# ---------------------------------------------------------------------------
def _storm_prog(comm, iters):
    p, r = comm.size, comm.rank
    vec = COOVector.from_arrays(10_000, np.arange(50, dtype=np.int32),
                                np.ones(50, dtype=np.float32))
    for _ in range(iters):
        reqs = []
        for s in range(1, p):
            reqs.append(comm.irecv((r - s) % p, 5))
            reqs.append(comm.isend(vec, (r + s) % p, 5))
        comm.waitall(reqs)
    return comm.clock


def time_storm(p: int, runner: str, iters: int, reps: int) -> dict:
    def run():
        run_spmd(p, _storm_prog, iters, runner=runner)

    run()
    secs = _min_time(run, reps)
    nmsg = p * (p - 1) * iters
    return {"seconds": secs, "messages": nmsg,
            "us_per_message": secs / nmsg * 1e6}


# ---------------------------------------------------------------------------
# Per-phase breakdown: attributable costs of one simulated iteration
# ---------------------------------------------------------------------------
def _barrier_prog(comm, iters):
    for _ in range(iters):
        coll.barrier(comm)
    return comm.clock


def _handoff_prog(comm, iters):
    # Strict alternation: every receive misses, so each round trip is two
    # parked-thread hand-offs — the engine's context-switch cost, isolated.
    for _ in range(iters):
        if comm.rank == 0:
            comm.recv(1, tag=6)
            comm.send(None, 1, tag=6)
        else:
            comm.send(None, 0, tag=6)
            comm.recv(0, tag=6)
    return comm.clock


def phase_breakdown(reps: int, quick: bool) -> dict:
    """Wall-clock cost of each layer a ``train_scheme`` iteration touches:
    model compute, top-k selection, the comm layer, engine hand-offs and
    the fused-collective dispatch.  All numbers are microseconds."""
    proxy = perf_proxy()
    train, _ = proxy.make_splits()
    model = proxy.make_model()
    x, y = train.x[:1], train.y[:1]
    n_model = model.nparams
    k = max(1, int(0.02 * n_model))
    grad = np.random.default_rng(0).standard_normal(n_model).astype(
        np.float32)

    iters = 60 if quick else 200
    compute = _min_time(
        lambda: [model.loss_and_grad(x, y) for _ in range(iters)], reps)
    selection = _min_time(
        lambda: [exact_topk(grad, k) for _ in range(iters)], reps)

    biters = 100 if quick else 400
    out: dict = {
        "model_compute_us": compute / iters * 1e6,
        "selection_topk_us": selection / iters * 1e6,
    }
    for name, fused in (("fused_barrier", True), ("reference_barrier",
                                                  False)):
        def run(fused=fused):
            run_spmd(16, _barrier_prog, biters, runner="coop", fused=fused)

        run()
        out[f"{name}_p16_us"] = _min_time(run, reps) / biters * 1e6

    hiters = 500 if quick else 2000

    def run_handoff():
        run_spmd(2, _handoff_prog, hiters, runner="coop")

    run_handoff()
    # two hand-offs + two zero-byte messages per iteration
    out["engine_handoff_us"] = _min_time(run_handoff, reps) / (
        2 * hiters) * 1e6
    return out


# ---------------------------------------------------------------------------
# ---------------------------------------------------------------------------
# Fault-plan degradation (simulated time, not wall-clock)
# ---------------------------------------------------------------------------
def fault_degradation(iters: int) -> dict:
    """Makespan degradation under a seeded p99 straggler + persistent slow
    link (``FaultPlan.straggler_skew``) for dense vs Ok-Topk at P=4.

    These are *simulated* seconds (deterministic — no reps needed): the
    pinned qualitative result is that the faulted run is strictly slower
    for both schemes (``degradation > 1``), while the no-plan run is
    byte-identical to a run without the fault machinery.
    """
    from repro.comm.faults import FaultPlan

    proxy = perf_proxy()
    plan = FaultPlan.straggler_skew(4, seed=42)
    out: dict = {"plan": plan.to_dict(), "p": 4, "iterations": iters}
    for scheme in ("dense", "oktopk"):
        clean = train_scheme(proxy, scheme, 4, iters, density=0.02,
                             network=proxy_network()).total_time
        faulted = train_scheme(proxy, scheme, 4, iters, density=0.02,
                               network=proxy_network(),
                               faults=plan).total_time
        out[scheme] = {
            "clean_sim_s": clean,
            "faulted_sim_s": faulted,
            "degradation": faulted / clean,
        }
    return out


# ---------------------------------------------------------------------------
# Serving regimes (simulated time, not wall-clock)
# ---------------------------------------------------------------------------
def serving_regimes(quick: bool) -> dict:
    """p50/p99 latency and goodput of the P=4 serving loop, per allreduce
    algorithm choice, in a latency-bound (decode-heavy), a bandwidth-bound
    (prefill-heavy) and a mixed regime.

    Simulated seconds — deterministic per (seed, config), no reps, and
    the same size in quick mode (it is cheap), so the quick gate
    reproduces the committed ratios bit-exactly.  The pinned qualitative
    result: the size-adaptive selector matches or beats both fixed
    choices on each regime's governing metric — **p99 inter-token
    latency** in the decode-bound regime (end-to-end makespan of a
    drained open-loop run is a batching outcome there: slower decode
    steps queue arrivals into bigger batches, trading per-token latency
    for fewer steps) and **makespan** in the prefill-bound and mixed
    regimes.  Provenance of the chosen schedules is recorded per run.
    """
    from dataclasses import replace

    from repro.serve import ServeConfig, simulate_serving

    del quick  # simulated time: full size always
    n = 32
    base = ServeConfig(p=4, n_requests=n, max_batch_size=8, seed=0)
    regimes = {
        "decode_bound": replace(base, rate=3000.0, prompt_tokens=4,
                                output_tokens=16),
        "prefill_bound": replace(base, rate=3000.0, prompt_tokens=192,
                                 output_tokens=1),
        "mixed": replace(base, rate=2000.0, prompt_tokens=96,
                         output_tokens=8),
    }
    out: dict = {"p": 4, "n_requests": n}
    for name, cfg in regimes.items():
        entry: dict = {"config": {
            "rate": cfg.rate, "prompt_tokens": cfg.prompt_tokens,
            "output_tokens": cfg.output_tokens}}
        for alg in ("latency", "bandwidth", "adaptive"):
            rep = simulate_serving(replace(cfg, algorithm=alg))
            s = rep.summary()
            entry[alg] = {
                "makespan_sim_s": s["makespan"],
                "goodput_tokens_per_s": s["goodput_tokens_per_s"],
                "ttft_p50": s["ttft_p50"], "ttft_p99": s["ttft_p99"],
                "itl_p50": s["itl_p50"], "itl_p99": s["itl_p99"],
                "latency_p50": s["latency_p50"],
                "latency_p99": s["latency_p99"],
                "algorithms": rep.algorithms,
            }
        metric = ("itl_p99" if name == "decode_bound"
                  else "makespan_sim_s")
        entry["metric"] = metric
        entry["adaptive_vs_latency"] = (
            entry["latency"][metric] / entry["adaptive"][metric])
        entry["adaptive_vs_bandwidth"] = (
            entry["bandwidth"][metric] / entry["adaptive"][metric])
        out[name] = entry
    return out


def serving_faults() -> dict:
    """Serving degradation under the fault model (simulated time): goodput
    and p99 inter-token latency of the P=4 mixed-regime serving run under
    (a) the seeded p99-straggler + slow-link plan and (b) a mid-run rank
    crash with elastic shrink-to-3 recovery, against the clean baseline.

    Deterministic — no reps.  The pinned qualitative results: the
    straggler plan strictly degrades goodput (``goodput_degradation >
    1``), and the crash run still completes every request
    (``availability == 1``) with a positive recovery time and goodput on
    both sides of the failure.
    """
    from repro.comm.faults import FaultPlan, RankCrash
    from repro.serve import ServeConfig, simulate_serving

    cfg = ServeConfig(p=4, rate=2000.0, n_requests=32, prompt_tokens=96,
                      output_tokens=8, max_batch_size=8, seed=0)

    def stats(rep) -> dict:
        s = rep.summary()
        return {"makespan_sim_s": s["makespan"],
                "goodput_tokens_per_s": s["goodput_tokens_per_s"],
                "itl_p99": s["itl_p99"]}

    clean = simulate_serving(cfg)
    out: dict = {"p": cfg.p, "n_requests": cfg.n_requests,
                 "clean": stats(clean)}

    strag_plan = FaultPlan.straggler_skew(cfg.p, seed=42)
    strag = simulate_serving(cfg, faults=strag_plan)
    out["straggler"] = {
        "plan": strag_plan.to_dict(), **stats(strag),
        "goodput_degradation": (
            out["clean"]["goodput_tokens_per_s"]
            / strag.summary()["goodput_tokens_per_s"]),
        "itl_p99_ratio": strag.summary()["itl_p99"]
        / out["clean"]["itl_p99"],
    }

    # crash mid-decode of the second admission cohort (first cohort's
    # completions already committed, second in flight — the serve_smoke
    # scenario, kept identical so the two reports cross-check)
    done = sorted(set(r.token_times[-1] for r in clean.requests))
    second = next(r for r in clean.requests
                  if r.token_times[0] > done[0] and len(r.token_times) >= 2)
    crash_t = 0.5 * (second.token_times[0] + second.token_times[1])
    crash_plan = FaultPlan(crashes=[RankCrash(rank=1, time=crash_t)],
                           detect_timeout=1e-4)
    crash = simulate_serving(cfg, faults=crash_plan)
    cs = crash.summary()
    out["crash"] = {
        "plan": crash_plan.to_dict(), **stats(crash),
        "availability": cs["availability"],
        "recovery_time_sim_s": cs["recovery_time"],
        "requeued": sum(len(ev["requeued"]) for ev in crash.events),
        "goodput_tokens_per_s_pre": cs["goodput_tokens_per_s_pre"],
        "goodput_tokens_per_s_post": cs["goodput_tokens_per_s_post"],
        "goodput_degradation": (
            out["clean"]["goodput_tokens_per_s"]
            / cs["goodput_tokens_per_s"]),
    }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer iterations/reps (post-merge smoke mode)")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--no-fused", action="store_true",
                    help="benchmark the per-message reference path "
                         "(REPRO_FUSED=0) instead of the fused fast path")
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_PERF.json")
    args = ap.parse_args(argv)

    if args.no_fused:
        os.environ[FUSED_ENV] = "0"
    fused_on = fusion_enabled()

    if os.cpu_count() == 1:
        print("NOTE: single-CPU host — threaded-runner rows serialize "
              "behind the GIL; coop-vs-threads speedups understate the "
              "threads runner on multi-core hosts.", file=sys.stderr)

    # every speedups row feeds the post-merge perf regression gate
    # (run_all.py --quick): a single quick rep is too noisy on this
    # shared host for a 25% threshold, so quick mode still takes min-of-2
    # on the train rows and min-of-3 on the cheap storm rows.
    reps = args.reps or (2 if args.quick else 3)
    train_iters = 8 if args.quick else 30
    storm_iters = {16: 50 if args.quick else 100, 64: 5 if args.quick else 12}
    storm_reps = max(reps, 3)

    results: dict = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            # CPU-time min-of-reps is host-portable, but the *threads*
            # columns are only meaningful relative to cores: on a 1-CPU
            # host the threaded runner serializes behind the GIL anyway,
            # so coop-vs-threads speedups understate what a multi-core
            # host would show for threads (and overstate coop's win).
            "cpu_note": ("single-CPU host: threaded-runner timings are "
                         "GIL-serialized; coop_vs_threads speedups are "
                         "not comparable to multi-core hosts"
                         if os.cpu_count() == 1 else
                         "multi-core host: threaded-runner timings "
                         "include real parallelism"),
            "commit": _git_head(),
            "quick": args.quick,
            "reps": reps,
            "fused": fused_on,
            "workload": {"proxy": "perf_mlp", "iterations": train_iters,
                         "density": 0.02},
        },
        "train_scheme": {},
        "comm_storm": {},
        "speedups": {},
    }

    rows = []
    for scheme in SCHEMES:
        results["train_scheme"][scheme] = {}
        for p in (4, 16):
            entry: dict = {"fused_path": fused_on}
            entry["coop"] = time_train_scheme(p, scheme, "coop",
                                              train_iters, reps)
            if fused_on:
                entry["coop_nofused"] = time_train_scheme(
                    p, scheme, "coop", train_iters, reps, fused=False)
            entry["threads"] = time_train_scheme(p, scheme, "threads",
                                                 train_iters, reps)
            entry["speedup_coop_vs_threads"] = entry["threads"] / entry["coop"]
            results["train_scheme"][scheme][str(p)] = entry
            key = f"{scheme}_p{p}"
            results["speedups"][f"{key}_coop_vs_threads"] = \
                entry["speedup_coop_vs_threads"]
            ref = entry.get("coop_nofused")
            if ref is not None:
                entry["speedup_fused_vs_reference"] = ref / entry["coop"]
                results["speedups"][f"{key}_fused_vs_reference"] = \
                    entry["speedup_fused_vs_reference"]
            rows.append([scheme, p, f"{entry['coop']:.3f}",
                         f"{ref:.3f}" if ref is not None else "-",
                         f"{entry['threads']:.3f}",
                         f"{entry['speedup_coop_vs_threads']:.2f}x"])

    # Scale cases: the paper's regime is P in the hundreds, and the
    # PR-8 acceptance bar is a P=128 Ok-Topk run on every engine.  One
    # sample per rank, few iterations (wall seconds per iteration at
    # P=128), min-of-1 in quick mode.  The generator engine ("gen") rides
    # along as a third runner — same simulated results, different
    # scheduling substrate.
    scale_rows = []
    results["train_scheme_scale"] = {}
    scale_reps = 1 if args.quick else 2
    for p, iters in ((64, 2 if args.quick else 4),
                     (128, 1 if args.quick else 2)):
        entry = {"fused_path": fused_on, "iterations": iters}
        for runner in ("coop", "gen", "threads"):
            entry[runner] = time_train_scheme(p, "oktopk", runner, iters,
                                              scale_reps)
        entry["speedup_coop_vs_threads"] = entry["threads"] / entry["coop"]
        entry["speedup_coop_vs_gen"] = entry["gen"] / entry["coop"]
        # deliberately NOT in results["speedups"]: at min-of-1/2 these
        # rows swing far more than the 25% gate threshold; they are
        # trajectory data, not a regression gate.
        results["train_scheme_scale"][str(p)] = entry
        scale_rows.append([p, iters, f"{entry['coop']:.3f}",
                           f"{entry['gen']:.3f}", f"{entry['threads']:.3f}",
                           f"{entry['speedup_coop_vs_threads']:.2f}x"])

    # Bucketed-session path (native per-bucket reductions + overlap
    # accounting): tracks the session machinery's wall-clock overhead vs
    # the one-shot-equivalent default.  bucket_size=512 splits perf_mlp
    # into 2 buckets (the head layers close the first bucket).  oktopk
    # exercises the shared-state path (thresholds/boundaries read from the
    # full-gradient OkTopkState, refreshed once per due iteration).
    bucketed_rows = []
    results["train_scheme_bucketed"] = {}
    for scheme in ("dense", "topka", "oktopk"):
        entry = {"fused_path": fused_on}
        for runner in RUNNERS:
            entry[runner] = time_train_scheme(4, scheme, runner,
                                              train_iters, reps,
                                              bucket_size=512)
        entry["speedup_coop_vs_threads"] = entry["threads"] / entry["coop"]
        results["train_scheme_bucketed"][scheme] = {
            "p": 4, "bucket_size": 512, **entry}
        bucketed_rows.append([scheme, 4, f"{entry['coop']:.3f}",
                              f"{entry['threads']:.3f}",
                              f"{entry['speedup_coop_vs_threads']:.2f}x"])

    # Streaming sessions (--overlap-mode stream): the bucket reductions
    # run on the simulated clock during backward (async regions, clock
    # rewinds, per-segment compute pacing).  This row tracks the
    # wall-clock overhead of the discrete-event machinery against the
    # analytic replay on the identical workload.  The oktopk row is the
    # paper scheme's native bucketed-stream path (split-and-reduce +
    # balance-and-allgatherv per bucket, shared periodic state).
    stream_rows = []
    results["train_scheme_stream"] = {}
    for scheme in ("dense", "topka", "oktopk"):
        entry = {"fused_path": fused_on}
        for mode in ("analytic", "stream"):
            entry[mode] = time_train_scheme(4, scheme, "coop",
                                            train_iters, reps,
                                            bucket_size=512,
                                            overlap_mode=mode)
        entry["overhead_stream_vs_analytic"] = (
            entry["stream"] / entry["analytic"])
        results["train_scheme_stream"][scheme] = {
            "p": 4, "bucket_size": 512, **entry}
        stream_rows.append([scheme, 4, f"{entry['analytic']:.3f}",
                            f"{entry['stream']:.3f}",
                            f"{entry['overhead_stream_vs_analytic']:.2f}x"])

    storm_rows = []
    for p, iters in storm_iters.items():
        entry = {r: time_storm(p, r, iters, storm_reps)
                 for r in ("coop", "gen", "threads")}
        entry["speedup_coop_vs_threads"] = (
            entry["threads"]["seconds"] / entry["coop"]["seconds"])
        entry["speedup_coop_vs_gen"] = (
            entry["gen"]["seconds"] / entry["coop"]["seconds"])
        results["comm_storm"][str(p)] = entry
        storm_rows.append([p, f"{entry['coop']['us_per_message']:.1f}",
                           f"{entry['gen']['us_per_message']:.1f}",
                           f"{entry['threads']['us_per_message']:.1f}",
                           f"{entry['speedup_coop_vs_threads']:.2f}x"])
        results["speedups"][f"storm_p{p}_coop_vs_threads"] = (
            entry["speedup_coop_vs_threads"])

    results["fault_degradation"] = fault_degradation(train_iters)

    results["serving"] = serving_regimes(args.quick)
    results["serving_faults"] = serving_faults()
    for regime in ("decode_bound", "prefill_bound", "mixed"):
        entry = results["serving"][regime]
        # simulated-time ratios: deterministic, so gate-stable at any
        # threshold — a drop means the selector itself changed
        results["speedups"][f"serve_{regime}_adaptive_vs_latency"] = \
            entry["adaptive_vs_latency"]
        results["speedups"][f"serve_{regime}_adaptive_vs_bandwidth"] = \
            entry["adaptive_vs_bandwidth"]

    results["phase_breakdown"] = phase_breakdown(reps, args.quick)
    if fused_on:
        results["speedups"]["barrier_p16_fused_vs_reference"] = (
            results["phase_breakdown"]["reference_barrier_p16_us"]
            / results["phase_breakdown"]["fused_barrier_p16_us"])

    print(format_table(
        ["scheme", "P", "coop (s)", "coop-ref (s)", "threads (s)",
         "speedup"],
        rows, title=f"train_scheme wall-clock ({train_iters} iters, "
                    f"perf_mlp probe, min of {reps}, "
                    f"fused={'on' if fused_on else 'off'})"))
    print()
    print(format_table(
        ["P", "iters", "coop (s)", "gen (s)", "threads (s)", "speedup"],
        scale_rows,
        title="scale cases (oktopk, one sample per rank, "
              f"min of {scale_reps})"))
    print()
    print(format_table(
        ["scheme", "P", "coop (s)", "threads (s)", "speedup"],
        bucketed_rows,
        title="bucketed sessions (bucket_size=512, perf_mlp probe)"))
    print()
    print(format_table(
        ["scheme", "P", "analytic (s)", "stream (s)", "overhead"],
        stream_rows,
        title="streaming sessions (--overlap-mode stream, coop runner)"))
    print()
    print(format_table(
        ["P", "coop (us/msg)", "gen (us/msg)", "threads (us/msg)",
         "speedup"],
        storm_rows, title="comm-layer message storm (COO payloads)"))
    print()
    fd = results["fault_degradation"]
    print(format_table(
        ["scheme", "clean (sim s)", "faulted (sim s)", "degradation"],
        [[s, f"{fd[s]['clean_sim_s']:.4f}", f"{fd[s]['faulted_sim_s']:.4f}",
          f"{fd[s]['degradation']:.2f}x"] for s in ("dense", "oktopk")],
        title="fault-plan degradation (seeded p99 straggler + slow link, "
              "P=4, simulated time)"))
    print()
    sv = results["serving"]
    sv_rows = []
    for regime in ("decode_bound", "prefill_bound", "mixed"):
        for alg in ("latency", "bandwidth", "adaptive"):
            e = sv[regime][alg]
            itl = e["itl_p99"]
            sv_rows.append([
                regime, alg, f"{e['makespan_sim_s'] * 1e3:.3f}",
                f"{e['ttft_p99'] * 1e6:.1f}",
                f"{itl * 1e6:.1f}" if itl == itl else "-",
                f"{e['goodput_tokens_per_s']:.0f}"])
    print(format_table(
        ["regime", "algorithm", "makespan (ms)", "ttft p99 (us)",
         "itl p99 (us)", "goodput (tok/s)"],
        sv_rows,
        title=f"serving regimes (P=4, {sv['n_requests']} requests, "
              "simulated time; adaptive = size-based selector)"))
    print()
    sf = results["serving_faults"]
    sf_rows = []
    for name in ("clean", "straggler", "crash"):
        e = sf[name]
        sf_rows.append([
            name, f"{e['makespan_sim_s'] * 1e3:.3f}",
            f"{e['goodput_tokens_per_s']:.0f}",
            f"{e['itl_p99'] * 1e6:.1f}",
            f"{e['goodput_degradation']:.2f}x" if name != "clean" else "-",
            (f"{e['recovery_time_sim_s'] * 1e3:.3f}"
             if name == "crash" else "-")])
    print(format_table(
        ["scenario", "makespan (ms)", "goodput (tok/s)", "itl p99 (us)",
         "degradation", "recovery (ms)"],
        sf_rows,
        title=f"serving under faults (P=4, {sf['n_requests']} requests, "
              "mixed regime, simulated time; crash = mid-run rank "
              "failure, shrink 4 -> 3)"))
    print()
    pb = results["phase_breakdown"]
    print(format_table(
        ["phase", "us"],
        [[k, f"{v:.1f}"] for k, v in pb.items()],
        title="per-phase breakdown (one perf_mlp rank / one collective)"))

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10).stdout.strip()
    except Exception:  # pragma: no cover - git may be absent
        return "unknown"


if __name__ == "__main__":
    raise SystemExit(main())
