#!/usr/bin/env python
"""Wall-clock perf benchmark of the simulator itself (not simulated time).

Seeds and extends the repo's perf trajectory: times ``train_scheme`` for
{dense, gtopk, oktopk} at P in {4, 16} on the comm-dominated ``perf_mlp``
probe, under both the cooperative (default) and the legacy threaded runner,
plus bucketed-session and streaming-session cases for {dense, topka,
oktopk} (the oktopk rows exercise the shared-state native bucketed path)
and a pure comm-layer message-storm microbenchmark at P in {16, 64}.
Writes everything to ``BENCH_PERF.json`` (repo root) and prints a table.

Measurement notes
-----------------
* CPU time (``time.process_time``), min over ``--reps``, to damp the noisy
  shared-host scheduler; on this 1-CPU container CPU ~= wall.
* The speedup columns compare the cooperative runner against the threaded
  fallback *running the same optimized code*.  On a single-CPU host the
  GIL already serializes the threaded runner into a de-facto cooperative
  scheduler (its 0.2 s abort poll never fires because posts notify), so
  the end-to-end gap here is modest (~1.1-1.5x) and grows with rank count
  (the threaded runner degrades with P in the storm microbench while the
  cooperative engine stays flat).  The engine's other wins — bit-exact
  determinism, deadlock detection, zero-copy sends, a lock-free hot path —
  do not show up in this table at all.

Usage::

    python benchmarks/bench_perf_wallclock.py [--quick] [--reps N] [--out F]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, perf_proxy, train_scheme  # noqa: E402
from repro.bench.harness import proxy_network  # noqa: E402
from repro.comm import run_spmd  # noqa: E402
from repro.sparse import COOVector  # noqa: E402

SCHEMES = ("dense", "gtopk", "oktopk")
RUNNERS = ("coop", "threads")


def _min_time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
    return best


# ---------------------------------------------------------------------------
# train_scheme timings
# ---------------------------------------------------------------------------
def time_train_scheme(p: int, scheme: str, runner: str, iters: int,
                      reps: int, bucket_size: int | None = None,
                      overlap_mode: str = "analytic") -> float:
    proxy = perf_proxy()

    def run():
        os.environ["REPRO_SPMD_RUNNER"] = runner
        try:
            train_scheme(proxy, scheme, p, iters, density=0.02,
                         bucket_size=bucket_size,
                         overlap_mode=overlap_mode,
                         network=proxy_network())
        finally:
            os.environ.pop("REPRO_SPMD_RUNNER", None)

    run()  # warmup (imports, data caches)
    return _min_time(run, reps)


# ---------------------------------------------------------------------------
# comm-layer microbenchmark: COO message storm (the oktopk exchange shape)
# ---------------------------------------------------------------------------
def _storm_prog(comm, iters):
    p, r = comm.size, comm.rank
    vec = COOVector.from_arrays(10_000, np.arange(50, dtype=np.int32),
                                np.ones(50, dtype=np.float32))
    for _ in range(iters):
        reqs = []
        for s in range(1, p):
            reqs.append(comm.irecv((r - s) % p, 5))
            reqs.append(comm.isend(vec, (r + s) % p, 5))
        comm.waitall(reqs)
    return comm.clock


def time_storm(p: int, runner: str, iters: int, reps: int) -> dict:
    def run():
        run_spmd(p, _storm_prog, iters, runner=runner)

    run()
    secs = _min_time(run, reps)
    nmsg = p * (p - 1) * iters
    return {"seconds": secs, "messages": nmsg,
            "us_per_message": secs / nmsg * 1e6}


# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="fewer iterations/reps (post-merge smoke mode)")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_PERF.json")
    args = ap.parse_args(argv)

    reps = args.reps or (1 if args.quick else 3)
    train_iters = 8 if args.quick else 30
    storm_iters = {16: 20 if args.quick else 100, 64: 3 if args.quick else 12}

    results: dict = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "commit": _git_head(),
            "quick": args.quick,
            "reps": reps,
            "workload": {"proxy": "perf_mlp", "iterations": train_iters,
                         "density": 0.02},
        },
        "train_scheme": {},
        "comm_storm": {},
        "speedups": {},
    }

    rows = []
    for scheme in SCHEMES:
        results["train_scheme"][scheme] = {}
        for p in (4, 16):
            entry = {}
            for runner in RUNNERS:
                entry[runner] = time_train_scheme(p, scheme, runner,
                                                  train_iters, reps)
            entry["speedup_coop_vs_threads"] = entry["threads"] / entry["coop"]
            results["train_scheme"][scheme][str(p)] = entry
            rows.append([scheme, p, f"{entry['coop']:.3f}",
                         f"{entry['threads']:.3f}",
                         f"{entry['speedup_coop_vs_threads']:.2f}x"])
            key = f"{scheme}_p{p}_coop_vs_threads"
            results["speedups"][key] = entry["speedup_coop_vs_threads"]

    # Bucketed-session path (native per-bucket reductions + overlap
    # accounting): tracks the session machinery's wall-clock overhead vs
    # the one-shot-equivalent default.  bucket_size=512 splits perf_mlp
    # into 2 buckets (the head layers close the first bucket).  oktopk
    # exercises the shared-state path (thresholds/boundaries read from the
    # full-gradient OkTopkState, refreshed once per due iteration).
    bucketed_rows = []
    results["train_scheme_bucketed"] = {}
    for scheme in ("dense", "topka", "oktopk"):
        entry = {}
        for runner in RUNNERS:
            entry[runner] = time_train_scheme(4, scheme, runner,
                                              train_iters, reps,
                                              bucket_size=512)
        entry["speedup_coop_vs_threads"] = entry["threads"] / entry["coop"]
        results["train_scheme_bucketed"][scheme] = {
            "p": 4, "bucket_size": 512, **entry}
        bucketed_rows.append([scheme, 4, f"{entry['coop']:.3f}",
                              f"{entry['threads']:.3f}",
                              f"{entry['speedup_coop_vs_threads']:.2f}x"])

    # Streaming sessions (--overlap-mode stream): the bucket reductions
    # run on the simulated clock during backward (async regions, clock
    # rewinds, per-segment compute pacing).  This row tracks the
    # wall-clock overhead of the discrete-event machinery against the
    # analytic replay on the identical workload.  The oktopk row is the
    # paper scheme's native bucketed-stream path (split-and-reduce +
    # balance-and-allgatherv per bucket, shared periodic state).
    stream_rows = []
    results["train_scheme_stream"] = {}
    for scheme in ("dense", "topka", "oktopk"):
        entry = {}
        for mode in ("analytic", "stream"):
            entry[mode] = time_train_scheme(4, scheme, "coop",
                                            train_iters, reps,
                                            bucket_size=512,
                                            overlap_mode=mode)
        entry["overhead_stream_vs_analytic"] = (
            entry["stream"] / entry["analytic"])
        results["train_scheme_stream"][scheme] = {
            "p": 4, "bucket_size": 512, **entry}
        stream_rows.append([scheme, 4, f"{entry['analytic']:.3f}",
                            f"{entry['stream']:.3f}",
                            f"{entry['overhead_stream_vs_analytic']:.2f}x"])

    storm_rows = []
    for p, iters in storm_iters.items():
        entry = {r: time_storm(p, r, iters, reps) for r in RUNNERS}
        entry["speedup_coop_vs_threads"] = (
            entry["threads"]["seconds"] / entry["coop"]["seconds"])
        results["comm_storm"][str(p)] = entry
        storm_rows.append([p, f"{entry['coop']['us_per_message']:.1f}",
                           f"{entry['threads']['us_per_message']:.1f}",
                           f"{entry['speedup_coop_vs_threads']:.2f}x"])
        results["speedups"][f"storm_p{p}_coop_vs_threads"] = (
            entry["speedup_coop_vs_threads"])

    print(format_table(
        ["scheme", "P", "coop (s)", "threads (s)", "speedup"],
        rows, title=f"train_scheme wall-clock ({train_iters} iters, "
                    f"perf_mlp probe, min of {reps})"))
    print()
    print(format_table(
        ["scheme", "P", "coop (s)", "threads (s)", "speedup"],
        bucketed_rows,
        title="bucketed sessions (bucket_size=512, perf_mlp probe)"))
    print()
    print(format_table(
        ["scheme", "P", "analytic (s)", "stream (s)", "overhead"],
        stream_rows,
        title="streaming sessions (--overlap-mode stream, coop runner)"))
    print()
    print(format_table(
        ["P", "coop (us/msg)", "threads (us/msg)", "speedup"],
        storm_rows, title="comm-layer message storm (COO payloads)"))

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10).stdout.strip()
    except Exception:  # pragma: no cover - git may be absent
        return "unknown"


if __name__ == "__main__":
    raise SystemExit(main())
