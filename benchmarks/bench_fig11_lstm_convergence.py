"""Figure 11: WER vs training time, LSTM proxy.

Shape to reproduce: Ok-Topk reaches a dense-level WER (lower is better)
with the fastest time-to-solution; sparse schemes can even edge out dense
WER thanks to sparsification noise (observed by the paper on 64 GPUs)."""

from repro.bench import format_table, lstm_proxy, train_scheme
from repro.bench.harness import proxy_network

SCHEMES = ["dense_ovlp", "topkdsa", "gaussiank", "oktopk"]
P = 4
ITERS = 24


def test_lstm_wer_vs_time(benchmark, report):
    def run():
        return {s: train_scheme(lstm_proxy(), s, P, ITERS,
                                density=0.02, eval_every=6,
                                network=proxy_network())
                for s in SCHEMES}

    recs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for s, rec in recs.items():
        wer = rec.final_eval()["wer"]
        rows.append([s, f"{wer:.3f}", f"{rec.total_time:.4f}"])
    report("fig11_lstm_convergence", format_table(
        ["scheme", "final WER", "total sim time (s)"],
        rows, title=f"Figure 11: LSTM WER vs time (P={P}, density=2%)"))

    wers = {s: recs[s].final_eval()["wer"] for s in SCHEMES}
    times = {s: recs[s].total_time for s in SCHEMES}
    # all schemes learn (WER improves well below the ~1.0 start)
    assert all(w < 0.9 for w in wers.values()), wers
    # Ok-Topk's WER close to dense
    assert wers["oktopk"] <= wers["dense_ovlp"] + 0.15
    # and the fastest total training time
    assert times["oktopk"] <= min(times.values()) * 1.05
