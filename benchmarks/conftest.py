"""Shared fixtures for the paper-figure benchmarks.

Every benchmark writes its paper-style table/series to
``benchmarks/results/<name>.txt`` and prints it (visible with ``-s`` or in
the teed bench output)."""

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    RESULTS.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        print("\n" + text + "\n")

    return _write
