"""Table 2: the evaluation models and their parameter counts."""

import numpy as np

from repro.bench import format_table
from repro.nn.models import (
    AN4_FULL_HIDDEN,
    PAPER_BERT_PARAMS,
    PAPER_LSTM_PARAMS,
    PAPER_VGG16_PARAMS,
    bert_base_param_count,
    lstm_speech_param_count,
    make_vgg16_model,
    vgg16_param_count,
)


def test_table2_parameter_counts(benchmark, report):
    def counts():
        return {
            "vgg16": vgg16_param_count(1.0),
            "lstm": lstm_speech_param_count(hidden=AN4_FULL_HIDDEN),
            "bert": bert_base_param_count(),
        }

    got = benchmark.pedantic(counts, rounds=3, iterations=1)
    paper = {"vgg16": PAPER_VGG16_PARAMS, "lstm": PAPER_LSTM_PARAMS,
             "bert": PAPER_BERT_PARAMS}
    tasks = {"vgg16": ("Image classification", "Cifar-10 (synthetic)"),
             "lstm": ("Speech recognition", "AN4 (synthetic)"),
             "bert": ("Language processing", "Wikipedia (synthetic)")}
    rows = []
    for name in ("vgg16", "lstm", "bert"):
        dev = (got[name] - paper[name]) / paper[name]
        rows.append([tasks[name][0], name, f"{got[name]:,}",
                     f"{paper[name]:,}", f"{dev:+.4%}", tasks[name][1]])
    report("table2_models", format_table(
        ["task", "model", "ours", "paper", "deviation", "dataset"],
        rows, title="Table 2: neural networks used for evaluation"))

    assert got["vgg16"] == paper["vgg16"]            # exact
    assert got["bert"] == paper["bert"]              # exact
    assert abs(got["lstm"] - paper["lstm"]) / paper["lstm"] < 1e-3


def test_model_forward_throughput(benchmark):
    """Sanity benchmark: a width-reduced VGG forward pass."""
    model = make_vgg16_model(width_mult=0.05)
    x = np.random.default_rng(0).normal(
        size=(8, 3, 32, 32)).astype(np.float32)

    benchmark(lambda: model.predict(x))
