#!/usr/bin/env python
"""Sanitizer + race-detector smoke (run_all.py --quick).

Three checks on the runtime sanitizer mode (``REPRO_SANITIZE=1`` /
``run_spmd(sanitize=True)``, see :mod:`repro.comm.launcher`):

* **transparency** — P=4 training (Ok-Topk) and tensor-parallel serving
  runs under the sanitizer are bit-identical to unsanitized runs (the
  sanitizer observes, it must not perturb);
* **schemes are race-free** — every shipped allreduce scheme passes the
  schedule-perturbation race detector: the section is replayed under a
  seeded ready-queue rotation and results/clocks/counters must not move;
* **detection** — the race detector flags a deliberately order-sensitive
  rank program, and the loan sanitizer flags a ``setflags(write=True)``
  bypass of the isend write-lock.

Everything is simulated time; the whole smoke takes a few seconds.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.allreduce import PAPER_ORDER, make_allreduce  # noqa: E402
from repro.bench import perf_proxy, train_scheme  # noqa: E402
from repro.comm import SANITIZE_ENV, run_spmd  # noqa: E402
from repro.errors import LoanViolationError, ScheduleRaceError  # noqa: E402
from repro.serve import ServeConfig, simulate_serving  # noqa: E402

P = 4
N = 1024
SERVE_CFG = ServeConfig(p=P, rate=2000.0, n_requests=16, prompt_tokens=64,
                        output_tokens=6, max_batch_size=8, seed=0)


def _train_and_serve() -> tuple:
    rec = train_scheme(perf_proxy(), "oktopk", P, 2, density=0.02, seed=0)
    rep = simulate_serving(SERVE_CFG)
    return rec.records, rep.requests, rep.summary()


def _scheme_prog(comm, scheme: str):
    kwargs = {} if scheme.startswith("dense") else {"density": 0.05}
    algo = make_allreduce(scheme, **kwargs)
    rng = np.random.default_rng(1234 + comm.rank)
    outs = []
    for t in (1, 2):
        acc = rng.standard_normal(N).astype(np.float32)
        res = algo.reduce(comm, acc, t)
        outs.append(res.update_dense(N).copy())
    return outs


def _racy_prog_maker():
    order: list = []

    def racy(comm):
        # Communicates through shared Python state: the returned order
        # depends on which rank is scheduled first.
        order.append(comm.rank)
        comm.send(np.arange(4, dtype=np.float32),
                  (comm.rank + 1) % comm.size)
        comm.recv((comm.rank - 1) % comm.size)
        return list(order)

    return racy


def _loan_violator(comm):
    buf = np.full(64, float(comm.rank), dtype=np.float32)
    if comm.rank == 0:
        req = comm.isend(buf, 1)
        buf.setflags(write=True)  # bypass the loan write-lock
        buf[0] = 999.0
        req.wait()
    elif comm.rank == 1:
        comm.recv(0)


def main() -> int:
    # 1. sanitizer transparency on train + serve
    base = _train_and_serve()
    os.environ[SANITIZE_ENV] = "1"
    try:
        sane = _train_and_serve()
    finally:
        os.environ.pop(SANITIZE_ENV, None)
    if sane != base:
        print("FAIL: REPRO_SANITIZE=1 changed the train/serve outcome")
        return 1
    print(f"transparency: P={P} train + serve bit-identical under "
          f"REPRO_SANITIZE=1")

    # 2. every shipped scheme passes the race detector
    for scheme in PAPER_ORDER:
        try:
            run_spmd(P, _scheme_prog, scheme, sanitize=True)
        except ScheduleRaceError as exc:
            print(f"FAIL: scheme {scheme!r} flagged by the race "
                  f"detector: {exc}")
            return 1
        print(f"race detector: {scheme} clean under perturbed schedule")

    # 3. the detectors actually detect
    try:
        run_spmd(P, _racy_prog_maker(), sanitize=True)
        print("FAIL: order-sensitive program not flagged")
        return 1
    except ScheduleRaceError:
        print("race detector: order-sensitive program flagged")
    try:
        run_spmd(2, _loan_violator, sanitize=True)
        print("FAIL: loan-window write not flagged")
        return 1
    except LoanViolationError:
        print("loan sanitizer: setflags bypass flagged")

    print("sanitize smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
