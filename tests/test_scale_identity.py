"""Large-world (P >= 64) cross-runner identity.

The PR-8 acceptance bar: an Ok-Topk ``train_scheme`` run at P=128 must
complete on the generator/coop engines and be bit-identical to the
threads oracle.  These worlds take seconds per iteration, so the tests
are marked ``scale`` (excluded from the fast CI job; the push-only
slow job and ``pytest -m scale`` run them).
"""

import os
from dataclasses import asdict

import pytest

from repro.bench.harness import perf_proxy, proxy_network, train_scheme

RUNNER_ENV = "REPRO_SPMD_RUNNER"

pytestmark = pytest.mark.scale


def _train(p, iters, runner):
    # One sample per rank: ShardedLoader needs size <= global_batch <=
    # n_train, so the proxy dataset grows with the world.
    proxy = perf_proxy(n_train=p, global_batch=p)
    old = os.environ.get(RUNNER_ENV)
    os.environ[RUNNER_ENV] = runner
    try:
        return train_scheme(proxy, "oktopk", p, iters, density=0.05,
                            network=proxy_network())
    finally:
        if old is None:
            del os.environ[RUNNER_ENV]
        else:
            os.environ[RUNNER_ENV] = old


def _fingerprints(rec):
    return [asdict(r) for r in rec.records]


def test_p64_identical_across_all_runners():
    base = _fingerprints(_train(64, 4, "coop"))
    assert base == _fingerprints(_train(64, 4, "gen"))
    assert base == _fingerprints(_train(64, 4, "threads"))


def test_p128_gen_and_coop_match_threads_oracle():
    oracle = _fingerprints(_train(128, 2, "threads"))
    assert _fingerprints(_train(128, 2, "coop")) == oracle
    assert _fingerprints(_train(128, 2, "gen")) == oracle
