"""Unit tests for COO vectors and top-k selection."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import (
    COOVector,
    combine_sum,
    exact_topk,
    kth_largest_abs,
    threshold_select,
    topk_indices,
)


def _random_dense(n=200, seed=0):
    return np.random.default_rng(seed).normal(size=n).astype(np.float32)


class TestCOOVector:
    def test_empty(self):
        v = COOVector.empty(10)
        assert v.nnz == 0 and v.n == 10
        np.testing.assert_array_equal(v.to_dense(), np.zeros(10))

    def test_from_dense_roundtrip(self):
        dense = _random_dense()
        idx = np.array([3, 7, 100], dtype=np.int32)
        v = COOVector.from_dense(dense, idx)
        out = v.to_dense()
        np.testing.assert_array_equal(out[idx], dense[idx])
        mask = np.ones(dense.size, dtype=bool)
        mask[idx] = False
        assert np.all(out[mask] == 0)

    def test_from_arrays_sorts(self):
        v = COOVector.from_arrays(10, [5, 1, 9], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(v.indices, [1, 5, 9])
        np.testing.assert_array_equal(v.values, [2.0, 1.0, 3.0])

    def test_wire_size_is_2k(self):
        from repro.comm import nwords
        v = COOVector.from_arrays(100, [1, 2, 3], [1.0, 2.0, 3.0])
        assert v.comm_nwords() == 6
        assert nwords(v) == 6

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(SparseFormatError):
            COOVector.from_arrays(5, [0, 7], [1.0, 2.0])

    def test_validate_rejects_duplicates(self):
        with pytest.raises(SparseFormatError):
            COOVector.from_arrays(5, [2, 2], [1.0, 2.0])

    def test_combine_sums_overlaps(self):
        a = COOVector.from_arrays(10, [1, 3], [1.0, 2.0])
        b = COOVector.from_arrays(10, [3, 5], [10.0, 20.0])
        c = a.combine(b)
        np.testing.assert_array_equal(c.indices, [1, 3, 5])
        np.testing.assert_allclose(c.values, [1.0, 12.0, 20.0])

    def test_combine_sum_many_matches_dense(self):
        rng = np.random.default_rng(1)
        vecs = []
        dense_total = np.zeros(50, dtype=np.float64)
        for s in range(6):
            idx = rng.choice(50, size=8, replace=False)
            val = rng.normal(size=8).astype(np.float32)
            vecs.append(COOVector.from_arrays(50, idx, val))
            dense_total[np.sort(idx)] += val[np.argsort(idx, kind="stable")]
        got = combine_sum(vecs).to_dense()
        expect = np.zeros(50, dtype=np.float64)
        for v in vecs:
            expect[v.indices] += v.values
        np.testing.assert_allclose(got, expect, rtol=1e-5, atol=1e-6)

    def test_combine_mismatched_length_raises(self):
        a = COOVector.empty(10)
        b = COOVector.empty(11)
        with pytest.raises(SparseFormatError):
            a.combine(b)

    def test_combine_sum_empty_list_raises(self):
        with pytest.raises(ValueError):
            combine_sum([])

    def test_scale(self):
        v = COOVector.from_arrays(4, [0, 2], [2.0, -4.0])
        s = v.scale(0.5)
        np.testing.assert_allclose(s.values, [1.0, -2.0])

    def test_restrict(self):
        v = COOVector.from_arrays(20, [2, 5, 9, 15], [1, 2, 3, 4])
        r = v.restrict(5, 15)
        np.testing.assert_array_equal(r.indices, [5, 9])

    def test_split_covers_all(self):
        v = COOVector.from_arrays(20, [0, 5, 9, 15, 19], [1, 2, 3, 4, 5])
        parts = v.split([0, 6, 12, 20])
        assert len(parts) == 3
        np.testing.assert_array_equal(parts[0].indices, [0, 5])
        np.testing.assert_array_equal(parts[1].indices, [9])
        np.testing.assert_array_equal(parts[2].indices, [15, 19])

    def test_topk_on_coo(self):
        v = COOVector.from_arrays(10, [1, 3, 5, 7], [0.1, -5.0, 2.0, -0.5])
        t = v.topk(2)
        np.testing.assert_array_equal(t.indices, [3, 5])

    def test_topk_k_larger_than_nnz(self):
        v = COOVector.from_arrays(10, [1], [1.0])
        assert v.topk(5) is v

    def test_select_threshold(self):
        v = COOVector.from_arrays(10, [1, 3, 5], [0.1, -5.0, 2.0])
        s = v.select_threshold(1.5)
        np.testing.assert_array_equal(s.indices, [3, 5])

    def test_scatter_add(self):
        v = COOVector.from_arrays(5, [1, 3], [1.0, 2.0])
        buf = np.ones(5, dtype=np.float32)
        v.scatter_add(buf)
        np.testing.assert_allclose(buf, [1, 2, 1, 3, 1])


class TestTopkSelection:
    def test_kth_largest_abs_simple(self):
        x = np.array([0.5, -3.0, 1.0, 2.0], dtype=np.float32)
        assert kth_largest_abs(x, 1) == 3.0
        assert kth_largest_abs(x, 2) == 2.0
        assert kth_largest_abs(x, 4) == 0.5

    def test_kth_largest_k_too_big_returns_zero(self):
        assert kth_largest_abs(np.ones(3, np.float32), 10) == 0.0

    def test_kth_largest_invalid_k(self):
        with pytest.raises(ValueError):
            kth_largest_abs(np.ones(3, np.float32), 0)

    def test_topk_indices_sorted_and_correct(self):
        x = _random_dense(500, seed=3)
        k = 50
        idx = topk_indices(x, k)
        assert idx.size == k
        assert np.all(np.diff(idx) > 0)
        threshold = kth_largest_abs(x, k)
        # every non-chosen element is <= threshold
        rest = np.abs(np.delete(x, idx))
        assert rest.max() <= threshold

    def test_topk_exact_count_with_ties(self):
        x = np.array([1.0, 1.0, 1.0, 1.0, 0.5], dtype=np.float32)
        idx = topk_indices(x, 2)
        assert idx.size == 2
        np.testing.assert_array_equal(idx, [0, 1])  # lowest-index ties win

    def test_topk_k_zero(self):
        assert topk_indices(_random_dense(), 0).size == 0

    def test_topk_k_equals_n(self):
        x = _random_dense(10)
        np.testing.assert_array_equal(topk_indices(x, 10), np.arange(10))

    def test_exact_topk_values_match_dense(self):
        x = _random_dense(300, seed=9)
        v = exact_topk(x, 30)
        np.testing.assert_array_equal(v.values, x[v.indices])

    def test_threshold_select_consistency(self):
        """threshold_select with the exact k-th threshold selects >= k."""
        x = _random_dense(400, seed=5)
        k = 40
        t = kth_largest_abs(x, k)
        v = threshold_select(x, t)
        assert v.nnz >= k
        assert np.abs(v.values).min() >= t
