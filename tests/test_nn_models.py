"""Model-level tests, including the Table 2 parameter counts."""

import numpy as np
import pytest

from repro.nn import FlatModel
from repro.nn.models import (
    AN4_FULL_HIDDEN,
    BertConfig,
    MiniBertLM,
    PAPER_BERT_PARAMS,
    PAPER_LSTM_PARAMS,
    PAPER_VGG16_PARAMS,
    bert_base_param_count,
    build_vgg16,
    lstm_speech_param_count,
    make_bert_model,
    make_lstm_speech_model,
    make_vgg16_model,
    minibert_param_count,
    vgg16_param_count,
)


class TestTable2ParameterCounts:
    def test_vgg16_full_width_matches_paper_exactly(self):
        assert vgg16_param_count(1.0) == PAPER_VGG16_PARAMS == 14_728_266

    def test_vgg16_analytic_matches_built_model(self):
        for wm in (0.1, 0.25):
            model = build_vgg16(width_mult=wm)
            assert model.param_count() == vgg16_param_count(wm)

    def test_bert_base_matches_paper_exactly(self):
        assert bert_base_param_count() == PAPER_BERT_PARAMS == 133_547_324

    def test_lstm_full_within_promille_of_paper(self):
        count = lstm_speech_param_count(hidden=AN4_FULL_HIDDEN)
        assert abs(count - PAPER_LSTM_PARAMS) / PAPER_LSTM_PARAMS < 1e-3

    def test_minibert_analytic_matches_built(self):
        cfg = BertConfig.mini()
        model = MiniBertLM(cfg)
        assert model.param_count() == minibert_param_count(cfg)

    def test_lstm_analytic_matches_built(self):
        fm = make_lstm_speech_model(features=7, hidden=5, layers=2,
                                    classes=3)
        assert fm.nparams == lstm_speech_param_count(7, 5, 2, 3)


class TestVGGForward:
    def test_output_shape(self):
        fm = make_vgg16_model(width_mult=0.1)
        x = np.random.default_rng(0).normal(
            size=(2, 3, 32, 32)).astype(np.float32)
        assert fm.predict(x).shape == (2, 10)

    def test_one_step_reduces_loss(self):
        fm = make_vgg16_model(width_mult=0.1, seed=1)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 3, 32, 32)).astype(np.float32)
        y = rng.integers(0, 10, size=8)
        l0, g = fm.loss_and_grad(x, y)
        fm.params_flat[...] -= 0.05 * g
        l1, _ = fm.loss_and_grad(x, y)
        assert l1 < l0


class TestLSTMSpeechForward:
    def test_output_shape(self):
        fm = make_lstm_speech_model(features=8, hidden=6, layers=1,
                                    classes=4)
        x = np.random.default_rng(2).normal(
            size=(3, 5, 8)).astype(np.float32)
        assert fm.predict(x).shape == (3, 5, 4)

    def test_training_step_reduces_loss(self):
        fm = make_lstm_speech_model(features=8, hidden=16, layers=1,
                                    classes=4, seed=3)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=(4, 6))
        l0, g = fm.loss_and_grad(x, y)
        fm.params_flat[...] -= 0.5 * g
        l1, _ = fm.loss_and_grad(x, y)
        assert l1 < l0


class TestMiniBert:
    def test_output_shape(self):
        cfg = BertConfig.mini()
        fm = make_bert_model(cfg)
        ids = np.random.default_rng(4).integers(0, cfg.vocab, size=(2, 16))
        assert fm.predict(ids).shape == (2, 16, cfg.vocab)

    def test_rejects_too_long_sequence(self):
        cfg = BertConfig(vocab=50, hidden=8, layers=1, heads=2,
                         intermediate=16, max_seq=4)
        fm = make_bert_model(cfg)
        with pytest.raises(ValueError):
            fm.predict(np.zeros((1, 8), dtype=np.int64))

    def test_mlm_step_reduces_loss(self):
        cfg = BertConfig(vocab=50, hidden=16, layers=1, heads=2,
                         intermediate=32, max_seq=16)
        fm = make_bert_model(cfg, seed=5)
        rng = np.random.default_rng(5)
        ids = rng.integers(0, 50, size=(4, 12))
        targets = np.full_like(ids, -100)
        targets[:, ::3] = ids[:, ::3]
        l0, g = fm.loss_and_grad(ids, targets)
        fm.params_flat[...] -= 0.5 * g
        l1, _ = fm.loss_and_grad(ids, targets)
        assert l1 < l0


class TestFlatModel:
    def test_flat_view_is_live(self):
        fm = make_lstm_speech_model(features=4, hidden=4, layers=1,
                                    classes=3)
        layer_w = fm.module.stack.layers[0].W
        fm.params_flat[...] = 0.0
        assert np.all(layer_w.data == 0.0)
        layer_w.data[...] = 1.0
        assert fm.params_flat[:layer_w.size].max() == 1.0

    def test_grad_flat_collects_all_layers(self):
        fm = make_lstm_speech_model(features=4, hidden=4, layers=1,
                                    classes=3)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=(2, 3))
        _, g = fm.loss_and_grad(x, y)
        assert g.shape == (fm.nparams,)
        assert np.count_nonzero(g) > 0.5 * g.size

    def test_train_flops_scales_with_batch(self):
        fm = make_vgg16_model(width_mult=0.1)
        assert fm.train_flops(4) == 2 * fm.train_flops(2) > 0
