"""Fixture tests for the ``repro-lint`` static-analysis subsystem.

Every rule gets positive fixtures (the rule fires) and negative fixtures
(the sanctioned idiom passes); plus suppression syntax, the RL000
meta-rule and the JSON report schema.  Fixtures are linted via
:func:`repro.analysis.lint_source` with fake repo-relative paths, so no
temp files are needed for the rule tests.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.core import META_CODE, LintReport, lint_paths

pytestmark = pytest.mark.analysis


def codes(src: str, path: str = "src/repro/sim.py") -> list:
    findings, _ = lint_source(textwrap.dedent(src), path)
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# RL001 — nondeterminism sources
# ---------------------------------------------------------------------------
class TestRL001:
    def test_wall_clock_calls_fire(self):
        src = """
        import time
        def f():
            a = time.time()
            b = time.perf_counter()
            time.sleep(0.1)
        """
        assert codes(src) == ["RL001"] * 3

    def test_from_import_alias_fires(self):
        src = """
        from time import perf_counter as pc
        def f():
            return pc()
        """
        assert codes(src) == ["RL001"]

    def test_datetime_now_fires(self):
        src = """
        import datetime
        def f():
            return datetime.datetime.now()
        """
        assert codes(src) == ["RL001"]

    def test_global_numpy_rng_fires(self):
        src = """
        import numpy as np
        def f():
            np.random.seed(0)
            return np.random.rand(4)
        """
        assert codes(src) == ["RL001"] * 2

    def test_seeded_generator_instance_passes(self):
        src = """
        import numpy as np
        def f(seed):
            rng = np.random.default_rng(seed)
            return rng.standard_normal(4)
        """
        assert codes(src) == []

    def test_global_stdlib_random_fires(self):
        src = """
        import random
        def f():
            return random.randrange(10)
        """
        assert codes(src) == ["RL001"]

    def test_seeded_random_instance_passes(self):
        src = """
        import random
        def f(seed):
            return random.Random(seed).randrange(10)
        """
        assert codes(src) == []

    def test_os_urandom_fires(self):
        src = """
        import os
        def f():
            return os.urandom(8)
        """
        assert codes(src) == ["RL001"]

    def test_id_ordering_key_fires(self):
        src = """
        def f(xs):
            xs.sort(key=id)
            return sorted(xs, key=lambda v: id(v))
        """
        assert codes(src) == ["RL001"] * 2

    def test_id_magnitude_compare_fires(self):
        src = """
        def f(a, b):
            return id(a) < id(b)
        """
        assert codes(src) == ["RL001"]

    def test_id_lookup_passes(self):
        src = """
        def f(registry, arr):
            return registry[id(arr)]
        """
        assert codes(src) == []

    def test_set_iteration_fires(self):
        src = """
        def f(items):
            total = 0
            for x in {i[0] for i in items}:
                total += x
            for y in set(items):
                total += y
            return total
        """
        assert codes(src) == ["RL001"] * 2

    def test_sorted_set_iteration_passes(self):
        src = """
        def f(items):
            return [x for x in sorted(set(items))]
        """
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RL002 — loaned-buffer mutation (allreduce/ schemes only)
# ---------------------------------------------------------------------------
AR = "src/repro/allreduce/scheme.py"


class TestRL002:
    def test_augassign_on_recv_fires(self):
        src = """
        def f(comm, x):
            got = comm.recv(0)
            got += x
        """
        assert codes(src, AR) == ["RL002"]

    def test_slice_store_fires(self):
        src = """
        def f(comm, x):
            got = comm.recv(0)
            got[0:2] = x
        """
        assert codes(src, AR) == ["RL002"]

    def test_numpy_out_kwarg_fires(self):
        src = """
        import numpy as np
        def f(comm, a, b):
            got = comm.sendrecv(a, 1, 1)
            np.add(a, b, out=got)
        """
        assert codes(src, AR) == ["RL002"]

    def test_waitall_loop_var_mutation_fires(self):
        src = """
        def f(comm, reqs):
            for m in comm.waitall(reqs):
                m.sort()
        """
        assert codes(src, AR) == ["RL002"]

    def test_indexing_taints_fires(self):
        src = """
        def f(comm, reqs):
            msgs = comm.waitall(reqs)
            first = msgs[0]
            first.fill(0)
        """
        assert codes(src, AR) == ["RL002"]

    def test_owned_copy_passes(self):
        src = """
        def f(comm, x):
            got = comm.recv(0)
            own = got.copy()
            own += x
            own[0:2] = x
            return own
        """
        assert codes(src, AR) == []

    def test_rebinding_clears_taint(self):
        src = """
        import numpy as np
        def f(comm, n):
            got = comm.recv(0)
            got = np.zeros(n)
            got += 1
            return got
        """
        assert codes(src, AR) == []

    def test_reading_tainted_passes(self):
        src = """
        def f(comm, acc):
            got = comm.recv(0)
            acc += got
            return acc.sum() + got.sum()
        """
        assert codes(src, AR) == []

    def test_outside_allreduce_not_checked(self):
        src = """
        def f(comm, x):
            got = comm.recv(0)
            got += x
        """
        assert codes(src, "src/repro/serve/engine.py") == []


# ---------------------------------------------------------------------------
# RL003 — fault-guard dominance (comm/network.py, comm/communicator.py,
# serve/loop.py)
# ---------------------------------------------------------------------------
NET = "src/repro/comm/network.py"


class TestRL003:
    def test_unguarded_deref_fires(self):
        src = """
        class Network:
            def f(self, rank):
                return self.faults.crash_time[rank]
        """
        assert codes(src, NET) == ["RL003"]

    def test_direct_guard_passes(self):
        src = """
        class Network:
            def f(self, rank):
                if self.faults is not None:
                    return self.faults.crash_time[rank]
                return 0.0
        """
        assert codes(src, NET) == []

    def test_alias_guard_passes(self):
        src = """
        def f(net, rank):
            f = net.faults
            if f is not None:
                return f.crash_time[rank]
            return 0.0
        """
        assert codes(src, NET) == []

    def test_early_return_guard_passes(self):
        src = """
        def f(net, it):
            f = net.faults
            if f is None or it is None:
                return
            f.straggle(it)
        """
        assert codes(src, NET) == []

    def test_boolop_shortcircuit_passes(self):
        src = """
        class Network:
            def f(self, dst):
                if self.faults is not None and self.faults.link_faulty[dst]:
                    return 1.0
                return 0.0
        """
        assert codes(src, NET) == []

    def test_ifexp_guard_passes(self):
        src = """
        class Network:
            def f(self):
                return self.faults.detect_timeout \\
                    if self.faults is not None else 0.0
        """
        assert codes(src, NET) == []

    def test_guard_does_not_leak_across_functions(self):
        src = """
        class Network:
            def ok(self):
                if self.faults is not None:
                    return self.faults.detect_timeout
                return 0.0
            def bad(self):
                return self.faults.detect_timeout
        """
        assert codes(src, NET) == ["RL003"]

    def test_outside_hot_paths_not_checked(self):
        src = """
        def f(net, rank):
            return net.faults.crash_time[rank]
        """
        assert codes(src, "src/repro/comm/faults.py") == []

    def test_serve_loop_unguarded_deref_fires(self):
        # the serving loop is a hot path too: its fault-free dispatch
        # must stay a single `faults is not None` test
        src = """
        def _rank_serve(comm, cfg, workload):
            faults = comm.net.faults
            timeout = faults.detect_timeout
            return timeout
        """
        assert codes(src, "src/repro/serve/loop.py") == ["RL003"]

    def test_serve_loop_assert_guard_passes(self):
        src = """
        def _rank_serve_faulted(comm, cfg, workload, faults):
            assert faults is not None
            timeout = faults.detect_timeout
            return timeout
        """
        assert codes(src, "src/repro/serve/loop.py") == []

    def test_serve_loop_dispatch_guard_passes(self):
        src = """
        def _rank_serve(comm, cfg, workload):
            faults = comm.net.faults
            if faults is not None:
                return faults.detect_timeout
            return 0.0
        """
        assert codes(src, "src/repro/serve/loop.py") == []

    def test_other_serve_files_not_checked(self):
        src = """
        def f(comm):
            return comm.net.faults.detect_timeout
        """
        assert codes(src, "src/repro/serve/batcher.py") == []


# ---------------------------------------------------------------------------
# RL004 — GenEngine trampoline blocking discipline (comm/engine.py)
# ---------------------------------------------------------------------------
ENG = "src/repro/comm/engine.py"


class TestRL004:
    def test_blocking_call_in_unsanctioned_method_fires(self):
        src = """
        class GenEngine:
            def _step(self, rank):
                self._tramp_lock.acquire()
        """
        assert codes(src, ENG) == ["RL004"]

    def test_time_sleep_fires(self):
        src = """
        import time
        class GenEngine:
            def match_blocking(self, dst):
                time.sleep(0.1)
        """
        # sleeping in engine code is both nondeterministic (RL001) and a
        # blocking-discipline violation (RL004)
        assert codes(src, ENG) == ["RL001", "RL004"]

    def test_threading_primitive_creation_fires(self):
        src = """
        import threading
        class GenEngine:
            def helper(self):
                return threading.Event()
        """
        assert codes(src, ENG) == ["RL004"]

    def test_sanctioned_methods_pass(self):
        src = """
        import threading
        class GenEngine:
            def _dispatch_carrier(self, rank, fn):
                self._resume[rank].release()
                self._tramp_lock.acquire()
            def _carrier_main(self, rank):
                self._resume[rank].acquire()
        """
        assert codes(src, ENG) == []

    def test_nonblocking_query_passes(self):
        src = """
        import threading
        class GenEngine:
            def _on_trampoline(self):
                return threading.get_ident() == self._tramp_ident
        """
        assert codes(src, ENG) == []

    def test_other_classes_not_checked(self):
        src = """
        class CoopEngine:
            def _suspend(self, rank):
                self._resume[rank].acquire()
        """
        assert codes(src, ENG) == []

    def test_other_files_not_checked(self):
        src = """
        class GenEngine:
            def _step(self):
                self._lock.acquire()
        """
        assert codes(src, "src/repro/comm/network.py") == []


# ---------------------------------------------------------------------------
# Suppressions and the RL000 meta-rule
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_line_suppression_with_reason(self):
        src = """
        import time
        def f():
            return time.time()  # repro-lint: ignore[RL001] -- perf harness
        """
        findings, suppressed = lint_source(textwrap.dedent(src), "src/x.py")
        assert findings == []
        assert suppressed == 1

    def test_standalone_pragma_covers_next_code_line(self):
        src = """
        import time
        def f():
            # repro-lint: ignore[RL001] -- wall-clock needed here,
            # explained over two comment lines
            return time.time()
        """
        findings, suppressed = lint_source(textwrap.dedent(src), "src/x.py")
        assert findings == []
        assert suppressed == 1

    def test_file_suppression(self):
        src = """
        # repro-lint: ignore-file[RL001] -- benchmark measures wall time
        import time
        def f():
            return time.time() + time.perf_counter()
        """
        findings, suppressed = lint_source(textwrap.dedent(src), "src/x.py")
        assert findings == []
        assert suppressed == 2

    def test_suppression_is_code_specific(self):
        src = """
        import time
        def f():
            return time.time()  # repro-lint: ignore[RL002] -- wrong code
        """
        assert codes(src, "src/x.py") == ["RL001"]

    def test_reasonless_pragma_reports_rl000(self):
        # Assemble the reasonless pragma at runtime so this literal does
        # not appear in the test file itself (which is also linted).
        pragma = "# repro-lint: ignore" + "[RL001]"
        src = f"""
        import time
        def f():
            return time.time()  {pragma}
        """
        got = codes(src, "src/x.py")
        # the pragma is invalid, so RL001 still fires AND RL000 reports it
        assert sorted(got) == [META_CODE, "RL001"]


# ---------------------------------------------------------------------------
# Report plumbing: JSON schema, exit codes, file walking
# ---------------------------------------------------------------------------
class TestReport:
    def test_json_schema(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "import time\n\n\ndef f():\n    return time.time()\n")
        report = lint_paths([str(tmp_path)])
        obj = report.to_json_obj()
        assert json.loads(json.dumps(obj)) == obj  # JSON-serializable
        assert obj["version"] == 1
        assert obj["files_checked"] == 2
        assert obj["counts"] == {"RL001": 1}
        assert obj["errors"] == []
        (finding,) = obj["findings"]
        assert set(finding) == {"path", "line", "col", "code", "message"}
        assert finding["code"] == "RL001"
        assert finding["line"] == 5

    def test_exit_codes(self, tmp_path):
        assert LintReport([], 1, 0, []).exit_code == 0
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n")
        assert lint_paths([str(tmp_path)]).exit_code == 1
        (tmp_path / "bad.py").write_text("def broken(:\n")
        report = lint_paths([str(tmp_path)])
        assert report.exit_code == 2
        assert report.errors

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 1
        assert report.findings == []

    def test_cli_json_and_select(self, tmp_path, capsys):
        from repro.analysis.cli import main
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n")
        rc = main([str(tmp_path), "--format", "json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert out["counts"] == {"RL001": 1}
        # selecting a rule that cannot fire here exits clean
        assert main([str(tmp_path), "--select", "RL004"]) == 0
        assert main([str(tmp_path), "--select", "RL999"]) == 2

    def test_repo_is_clean(self):
        # The shipped tree must lint clean (the CI gate); every
        # suppression in it carries a reason, else RL000 would fire.
        report = lint_paths(["src", "benchmarks", "tests"])
        assert report.errors == []
        assert [f.format() for f in report.findings] == []
