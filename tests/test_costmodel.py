"""Analytic cost model (Table 1) and its calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import NetworkModel
from repro.costmodel import (
    comm_cost,
    dense_cost,
    expected_union,
    gtopk_cost,
    iteration_seconds,
    oktopk_cost,
    sparsify_cost_seconds,
    topka_cost,
    topkdsa_cost,
    validate_against_measurement,
)

N, K = 1 << 20, 10_000


class TestCostFunctions:
    def test_dense_bandwidth_approaches_2n(self):
        assert dense_cost(N, 2).bandwidth_words == pytest.approx(N)
        assert dense_cost(N, 1024).bandwidth_words == pytest.approx(
            2 * N, rel=0.01)

    def test_topka_linear_in_p(self):
        c8 = topka_cost(N, 8, K).bandwidth_words
        c16 = topka_cost(N, 16, K).bandwidth_words
        assert c16 / c8 == pytest.approx(15 / 7)

    def test_oktopk_bounded_by_6k(self):
        for p in (2, 16, 256):
            c = oktopk_cost(N, p, K).bandwidth_words
            assert c <= 6 * K
            assert c >= 2 * K * (p - 1) / p

    def test_gtopk_log_growth(self):
        c = gtopk_cost(N, 256, K)
        assert c.bandwidth_words == pytest.approx(4 * K * 8)

    def test_crossover_topka_vs_dense(self):
        """TopkA beats dense at small P but loses once 2k(P-1) > 2n."""
        p_cross = N // K + 1
        assert (topka_cost(N, 4, K).bandwidth_words
                < dense_cost(N, 4).bandwidth_words)
        assert (topka_cost(N, 2 * p_cross, K).bandwidth_words
                > dense_cost(N, 2 * p_cross).bandwidth_words)

    def test_oktopk_always_beats_topka_beyond_3_ranks(self):
        for p in (4, 8, 64, 256):
            assert (oktopk_cost(N, p, K).bandwidth_words
                    < topka_cost(N, p, K).bandwidth_words)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            comm_cost("nope", N, 8, K)


class TestExpectedUnion:
    def test_single_set(self):
        assert expected_union(1000, 100, 1) == pytest.approx(100)

    def test_saturates_at_n(self):
        assert expected_union(1000, 500, 50) <= 1000

    @given(st.integers(10, 10_000), st.integers(1, 100),
           st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_m(self, n, k, m):
        k = min(k, n)
        assert (expected_union(n, k, m + 1)
                >= expected_union(n, k, m) - 1e-9)

    def test_dsa_interval(self):
        """DSA cost sits between its 4k best case and the dense switch."""
        best = topkdsa_cost(N, 8, K, overlap=1.0).bandwidth_words
        worst = topkdsa_cost(N, 8, K, overlap=0.0).bandwidth_words
        assert best <= worst
        assert best >= 2 * K  # at least ship the data once
        assert worst <= (2 * K + N)  # the paper's upper interval end


class TestSparsifyCosts:
    def test_dense_free(self):
        m = NetworkModel()
        assert sparsify_cost_seconds("dense", N, K, 8, m) == 0.0

    def test_oktopk_amortizes_with_tau_prime(self):
        m = NetworkModel()
        c1 = sparsify_cost_seconds("oktopk", N, K, 8, m, tau_prime=1)
        c64 = sparsify_cost_seconds("oktopk", N, K, 8, m, tau_prime=64)
        assert c64 < c1

    def test_oktopk_cheaper_than_topka(self):
        m = NetworkModel()
        assert (sparsify_cost_seconds("oktopk", N, K, 8, m, tau_prime=32)
                < sparsify_cost_seconds("topka", N, K, 8, m))

    def test_unknown(self):
        with pytest.raises(ValueError):
            sparsify_cost_seconds("nope", N, K, 8, NetworkModel())


class TestIterationSeconds:
    def test_breakdown_keys_and_total(self):
        b = iteration_seconds("oktopk", N, 8, K, NetworkModel(),
                              compute_seconds=0.1)
        assert set(b) == {"sparsification", "communication",
                         "computation+io", "total"}
        assert b["total"] == pytest.approx(
            b["sparsification"] + b["communication"] + b["computation+io"])

    def test_dense_ovlp_overlap_credit(self):
        m = NetworkModel()
        big_compute = 100.0
        b = iteration_seconds("dense_ovlp", N, 8, K, m,
                              compute_seconds=big_compute)
        assert b["communication"] == 0.0  # fully hidden
        plain = iteration_seconds("dense", N, 8, K, m,
                                  compute_seconds=big_compute)
        assert plain["communication"] > 0


class TestCalibration:
    def test_measured_tracks_model_for_dense(self):
        cal = validate_against_measurement("dense", n=2048, p=4, k=32)
        assert cal.ratio == pytest.approx(1.0, abs=0.05)

    def test_result_fields(self):
        cal = validate_against_measurement("topka", n=1024, p=4, k=16)
        assert cal.scheme == "topka"
        assert cal.predicted_words == 2 * 16 * 3
