"""Gradient checks and behavioural tests for every nn layer."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    LSTM,
    MaxPool2d,
    MultiHeadSelfAttention,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
    TransformerEncoderLayer,
)
from util_gradcheck import gradcheck_input, gradcheck_model


def _x(*shape, seed=0, scale=1.0):
    return (np.random.default_rng(seed).normal(size=shape) * scale
            ).astype(np.float32)


class TestLinear:
    def test_forward_matches_numpy(self):
        lin = Linear(4, 3, rng=np.random.default_rng(1))
        x = _x(2, 4)
        np.testing.assert_allclose(
            lin.forward(x), x @ lin.W.data.T + lin.b.data, rtol=1e-5)

    def test_gradcheck(self):
        gradcheck_model(Linear(5, 4, rng=np.random.default_rng(2)), _x(3, 5))
        gradcheck_input(Linear(5, 4, rng=np.random.default_rng(2)), _x(3, 5))

    def test_3d_input(self):
        lin = Linear(4, 3, rng=np.random.default_rng(1))
        x = _x(2, 7, 4)
        assert lin.forward(x).shape == (2, 7, 3)
        gradcheck_model(Linear(4, 3, rng=np.random.default_rng(3)),
                        _x(2, 7, 4))


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, GELU, Tanh, Sigmoid])
    def test_gradcheck(self, layer_cls):
        x = _x(3, 6, seed=4)
        x += 0.2 * np.sign(x)  # keep away from the ReLU kink at 0
        gradcheck_input(layer_cls(), x)

    def test_relu_zeroes_negatives(self):
        r = ReLU()
        out = r.forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_gelu_matches_reference_points(self):
        g = GELU()
        out = g.forward(np.array([0.0, 1.0, -1.0], dtype=np.float32))
        np.testing.assert_allclose(out, [0.0, 0.8412, -0.1588], atol=1e-3)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(5))
        assert conv.forward(_x(2, 3, 8, 8)).shape == (2, 8, 8, 8)

    def test_stride(self):
        conv = Conv2d(1, 2, 3, stride=2, padding=1,
                      rng=np.random.default_rng(5))
        assert conv.forward(_x(1, 1, 8, 8)).shape == (1, 2, 4, 4)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(6)
        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = _x(1, 2, 5, 5, seed=7)
        out = conv.forward(x)
        # direct (slow) reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for f in range(3):
            for i in range(5):
                for j in range(5):
                    patch = xp[0, :, i:i + 3, j:j + 3]
                    ref[0, f, i, j] = np.sum(
                        patch * conv.W.data[f]) + conv.b.data[f]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_gradcheck(self):
        gradcheck_model(Conv2d(2, 3, 3, padding=1,
                               rng=np.random.default_rng(8)),
                        _x(2, 2, 4, 4, seed=9))
        gradcheck_input(Conv2d(2, 3, 3, padding=1,
                               rng=np.random.default_rng(8)),
                        _x(2, 2, 4, 4, seed=9))


class TestMaxPool:
    def test_pooling_values(self):
        mp = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = mp.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_gradcheck(self):
        gradcheck_input(MaxPool2d(2), _x(2, 2, 4, 4, seed=10))

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(_x(1, 1, 5, 4))


class TestNorms:
    def test_batchnorm_normalizes(self):
        bn = BatchNorm2d(3)
        x = _x(8, 3, 4, 4, seed=11, scale=5.0) + 2.0
        out = bn.forward(x, training=True)
        assert abs(out.mean()) < 1e-4
        assert abs(out.var() - 1.0) < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self):
        bn = BatchNorm2d(2, momentum=1.0)
        x = _x(16, 2, 4, 4, seed=12, scale=2.0) + 1.0
        bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        assert abs(out.mean()) < 0.05

    def test_batchnorm_gradcheck(self):
        gradcheck_model(BatchNorm2d(2), _x(4, 2, 3, 3, seed=13))
        gradcheck_input(BatchNorm2d(2), _x(4, 2, 3, 3, seed=13))

    def test_layernorm_gradcheck(self):
        gradcheck_model(LayerNorm(6), _x(4, 6, seed=14))
        gradcheck_input(LayerNorm(6), _x(2, 3, 6, seed=14))


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        x = _x(4, 4, seed=15)
        np.testing.assert_array_equal(d.forward(x, training=False), x)

    def test_training_scales_survivors(self):
        d = Dropout(0.5, rng=np.random.default_rng(16))
        x = np.ones((1000,), dtype=np.float32)
        out = d.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(17))
        ids = np.array([[1, 2], [2, 3]])
        out = emb.forward(ids)
        np.testing.assert_array_equal(out[0, 1], emb.W.data[2])

    def test_grad_accumulates_repeats(self):
        emb = Embedding(5, 2, rng=np.random.default_rng(18))
        ids = np.array([[1, 1]])
        out = emb.forward(ids)
        emb.backward(np.ones_like(out))
        np.testing.assert_allclose(emb.W.grad[1], [2.0, 2.0])

    def test_rejects_float_ids(self):
        with pytest.raises(TypeError):
            Embedding(5, 2).forward(np.zeros((1, 2), dtype=np.float32))


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(5, 7, num_layers=2, rng=np.random.default_rng(19))
        assert lstm.forward(_x(3, 4, 5, seed=20)).shape == (3, 4, 7)

    def test_gradcheck_single_layer(self):
        gradcheck_model(LSTM(3, 4, rng=np.random.default_rng(21)),
                        _x(2, 3, 3, seed=22), n_checks=16)
        gradcheck_input(LSTM(3, 4, rng=np.random.default_rng(21)),
                        _x(2, 3, 3, seed=22))

    def test_gradcheck_stacked(self):
        gradcheck_model(LSTM(3, 3, num_layers=2,
                             rng=np.random.default_rng(23)),
                        _x(2, 4, 3, seed=24), n_checks=16)

    def test_state_propagates_through_time(self):
        """Changing an early input changes later outputs."""
        lstm = LSTM(2, 3, rng=np.random.default_rng(25))
        x = _x(1, 5, 2, seed=26)
        out1 = lstm.forward(x).copy()
        x2 = x.copy()
        x2[0, 0] += 1.0
        out2 = lstm.forward(x2)
        assert not np.allclose(out1[0, -1], out2[0, -1])


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(27))
        assert attn.forward(_x(2, 5, 8, seed=28)).shape == (2, 5, 8)

    def test_dim_head_mismatch(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2)

    def test_gradcheck(self):
        gradcheck_model(
            MultiHeadSelfAttention(4, 2, rng=np.random.default_rng(29)),
            _x(2, 3, 4, seed=30), n_checks=16)
        gradcheck_input(
            MultiHeadSelfAttention(4, 2, rng=np.random.default_rng(29)),
            _x(2, 3, 4, seed=30))

    def test_encoder_layer_gradcheck(self):
        gradcheck_model(
            TransformerEncoderLayer(4, 2, 8, rng=np.random.default_rng(31)),
            _x(2, 3, 4, seed=32), n_checks=20)

    def test_permutation_equivariance(self):
        """Self-attention without masks is permutation-equivariant."""
        attn = MultiHeadSelfAttention(6, 2, rng=np.random.default_rng(33))
        x = _x(1, 4, 6, seed=34)
        out = attn.forward(x)
        perm = [2, 0, 3, 1]
        out_p = attn.forward(x[:, perm])
        np.testing.assert_allclose(out_p, out[:, perm], rtol=1e-4, atol=1e-5)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss(self):
        ce = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10), dtype=np.float32)
        y = np.arange(4) % 10
        loss, _ = ce.forward_backward(logits, y)
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_gradient_sums_to_zero_per_row(self):
        ce = SoftmaxCrossEntropy()
        logits = _x(3, 5, seed=35)
        _, g = ce.forward_backward(logits, np.array([0, 1, 2]))
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-6)

    def test_ignore_index_masks(self):
        ce = SoftmaxCrossEntropy(ignore_index=-100)
        logits = _x(2, 4, 5, seed=36)
        y = np.full((2, 4), -100)
        y[0, 1] = 2
        loss, g = ce.forward_backward(logits, y)
        assert loss > 0
        assert np.all(g[1] == 0)
        assert np.all(g[0, 0] == 0) and np.any(g[0, 1] != 0)

    def test_all_ignored_returns_zero(self):
        ce = SoftmaxCrossEntropy()
        logits = _x(2, 3, seed=37)
        loss, g = ce.forward_backward(logits, np.array([-100, -100]))
        assert loss == 0.0 and np.all(g == 0)

    def test_numerical_gradient(self):
        ce = SoftmaxCrossEntropy()
        logits = _x(2, 4, seed=38).astype(np.float64)
        y = np.array([1, 3])
        _, g = ce.forward_backward(logits, y)
        eps = 1e-5
        for i in range(2):
            for j in range(4):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                num = (ce.forward_backward(lp, y)[0]
                       - ce.forward_backward(lm, y)[0]) / (2 * eps)
                assert num == pytest.approx(g[i, j], rel=1e-3, abs=1e-6)
