"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.comm import Network, NetworkModel, run_spmd
from repro.errors import ConfigError, RankFailedError
from repro.train import TrainerConfig


class TestAllreduceValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ConfigError):
            make_allreduce("oktopk", k=0)

    def test_density_range(self):
        with pytest.raises(ConfigError):
            make_allreduce("topka", density=0.0)
        with pytest.raises(ConfigError):
            make_allreduce("topka", density=1.5)

    def test_sparse_scheme_requires_k_or_density(self):
        with pytest.raises(ConfigError):
            make_allreduce("oktopk")

    def test_dense_needs_neither(self):
        make_allreduce("dense")

    def test_oktopk_invalid_periods(self):
        with pytest.raises(ValueError):
            make_allreduce("oktopk", k=4, tau=0)
        with pytest.raises(ValueError):
            make_allreduce("oktopk", k=4, tau_prime=0)

    def test_dense_ovlp_invalid_buckets(self):
        with pytest.raises(ValueError):
            make_allreduce("dense_ovlp", nbuckets=0)

    def test_reduce_rejects_2d_input(self):
        def prog(comm):
            algo = make_allreduce("oktopk", k=4)
            algo.reduce(comm, np.zeros((4, 4), dtype=np.float32), 1)

        with pytest.raises(RankFailedError):
            run_spmd(2, prog)

    def test_reduce_rejects_t_zero(self):
        def prog(comm):
            algo = make_allreduce("oktopk", k=4)
            algo.reduce(comm, np.zeros(16, dtype=np.float32), 0)

        with pytest.raises(RankFailedError):
            run_spmd(2, prog)


class TestDegenerateInputs:
    @pytest.mark.parametrize("scheme", ["topka", "topkdsa", "gtopk",
                                        "gaussiank", "oktopk"])
    def test_all_zero_gradient(self, scheme):
        def prog(comm):
            algo = make_allreduce(scheme, k=8)
            res = algo.reduce(comm, np.zeros(64, dtype=np.float32), 1)
            return res.update

        res = run_spmd(4, prog)
        dense = res[0].to_dense() if hasattr(res[0], "to_dense") else res[0]
        assert np.all(dense == 0)

    @pytest.mark.parametrize("scheme", ["topka", "oktopk", "gtopk"])
    def test_k_geq_n(self, scheme):
        """k as large as the gradient: everything is selected, the result
        equals the dense sum."""
        n, p = 16, 4

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            g = rng.normal(size=n).astype(np.float32)
            algo = make_allreduce(scheme, k=n)
            return algo.reduce(comm, g, 1).update.to_dense(), g

        res = run_spmd(p, prog)
        expect = np.sum([res[r][1] for r in range(p)], axis=0)
        np.testing.assert_allclose(res[0][0], expect, rtol=1e-4, atol=1e-5)

    def test_single_element_gradient(self):
        def prog(comm):
            algo = make_allreduce("oktopk", k=1)
            return algo.reduce(
                comm, np.array([float(comm.rank + 1)], dtype=np.float32),
                1).update.to_dense()

        res = run_spmd(3, prog)
        np.testing.assert_allclose(res[0], [6.0])

    def test_p1_everything_local(self):
        """Single worker: no communication at all in steady state."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=8, tau_prime=64)
            rng = np.random.default_rng(0)
            for t in (1, 2):
                acc = rng.normal(size=128).astype(np.float32)
                if t == 2:
                    before = int(comm.net.words_sent[comm.rank])
                algo.reduce(comm, acc, t)
            return int(comm.net.words_sent[comm.rank]) - before

        assert run_spmd(1, prog)[0] == 0

    def test_nan_gradient_propagates_not_hangs(self):
        """NaNs are numerically poisonous but must not deadlock ranks."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=4)
            acc = np.full(32, np.nan, dtype=np.float32)
            res = algo.reduce(comm, acc, 1)
            return res.update.nnz

        res = run_spmd(2, prog)  # completes without hanging
        assert all(isinstance(v, int) for v in res.results)


class TestTrainerConfigValidation:
    def test_iterations_positive(self):
        with pytest.raises(ConfigError):
            TrainerConfig(iterations=0)

    def test_mode_validated(self):
        with pytest.raises(ConfigError):
            TrainerConfig(iterations=1, mode="rmsprop")


class TestNetworkEdgeCases:
    def test_zero_size_messages_cost_latency_only(self):
        model = NetworkModel(alpha=1e-3, beta=1e-6)

        def prog(comm):
            if comm.rank == 0:
                comm.send(None, dest=1)
            else:
                comm.recv(0)
            return comm.clock

        res = run_spmd(2, prog, model=model)
        assert res[1] == pytest.approx(1e-3)

    def test_trace_records_transfers(self):
        net = Network(2, trace=True)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(5, dtype=np.float32), dest=1, tag=3)
            else:
                comm.recv(0, tag=3)

        run_spmd(2, prog, network=net)
        assert len(net.trace) == 1
        rec = net.trace[0]
        assert (rec.src, rec.dst, rec.tag, rec.nwords) == (0, 1, 3, 5)
        assert rec.t_done >= rec.t_first

    def test_save_restore_roundtrip(self):
        net = Network(2)

        def prog(comm):
            if comm.rank == 0:
                state = comm.net.save_state()
                comm.send(np.zeros(100, dtype=np.float32), dest=1)
                comm.net.restore_state(state)
            else:
                comm.recv(0)

        run_spmd(2, prog, network=net)
        assert net.stats().words_sent[0] == 0  # rolled back

    def test_mismatched_network_size(self):
        net = Network(4)
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: None, network=net)

    def test_negative_model_params_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(alpha=-1.0)
