"""Threshold estimators: exact, reused (Ok-Topk), Gaussian (Gaussian-k)."""

import numpy as np
import pytest

from repro.sparse import (
    ReusedThreshold,
    adjusted_gaussian_threshold,
    exact_threshold,
    gaussian_threshold,
)


def _gradient_like(n=20000, seed=0, tail="normal"):
    """Synthetic gradient value distributions.

    ``laplace`` has heavier tails than a Gaussian fit; late-training real
    gradients are *lighter*-tailed which we model by a clipped normal.
    """
    rng = np.random.default_rng(seed)
    if tail == "normal":
        return rng.normal(0, 0.01, size=n).astype(np.float32)
    if tail == "light":
        x = rng.normal(0, 0.01, size=n)
        return np.clip(x, -0.02, 0.02).astype(np.float32)
    if tail == "laplace":
        return rng.laplace(0, 0.01, size=n).astype(np.float32)
    raise ValueError(tail)


class TestExactThreshold:
    def test_selects_approximately_k(self):
        x = _gradient_like()
        k = 200
        t = exact_threshold(x, k)
        assert np.count_nonzero(np.abs(x) >= t) == k  # continuous, no ties


class TestGaussianThreshold:
    def test_close_to_exact_on_gaussian_data(self):
        x = _gradient_like(tail="normal")
        k = 200
        ratio = gaussian_threshold(x, k) / exact_threshold(x, k)
        assert 0.9 < ratio < 1.1

    def test_overestimates_on_light_tails(self):
        """Figure 4: real (light-tailed) distributions make the Gaussian
        fit predict too large a threshold -> too few selected values."""
        x = _gradient_like(tail="light")
        k = 200
        t_gauss = gaussian_threshold(x, k)
        t_exact = exact_threshold(x, k)
        assert t_gauss > t_exact
        assert np.count_nonzero(np.abs(x) >= t_gauss) < k

    def test_k_geq_n_returns_zero(self):
        assert gaussian_threshold(np.ones(5, np.float32), 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            gaussian_threshold(np.ones(5, np.float32), 0)

    def test_zero_variance(self):
        x = np.full(100, 2.5, dtype=np.float32)
        assert gaussian_threshold(x, 10) == pytest.approx(2.5)

    def test_adjustment_recovers_three_quarters_k(self):
        """Section 5.4: the threshold is scaled until >= 3k/4 selected."""
        x = _gradient_like(tail="light")
        k = 200
        t = adjusted_gaussian_threshold(x, k)
        assert np.count_nonzero(np.abs(x) >= t) >= 0.75 * k


class TestReusedThreshold:
    def test_reevaluates_on_schedule(self):
        est = ReusedThreshold(tau_prime=4)
        x1 = _gradient_like(seed=1)
        # iteration 1: due; 2-4: reuse; 5: due again
        t1 = est.get(x1, 100, t=1)
        assert est.evaluations == 1
        t2 = est.get(_gradient_like(seed=2), 100, t=2)
        assert t2 == t1 and est.evaluations == 1
        est.get(_gradient_like(seed=3), 100, t=3)
        est.get(_gradient_like(seed=4), 100, t=4)
        assert est.evaluations == 1
        t5 = est.get(_gradient_like(seed=5), 100, t=5)
        assert est.evaluations == 2
        assert t5 != t1

    def test_first_call_always_evaluates(self):
        est = ReusedThreshold(tau_prime=64)
        est.get(_gradient_like(), 10, t=42)  # mid-period first call
        assert est.evaluations == 1

    def test_reused_threshold_stays_accurate_for_slow_process(self):
        """The key empirical claim (Figure 4): if the gradient distribution
        drifts slowly, a tau'-old threshold still selects ~k values."""
        est = ReusedThreshold(tau_prime=32)
        k, n = 500, 50000
        rng = np.random.default_rng(0)
        deviations = []
        scale = 0.01
        for t in range(1, 65):
            scale *= 0.999  # slow drift, ~0.1% per iteration
            x = rng.normal(0, scale, size=n).astype(np.float32)
            th = est.get(x, k, t)
            sel = np.count_nonzero(np.abs(x) >= th)
            deviations.append(abs(sel - k) / k)
        # Average deviation well below the paper's reported 11%
        assert np.mean(deviations) < 0.11

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ReusedThreshold(tau_prime=0)
