"""Lockstep rank-batched compute: bit-identity and fallback rules.

The batched executors (:mod:`repro.train.rankbatch`,
:mod:`repro.nn.stacked`, the batched top-k of :mod:`repro.sparse.topk`)
must produce results bit-identical to per-rank execution, and must
disengage — deterministically, on every rank — whenever ranks can
diverge (faults, elastic shrink, group communicators, tracing, runners
without a rendezvous engine).  A divergent run must therefore land on
exactly the code a never-batched run executes.
"""

import os
from dataclasses import asdict
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.harness import perf_proxy, proxy_network, train_scheme
from repro.comm import run_spmd
from repro.comm.faults import FaultPlan, RankCrash
from repro.nn.stacked import StackedModel, supports_stacking
from repro.sparse.topk import (batched_kth_largest_abs,
                               batched_threshold_select, kth_largest_abs,
                               threshold_select)
from repro.train.rankbatch import RANK_BATCH_ENV, RankBatch, stack_rows
from repro.train.rankbatch import _exec_accumulate, _exec_fwd_bwd

RUNNER_ENV = "REPRO_SPMD_RUNNER"


def _models(p):
    proxy = perf_proxy()
    return [proxy.make_model() for _ in range(p)]  # identical seed 7 init


def _batch(rng, p, b=4):
    xs = rng.normal(size=(p, b, 3, 16, 16)).astype(np.float32)
    ys = rng.integers(0, 10, size=(p, b))
    return xs, ys


class TestStackedModel:
    def test_supports_stacking(self):
        assert supports_stacking(_models(1)[0])
        assert not supports_stacking(object())
        assert not supports_stacking(None)

    def test_rows_bit_identical_to_per_rank(self):
        p = 4
        rng = np.random.default_rng(11)
        xs, ys = _batch(rng, p)
        # independent replica set for the per-rank reference
        ref = [m.loss_and_grad(xs[r], ys[r])
               for r, m in enumerate(_models(p))]
        stacked = StackedModel(_models(p))
        losses, gmat = stacked.loss_and_grad(xs, ys)
        for r in range(p):
            assert float(losses[r]) == ref[r][0]
            np.testing.assert_array_equal(gmat[r], ref[r][1])

    def test_repeated_calls_rezero_gradients(self):
        p = 2
        rng = np.random.default_rng(3)
        xs, ys = _batch(rng, p)
        stacked = StackedModel(_models(p))
        _, g1 = stacked.loss_and_grad(xs, ys)
        first = g1.copy()
        _, g2 = stacked.loss_and_grad(xs, ys)
        np.testing.assert_array_equal(first, g2)  # not accumulated twice

    def test_spmd_invariant_violation_rejected_without_rebinding(self):
        models = _models(3)
        before = [m.params_flat.copy() for m in models]
        models[1].params_flat[0] += 1.0
        with pytest.raises(ValueError, match="SPMD invariant"):
            StackedModel(models)
        # the rejected bind left every model on its own storage
        for m, b in zip(models, before):
            assert m.params_flat.base is None or \
                m.params_flat.base.ndim != 2
        np.testing.assert_array_equal(models[0].params_flat, before[0])


class TestStackRows:
    def test_consecutive_rows_of_one_base_are_zero_copy(self):
        base = np.arange(12, dtype=np.float32).reshape(3, 4).copy()
        out = stack_rows([base[0], base[1], base[2]])
        assert out is base

    def test_unrelated_rows_are_stacked_by_copy(self):
        rows = [np.arange(4, dtype=np.float32) * i for i in range(3)]
        out = stack_rows(rows)
        assert out.flags.owndata  # a fresh np.stack, not a shared base
        np.testing.assert_array_equal(out, np.stack(rows))

    def test_out_of_order_rows_fall_back_to_copy(self):
        base = np.arange(8, dtype=np.float32).reshape(2, 4).copy()
        out = stack_rows([base[1], base[0]])
        assert out is not base
        np.testing.assert_array_equal(out, np.stack([base[1], base[0]]))


class TestBatchedTopk:
    def test_batched_kth_matches_per_row(self):
        rng = np.random.default_rng(5)
        xs = rng.normal(size=(6, 257)).astype(np.float32)
        for k in (1, 7, 64, 257, 400):
            ths = batched_kth_largest_abs(xs, k)
            assert ths.dtype == np.float64
            for r in range(xs.shape[0]):
                assert ths[r] == kth_largest_abs(xs[r], k)

    def test_batched_threshold_select_matches_per_row(self):
        rng = np.random.default_rng(6)
        xs = rng.normal(size=(5, 300)).astype(np.float32)
        # include exact ties at the threshold magnitude
        xs[2, 10] = xs[2, 20] = -xs[2, 30]
        ths = batched_kth_largest_abs(xs, 17)
        outs = batched_threshold_select(xs, ths)
        for r in range(xs.shape[0]):
            ref = threshold_select(xs[r], float(ths[r]))
            np.testing.assert_array_equal(outs[r].indices, ref.indices)
            np.testing.assert_array_equal(outs[r].values, ref.values)

    def test_batched_kth_rejects_bad_k(self):
        with pytest.raises(ValueError):
            batched_kth_largest_abs(np.zeros((2, 4), np.float32), 0)


class TestExecutorFallbacks:
    def test_fwd_bwd_diverged_weights_run_per_rank(self):
        net = SimpleNamespace()
        models = _models(2)
        models[1].params_flat[3] -= 0.5
        rng = np.random.default_rng(9)
        xs, ys = _batch(rng, 2)
        ref = [m.loss_and_grad(xs[r], ys[r])
               for r, m in enumerate(_models(2))]
        ref[1] = None  # recompute below against the diverged weights
        out = _exec_fwd_bwd(net, ("rb_fwdbwd", 1),
                            [(models[r], xs[r], ys[r]) for r in range(2)])
        assert out[0][0] == ref[0][0]
        np.testing.assert_array_equal(out[0][1], ref[0][1])
        assert net._rank_batch_state.stacked is None  # never bound

    def test_fwd_bwd_uneven_shards_run_per_rank(self):
        net = SimpleNamespace()
        models = _models(2)
        rng = np.random.default_rng(10)
        xs, ys = _batch(rng, 2)
        payloads = [(models[0], xs[0], ys[0]),
                    (models[1], xs[1][:-1], ys[1][:-1])]  # short shard
        out = _exec_fwd_bwd(net, ("rb_fwdbwd", 1), payloads)
        ref = _models(1)[0].loss_and_grad(xs[1][:-1], ys[1][:-1])
        assert out[1][0] == ref[0]
        np.testing.assert_array_equal(out[1][1], ref[1])

    def test_accumulate_matches_per_rank_expression(self):
        net = SimpleNamespace()
        rng = np.random.default_rng(12)
        res = rng.normal(size=(3, 50)).astype(np.float32)
        grads = rng.normal(size=(3, 50)).astype(np.float32)
        for scale in (1.0, 0.05):
            out = _exec_accumulate(
                net, ("rb_accumulate", 1),
                [(res[r], scale, grads[r]) for r in range(3)])
            for r in range(3):
                np.testing.assert_array_equal(
                    out[r], res[r] + scale * grads[r])

    def test_accumulate_diverged_scales_run_per_rank(self):
        net = SimpleNamespace()
        rng = np.random.default_rng(13)
        res = rng.normal(size=(2, 20)).astype(np.float32)
        grads = rng.normal(size=(2, 20)).astype(np.float32)
        out = _exec_accumulate(net, ("rb_accumulate", 1),
                               [(res[0], 1.0, grads[0]),
                                (res[1], 0.5, grads[1])])
        np.testing.assert_array_equal(out[0], res[0] + 1.0 * grads[0])
        np.testing.assert_array_equal(out[1], res[1] + 0.5 * grads[1])


class TestEngagementGate:
    def _gate(self, p=2, *, trace=False, runner="coop", env="1"):
        proxy = perf_proxy()

        def worker(comm):
            rb = RankBatch(comm, proxy.make_model())
            return rb.engaged()

        old = os.environ.get(RANK_BATCH_ENV)
        os.environ[RANK_BATCH_ENV] = env
        try:
            return run_spmd(p, worker, trace=trace, runner=runner).results
        finally:
            if old is None:
                del os.environ[RANK_BATCH_ENV]
            else:
                os.environ[RANK_BATCH_ENV] = old

    def test_engaged_on_coop_multirank(self):
        assert self._gate() == [True, True]

    def test_disengaged_under_threads_runner(self):
        assert self._gate(runner="threads") == [False, False]

    def test_disengaged_under_tracing(self):
        assert self._gate(trace=True) == [False, False]

    def test_disengaged_by_env(self):
        assert self._gate(env="0") == [False, False]

    def test_disengaged_under_fault_plan(self):
        proxy = perf_proxy()

        def worker(comm):
            return RankBatch(comm, proxy.make_model()).engaged()

        plan = FaultPlan(crashes=[RankCrash(rank=1, iteration=10**6)])
        res = run_spmd(2, worker, faults=plan)
        assert res.results == [False, False]

    def test_unstackable_model_disengages(self):
        def worker(comm):
            return RankBatch(comm, object()).engaged()

        assert run_spmd(2, worker).results == [False, False]


def _fingerprints(rec):
    return [asdict(r) for r in rec.records]


def _train(scheme, p, iters, *, batch_env, runner="coop", faults=None,
           elastic=False):
    proxy = perf_proxy()
    old = {k: os.environ.get(k) for k in (RANK_BATCH_ENV, RUNNER_ENV)}
    os.environ[RANK_BATCH_ENV] = batch_env
    os.environ[RUNNER_ENV] = runner
    try:
        return train_scheme(proxy, scheme, p, iters, density=0.05,
                            network=proxy_network(), faults=faults,
                            elastic=elastic)
    finally:
        for k, v in old.items():
            if v is None:
                del os.environ[k]
            else:
                os.environ[k] = v


class TestTrainerLockstepIdentity:
    @pytest.mark.parametrize("scheme", ["oktopk", "gtopk", "dense"])
    def test_batched_equals_unbatched_equals_threads(self, scheme):
        batched = _train(scheme, 4, 5, batch_env="1")
        unbatched = _train(scheme, 4, 5, batch_env="0")
        threads = _train(scheme, 4, 5, batch_env="1", runner="threads")
        assert _fingerprints(batched) == _fingerprints(unbatched)
        assert _fingerprints(batched) == _fingerprints(threads)

    def test_batching_actually_engages(self):
        """Guard against the identity above passing vacuously: a
        fault-free coop run must have bound a stacked model."""
        proxy = perf_proxy()
        from repro.data import ShardedLoader
        from repro.train import Trainer, TrainerConfig

        def worker(comm):
            train, _ = proxy.make_splits()
            loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                                   comm.size, seed=0)
            cfg = TrainerConfig(iterations=3, scheme="oktopk",
                                density=0.05, lr=proxy.lr)
            Trainer(comm, proxy.make_model(), loader, cfg).run()
            return None

        res = run_spmd(4, worker, runner="coop")
        st = getattr(res.network, "_rank_batch_state", None)
        assert st is not None and st.stacked is not None


class TestDivergenceFallback:
    def test_midrun_crash_identical_to_never_batched(self):
        """A rank crash mid-iteration (elastic shrink to P-1) must yield
        records identical to a run with batching disabled outright."""
        plan = FaultPlan(crashes=[RankCrash(rank=1, iteration=3)])
        on = _train("oktopk", 4, 6, batch_env="1", faults=plan,
                    elastic=True)
        off = _train("oktopk", 4, 6, batch_env="0", faults=plan,
                     elastic=True)
        assert _fingerprints(on) == _fingerprints(off)
        assert on.events == off.events
        assert on.events[0]["new_size"] == 3

    def test_midrun_crash_identical_across_runners(self):
        plan = FaultPlan(crashes=[RankCrash(rank=0, iteration=2)])
        coop = _train("oktopk", 4, 5, batch_env="1", faults=plan,
                      elastic=True)
        threads = _train("oktopk", 4, 5, batch_env="1", runner="threads",
                         faults=plan, elastic=True)
        assert _fingerprints(coop) == _fingerprints(threads)
        assert coop.events == threads.events
