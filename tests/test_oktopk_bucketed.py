"""Native bucketed Ok-Topk sessions: shared periodic state across buckets,
one-bucket bit-identity with one-shot reduce, stream-mode overlap wins,
convergence parity, and the session/state bugfix regressions (counter
reset, 1-based iteration contract)."""

import numpy as np
import pytest

from repro.allreduce import (
    BucketView,
    OkTopkState,
    ParamLayout,
    make_allreduce,
    run_session,
)
from repro.comm import NetworkModel, run_spmd
from repro.errors import ConfigError
from repro.sparse import COOVector

RUNNERS = ("coop", "threads")

#: layout mirroring a small multi-layer MLP (forward order; backward pushes
#: the reversed sequence, so the tail layers close the first buckets)
MLP_SIZES = [1536, 32, 1024, 32, 1024, 32, 320, 10]


def _layout(n=None):
    lay = ParamLayout.from_sizes(MLP_SIZES)
    assert n is None or lay.n == n
    return lay


N = sum(MLP_SIZES)  # 4010


def _acc(rank, t, n=N):
    rng = np.random.default_rng(1000 * rank + t)
    return rng.normal(size=n).astype(np.float32)


def _make(**kwargs):
    kwargs.setdefault("density", 0.05)
    kwargs.setdefault("tau", 2)
    kwargs.setdefault("tau_prime", 2)
    return make_allreduce("oktopk", **kwargs)


# ---------------------------------------------------------------------------
# One-bucket plans stay bit-identical to one-shot reduce (both runners)
# ---------------------------------------------------------------------------
def _run_mode(scheme, p, iters, mode, runner, bucket_size=None, stream=False):
    lay = _layout()

    def prog(comm):
        kwargs = {"density": 0.05, "tau": 2, "tau_prime": 2}
        if scheme == "oktopk_q":
            kwargs["stochastic"] = False
        algo = make_allreduce(scheme, **kwargs)
        outs = []
        for t in range(1, iters + 1):
            acc = _acc(comm.rank, t)
            if mode == "oneshot":
                res = algo.reduce(comm, acc, t)
            else:
                res = run_session(algo, comm, lay, t, acc,
                                  bucket_size=bucket_size, stream=stream)
            outs.append(res.update_dense(N).copy())
        return outs

    spmd = run_spmd(p, prog, runner=runner)
    clocks = [spmd.network.clocks[r] for r in range(p)]
    return spmd[0], spmd.stats, clocks


@pytest.mark.parametrize("scheme", ["oktopk", "oktopk_q"])
@pytest.mark.parametrize("stream", [False, True])
def test_one_bucket_plan_bit_identical_to_oneshot(scheme, stream):
    """The acceptance anchor: a one-bucket plan (bucket_size covers the
    whole layout) delegates — results, traffic counters and simulated
    makespans all match one-shot ``reduce`` bitwise, under both runners
    and regardless of stream mode."""
    p, iters = 4, 3
    ref, ref_stats, ref_clocks = _run_mode(scheme, p, iters,
                                           "oneshot", "coop")
    for runner in RUNNERS:
        got, stats, clocks = _run_mode(scheme, p, iters, "session", runner,
                                       bucket_size=10 * N, stream=stream)
        for t in range(iters):
            assert np.array_equal(ref[t], got[t]), (scheme, runner, t)
        assert np.array_equal(ref_stats.words_sent, stats.words_sent)
        assert np.array_equal(ref_stats.words_recv, stats.words_recv)
        assert np.array_equal(ref_stats.msgs_sent, stats.msgs_sent)
        assert clocks == ref_clocks, (scheme, runner)


def test_multi_bucket_identical_across_runners():
    """The native bucketed path is runner-independent like everything
    else (results, traffic, makespans)."""
    p, iters = 4, 3
    base = None
    for runner in RUNNERS:
        got = _run_mode("oktopk", p, iters, "session", runner,
                        bucket_size=700)
        if base is None:
            base = got
        else:
            for t in range(iters):
                assert np.array_equal(base[0][t], got[0][t])
            assert np.array_equal(base[1].words_recv, got[1].words_recv)
            assert base[2] == got[2]


# ---------------------------------------------------------------------------
# Native multi-bucket semantics
# ---------------------------------------------------------------------------
class TestNativeBucketed:
    def test_all_ranks_agree_and_output_valid(self):
        p = 4
        lay = _layout()

        def prog(comm):
            algo = _make()
            outs = []
            for t in range(1, 4):
                res = run_session(algo, comm, lay, t, _acc(comm.rank, t),
                                  bucket_size=700)
                res.update.validate()
                assert isinstance(res.update, COOVector)
                assert res.nbuckets > 1
                outs.append(res.update_dense(N))
            return outs

        results = run_spmd(p, prog)
        for t in range(3):
            for r in range(1, p):
                assert np.array_equal(results[0][t], results[r][t])

    def test_bucket_k_budgets_split_from_global_k(self):
        p = 2
        lay = _layout()

        def prog(comm):
            algo = make_allreduce("oktopk", k=100, tau=2, tau_prime=2)
            return run_session(algo, comm, lay, 1, _acc(comm.rank, 1),
                               bucket_size=700)

        res = run_spmd(p, prog)[0]
        assert sum(res.info["bucket_k"]) == 100
        assert [st.k for st in res.bucket_stats] == res.info["bucket_k"]
        # proportional to bucket length (largest remainder)
        for st in res.bucket_stats:
            assert st.k == pytest.approx(100 * st.words / N, abs=1)

    def test_shared_state_not_thrashed_across_buckets(self):
        """The no-thrash regression at the heart of the tentpole: periodic
        evaluations happen on the iteration schedule, NOT once per bucket.
        tau = tau' = 2 over 4 iterations with a 4-bucket plan: one
        bootstrap plus re-estimates at t = 1 and t = 3 — never 4x that."""
        p = 2
        lay = _layout()

        def prog(comm):
            algo = _make()
            for t in range(1, 5):
                res = run_session(algo, comm, lay, t, _acc(comm.rank, t),
                                  bucket_size=180)
                assert res.nbuckets == 4
            return (algo.local_evaluations, algo.global_evaluations,
                    algo.repartitions)

        local, glob, reparts = run_spmd(p, prog)[0]
        # bootstrap (first bucket ever) + full-gradient refresh at t=1,3
        assert local == 3
        assert glob == 3
        # consensus repartition has no bootstrap (equal split needs none)
        assert reparts == 2

    def test_boundaries_keyed_to_full_gradient(self):
        """After the first consensus the shared boundaries span the full
        layout; each bucket's reported boundaries are the intersection
        with its extent."""
        p = 4
        lay = _layout()

        def prog(comm):
            algo = _make()
            res1 = run_session(algo, comm, lay, 1, _acc(comm.rank, 1),
                               bucket_size=700)
            res2 = run_session(algo, comm, lay, 2, _acc(comm.rank, 2),
                               bucket_size=700)
            return res1, res2, algo.state.boundaries

        res1, res2, full = run_spmd(p, prog)[0]
        assert full[0] == 0 and full[-1] == N and len(full) == p + 1
        for res in (res1, res2):
            for st in res.bucket_stats:
                bnd = st.info["boundaries"]
                assert bnd[0] == 0 and bnd[-1] == st.words
                assert len(bnd) == p + 1
                assert np.all(np.diff(bnd) >= 0)
        # iteration 1 ran on the equal-split bootstrap; its consensus
        # (computed at the last bucket) applies from iteration 2
        eq = np.linspace(0, N, p + 1).astype(np.int64)
        first = res1.bucket_stats[0]
        np.testing.assert_array_equal(
            first.info["boundaries"],
            np.clip(eq, first.lo, first.hi) - first.lo)

    def test_zero_k_buckets_skipped(self):
        """k < nbuckets: unfunded buckets are skipped outright and the
        funded ones still produce a valid, rank-agreeing update."""
        p = 2
        lay = _layout()

        def prog(comm):
            algo = make_allreduce("oktopk", k=2, tau=2, tau_prime=2)
            return run_session(algo, comm, lay, 1, _acc(comm.rank, 1),
                               bucket_size=180)

        res = run_spmd(p, prog)[0]
        skipped = [st for st in res.bucket_stats if st.k == 0]
        assert skipped
        assert all(st.words_recv == 0 and st.comm_time == 0.0
                   for st in skipped)
        assert sum(res.info["bucket_k"]) == 2
        res.update.validate()

    def test_oktopk_q_native_buckets(self):
        """The quantized variant inherits the shared-state bucketed path
        (quantized phase-2 payloads per bucket)."""
        p = 2
        lay = _layout()

        def prog(comm):
            algo = make_allreduce("oktopk_q", density=0.05, tau=2,
                                  tau_prime=2, stochastic=False)
            res = run_session(algo, comm, lay, 1, _acc(comm.rank, 1),
                              bucket_size=700)
            res.update.validate()
            return res

        res = run_spmd(p, prog)[0]
        assert res.nbuckets > 1
        assert res.update.nnz > 0


# ---------------------------------------------------------------------------
# Bugfix regressions: state reset + 1-based iteration contract
# ---------------------------------------------------------------------------
class TestStateReset:
    def test_counters_reset_with_thresholds_on_size_change(self):
        """Regression: a gradient-size change used to reset thresholds and
        boundaries but leak the evaluation/repartition counters, so a
        scheme instance reused across models reported stale stats."""

        def prog(comm):
            algo = _make()
            for t in range(1, 4):
                algo.reduce(comm, _acc(comm.rank, t, 512), t)
            before = (algo.local_evaluations, algo.global_evaluations,
                      algo.repartitions)
            # new model size: the whole state object is discarded
            algo.reduce(comm, _acc(comm.rank, 1, 256), 1)
            after = (algo.local_evaluations, algo.global_evaluations,
                     algo.repartitions)
            return before, after, algo.state.n

        before, after, n = run_spmd(2, prog)[0]
        assert before == (2, 2, 2)   # tau = tau' = 2 over 3 iterations
        assert after == (1, 1, 1)    # fresh state: only the new run counts
        assert n == 256

    def test_state_object_replaced_not_mutated(self):
        def prog(comm):
            algo = _make()
            algo.reduce(comm, _acc(comm.rank, 1, 512), 1)
            st1 = algo.state
            algo.reduce(comm, _acc(comm.rank, 1, 256), 1)
            return st1, algo.state

        st1, st2 = run_spmd(1, prog)[0]
        assert isinstance(st1, OkTopkState) and isinstance(st2, OkTopkState)
        assert st1 is not st2
        assert (st1.n, st2.n) == (512, 256)
        # the old object still reports the run it belonged to
        assert st1.local_evaluations == 1

    def test_balancing_counter_lives_in_state(self):
        def prog(comm):
            algo = make_allreduce("oktopk", k=16, tau_prime=1,
                                  balanced_partition=False,
                                  balance_trigger=1.5)
            acc = np.zeros(512, dtype=np.float32)
            rng = np.random.default_rng(comm.rank)
            acc[: 512 // 8] = rng.normal(size=512 // 8) * 10
            algo.reduce(comm, acc, 1)
            return algo.balancing_triggered, algo.state.balancing_triggered

        triggered, via_state = run_spmd(4, prog)[0]
        assert triggered == via_state == 1


class TestIterationContract:
    def test_due_rejects_non_positive_t(self):
        algo = _make()
        with pytest.raises(ConfigError, match="1-based"):
            algo._due(0, 4)
        with pytest.raises(ConfigError):
            algo._due(-3, 4)
        assert algo._due(1, 4) and not algo._due(2, 4)

    @pytest.mark.parametrize("t", [0, -1])
    def test_reduce_rejects_non_positive_t(self, t):
        def prog(comm):
            algo = _make()
            with pytest.raises(ConfigError):
                algo.reduce(comm, _acc(comm.rank, 1), t)
            return True

        assert run_spmd(1, prog)[0]

    def test_begin_rejects_non_positive_t(self):
        def prog(comm):
            algo = _make()
            with pytest.raises(ConfigError):
                algo.begin(comm, _layout(), 0)
            return True

        assert run_spmd(1, prog)[0]

    def test_schedule_not_shifted_by_validation(self):
        """t=1 fires the schedule, t=period+1 fires it again (the bug was
        silent schedule shift for non-positive t — now impossible)."""
        algo = _make(tau_prime=4)
        assert algo._due(1, 4)
        assert not any(algo._due(t, 4) for t in (2, 3, 4))
        assert algo._due(5, 4)


# ---------------------------------------------------------------------------
# Trainer-level: stream overlap win + convergence parity (acceptance)
# ---------------------------------------------------------------------------
def _train_mlp(p, iters, bucket_size, mode, net, tau=4):
    from repro.data import ShardedLoader, make_cifar_like
    from repro.nn.activation import ReLU
    from repro.nn.linear import Linear
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.nn.module import FlatModel, Flatten, Sequential
    from repro.train import Trainer, TrainerConfig

    def prog(comm):
        rng = np.random.default_rng(5)
        mod = Sequential(Flatten(),
                         Linear(48, 32, rng=rng), ReLU(),
                         Linear(32, 32, rng=rng), ReLU(),
                         Linear(32, 32, rng=rng), ReLU(),
                         Linear(32, 10, rng=rng))
        model = FlatModel(mod, SoftmaxCrossEntropy(),
                          flops_per_sample=2.0 * 48 * 32 * 3)
        train_d, _ = make_cifar_like(32, 8, image_size=4, noise=0.5, seed=0)
        loader = ShardedLoader(train_d, 8, comm.rank, comm.size, seed=1)
        cfg = TrainerConfig(iterations=iters, scheme="oktopk", lr=0.05,
                            density=0.05, bucket_size=bucket_size,
                            overlap_mode=mode,
                            scheme_kwargs={"tau": tau, "tau_prime": tau})
        return Trainer(comm, model, loader, cfg).run()

    return run_spmd(p, prog, model=net)[0]


#: comm-heavy: raw communication is the majority of the one-shot's visible
#: non-compute time, with enough backward to hide buckets behind
OVERLAP_NET = NetworkModel(alpha=5e-7, beta=5e-7, flop_time=2e-8)
#: strictly comm-bound: mean communication exceeds mean compute
COMM_BOUND_NET = NetworkModel(alpha=1e-7, beta=1e-6, flop_time=2e-8)


class TestStreamOverlap:
    def test_stream_strictly_faster_every_iteration(self):
        """Multi-bucket stream mode beats the one-shot baseline on every
        single iteration when there is backward compute to hide behind."""
        one = _train_mlp(4, 6, None, "analytic", OVERLAP_NET)
        stm = _train_mlp(4, 6, 700, "stream", OVERLAP_NET)
        assert all(r.nbuckets > 1 for r in stm.records)
        assert not any(r.stream_fallback for r in stm.records)
        for ro, rs in zip(one.records, stm.records):
            assert rs.iteration_time < ro.iteration_time
        assert stm.total_time < one.total_time

    def test_stream_total_win_comm_bound(self):
        """The acceptance scenario: strictly comm-bound network (mean comm
        > mean compute), multi-bucket stream iteration time strictly below
        the one-shot baseline in aggregate."""
        one = _train_mlp(4, 6, None, "analytic", COMM_BOUND_NET)
        stm = _train_mlp(4, 6, 180, "stream", COMM_BOUND_NET)
        bd = one.mean_breakdown(skip=1)
        assert bd["communication"] > bd["computation+io"]  # comm-bound
        assert all(r.nbuckets > 1 for r in stm.records)
        assert stm.total_time < one.total_time
        # results are overlap-mode-independent: same losses as the
        # analytic replay of the same bucketed execution
        ana = _train_mlp(4, 6, 180, "analytic", COMM_BOUND_NET)
        assert np.array_equal(stm.losses, ana.losses)

    def test_stream_runner_equivalence(self):
        import os
        recs = {}
        for runner in RUNNERS:
            os.environ["REPRO_SPMD_RUNNER"] = runner
            try:
                recs[runner] = _train_mlp(4, 4, 700, "stream", OVERLAP_NET)
            finally:
                os.environ.pop("REPRO_SPMD_RUNNER", None)
        a, b = recs["coop"], recs["threads"]
        assert np.array_equal(a.losses, b.losses)
        for ra, rb in zip(a.records, b.records):
            assert ra.iteration_time == rb.iteration_time
            assert ra.comm_time == rb.comm_time
            assert ra.words_recv == rb.words_recv


@pytest.mark.slow
class TestConvergenceParity:
    def test_perf_mlp_final_loss_within_noise_of_oneshot(self):
        """Acceptance: bucketed-stream Ok-Topk converges like one-shot
        Ok-Topk on the perf_mlp scenario (deterministic seeds, so the
        tolerance brackets algorithmic noise, not run-to-run noise)."""
        from repro.bench import perf_proxy, train_scheme
        from repro.bench.harness import proxy_network

        kw = {"tau": 4, "tau_prime": 4}
        one = train_scheme(perf_proxy(), "oktopk", 4, 12, density=0.02,
                           scheme_kwargs=kw, network=proxy_network())
        stm = train_scheme(perf_proxy(), "oktopk", 4, 12, density=0.02,
                           scheme_kwargs=kw, bucket_size=512,
                           overlap_mode="stream", network=proxy_network())
        assert np.isfinite(one.losses).all()
        assert np.isfinite(stm.losses).all()
        assert stm.records[-1].nbuckets > 1
        assert not any(r.stream_fallback for r in stm.records)
        # both runs converge well below their starting loss...
        assert one.losses[-1] < 0.3 * one.losses[0]
        assert stm.losses[-1] < 0.3 * stm.losses[0]
        # ...and end within noise of each other
        assert stm.losses[-1] == pytest.approx(one.losses[-1], rel=0.35)


# ---------------------------------------------------------------------------
# BucketView defaults
# ---------------------------------------------------------------------------
def test_reduce_bucket_standalone_without_view():
    """Calling _reduce_bucket without a session context treats the slice
    as a complete single-bucket gradient (synthetic BucketView)."""

    def prog(comm):
        algo = _make()
        res = algo._reduce_bucket(comm, _acc(comm.rank, 1, 256), 1)
        res.update.validate()
        return res

    res = run_spmd(2, prog)[0]
    assert res.update.n == 256
    assert res.info["k"] >= 1


def test_bucket_view_pushed_suffix():
    acc = np.arange(10, dtype=np.float32)
    view = BucketView(lo=4, hi=7, n=10, index=1, nbuckets=3, final=False,
                      acc=acc)
    np.testing.assert_array_equal(view.pushed, acc[4:])
