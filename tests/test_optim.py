"""Optimizers: SGD/Adam units, schedules, and Algorithm 2 invariants."""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.comm import run_spmd
from repro.optim import (
    SGD,
    Adam,
    ConstantLR,
    LinearDecayLR,
    SparseOptimWrapper,
    StepDecayLR,
    TopkSGD,
)


class TestSGD:
    def test_minimizes_quadratic(self):
        w = np.array([5.0, -3.0], dtype=np.float32)
        opt = SGD(lr=0.1)
        for _ in range(200):
            opt.step(w, 2 * w)  # grad of ||w||^2
        assert np.linalg.norm(w) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            w = np.array([5.0], dtype=np.float32)
            opt = SGD(lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.step(w, 2 * w)
            return abs(w[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        w = np.array([1.0], dtype=np.float32)
        opt = SGD(lr=0.1, weight_decay=0.5)
        opt.step(w, np.zeros(1, dtype=np.float32))
        assert w[0] == pytest.approx(1.0 - 0.1 * 0.5)


class TestAdam:
    def test_minimizes_quadratic(self):
        w = np.array([5.0, -3.0], dtype=np.float32)
        opt = Adam(lr=0.1)
        for _ in range(300):
            opt.step(w, 2 * w)
        assert np.linalg.norm(w) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_scale_invariance_of_first_steps(self):
        """Adam normalizes by the gradient scale."""
        w1 = np.array([1.0], dtype=np.float32)
        w2 = np.array([1.0], dtype=np.float32)
        a1, a2 = Adam(lr=0.1), Adam(lr=0.1)
        a1.step(w1, np.array([1.0], dtype=np.float32))
        a2.step(w2, np.array([1000.0], dtype=np.float32))
        assert w1[0] == pytest.approx(w2[0], rel=1e-4)


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.5)
        assert s(1) == s(1000) == 0.5

    def test_step_decay(self):
        s = StepDecayLR(1.0, milestones=[10, 20], factor=0.1)
        assert s(5) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(25) == pytest.approx(0.01)

    def test_linear_decay_with_warmup(self):
        s = LinearDecayLR(1.0, total=100, warmup=10)
        assert s(5) == pytest.approx(0.5)
        assert s(10) == pytest.approx(1.0)
        assert s(55) == pytest.approx(0.5)
        assert s(100) == pytest.approx(0.0)


def _grad_fn(rank, t, n=128):
    rng = np.random.default_rng(rank * 7919 + t)
    return rng.normal(size=n).astype(np.float32)


class TestTopkSGDAlgorithm2:
    def test_dense_equals_centralized_sgd(self):
        """With the dense allreduce, Algorithm 2 reduces to synchronous SGD
        on the mean gradient."""
        p, n, iters, lr = 4, 64, 5, 0.1

        def prog(comm):
            algo = make_allreduce("dense")
            opt = TopkSGD(algo, lr, n)
            w = np.zeros(n, dtype=np.float32)
            for t in range(1, iters + 1):
                opt.step(comm, w, _grad_fn(comm.rank, t, n))
            return w

        res = run_spmd(p, prog)
        w_ref = np.zeros(n, dtype=np.float32)
        for t in range(1, iters + 1):
            mean_g = np.mean([_grad_fn(r, t, n) for r in range(p)], axis=0)
            w_ref -= lr * mean_g
        for r in range(p):
            np.testing.assert_allclose(res[r], w_ref, rtol=1e-4, atol=1e-5)

    def test_residual_conservation(self):
        """acc is split exactly between the contribution and the residual:
        residual + acc[contributed] == acc (error feedback loses nothing)."""
        n, k = 256, 16

        def prog(comm):
            algo = make_allreduce("oktopk", k=k, tau_prime=1)
            opt = TopkSGD(algo, 0.5, n)
            checks = []
            for t in range(1, 4):
                grad = _grad_fn(comm.rank, t, n)
                acc_expect = opt.residual + 0.5 * grad
                info = opt.step(comm, np.zeros(n, dtype=np.float32), grad)
                contributed = info.result.contributed_indices
                # residual zero at contributed indices
                checks.append(np.all(opt.residual[contributed] == 0))
                # elsewhere the residual is exactly the accumulator
                mask = np.ones(n, dtype=bool)
                mask[contributed] = False
                checks.append(np.allclose(opt.residual[mask],
                                          acc_expect[mask]))
            return all(checks)

        res = run_spmd(4, prog)
        assert all(res.results)

    def test_all_workers_keep_identical_weights(self):
        n, k = 128, 8

        def prog(comm):
            algo = make_allreduce("oktopk", k=k)
            opt = TopkSGD(algo, 0.1, n)
            w = np.zeros(n, dtype=np.float32)
            for t in range(1, 6):
                opt.step(comm, w, _grad_fn(comm.rank, t, n))
            return w

        res = run_spmd(4, prog)
        for r in range(1, 4):
            np.testing.assert_array_equal(res[r], res[0])

    @pytest.mark.parametrize("scheme,kwargs", [
        ("oktopk", {"k": 16}),
        ("topka", {"k": 16}),
        ("gtopk", {"k": 16}),
        ("topkdsa", {"k": 16}),
        ("gaussiank", {"k": 16}),
    ])
    def test_sparse_sgd_tracks_dense_on_quadratic(self, scheme, kwargs):
        """Error feedback: all sparse schemes minimize a quadratic nearly
        as well as dense SGD (the Top-k SGD convergence result)."""
        p, n, iters = 4, 128, 60
        target = np.linspace(-1, 1, n).astype(np.float32)

        def prog(comm, name, kw):
            algo = make_allreduce(name, **kw)
            opt = TopkSGD(algo, 0.2, n)
            w = np.zeros(n, dtype=np.float32)
            rng = np.random.default_rng(comm.rank)
            for _ in range(iters):
                noise = rng.normal(0, 0.05, size=n).astype(np.float32)
                grad = (w - target) + noise
                opt.step(comm, w, grad)
            return float(np.linalg.norm(w - target))

        dense_err = max(run_spmd(p, prog, "dense", {}).results)
        sparse_err = max(run_spmd(p, prog, scheme, kwargs).results)
        assert sparse_err < max(4 * dense_err, 0.5)


class TestSparseOptimWrapper:
    def test_adam_wrapped_converges(self):
        p, n = 2, 64
        target = np.full(n, 0.7, dtype=np.float32)

        def prog(comm):
            algo = make_allreduce("oktopk", k=8)
            opt = SparseOptimWrapper(algo, __import__(
                "repro.optim", fromlist=["Adam"]).Adam(lr=0.05), n)
            w = np.zeros(n, dtype=np.float32)
            for _ in range(150):
                opt.step(comm, w, w - target)
            return float(np.linalg.norm(w - target))

        res = run_spmd(p, prog)
        assert max(res.results) < 0.5

    def test_residual_on_raw_gradients(self):
        n = 32

        def prog(comm):
            algo = make_allreduce("topka", k=4)
            opt = SparseOptimWrapper(algo, Adam(lr=0.01), n)
            g = _grad_fn(comm.rank, 1, n)
            opt.step(comm, np.zeros(n, dtype=np.float32), g)
            # non-contributed entries keep the raw gradient
            mask = np.ones(n, dtype=bool)
            mask[np.abs(g).argsort()[-4:]] = False
            return np.allclose(opt.residual[mask], g[mask])

        assert all(run_spmd(2, prog).results)
