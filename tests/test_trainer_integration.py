"""End-to-end data-parallel training across all six allreduce schemes."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # real training runs; skip with -m "not slow"

from repro.comm import run_spmd
from repro.data import ShardedLoader, make_an4_like, make_cifar_like, \
    make_wikipedia_like
from repro.nn.models import BertConfig, make_bert_model, \
    make_lstm_speech_model, make_vgg16_model
from repro.train import Trainer, TrainerConfig, top1_accuracy


def _vgg_worker(comm, cfg_kwargs, iterations=6, global_batch=16):
    train, test = make_cifar_like(64, 16, image_size=32, noise=0.6, seed=0)
    model = make_vgg16_model(width_mult=0.05, seed=42)
    loader = ShardedLoader(train, global_batch, comm.rank, comm.size, seed=1)

    def evaluate(m):
        return {"acc": top1_accuracy(m.predict(test.x), test.y)}

    cfg = TrainerConfig(iterations=iterations, lr=0.05, eval_every=iterations,
                        **cfg_kwargs)
    return Trainer(comm, model, loader, cfg, eval_fn=evaluate).run()


ALL_SCHEMES = [
    ("dense", {}),
    ("dense_ovlp", {}),
    ("topka", {"density": 0.02}),
    ("topkdsa", {"density": 0.02}),
    ("gtopk", {"density": 0.02}),
    ("gaussiank", {"density": 0.02}),
    ("oktopk", {"density": 0.02}),
]


class TestVggTraining:
    @pytest.mark.parametrize("scheme,extra", ALL_SCHEMES)
    def test_loss_decreases(self, scheme, extra):
        kwargs = {"scheme": scheme}
        kwargs.update({k: v for k, v in extra.items() if k == "density"})
        res = run_spmd(2, _vgg_worker, kwargs)
        rec = res[0]
        assert rec.records[-1].loss < rec.records[0].loss * 1.2
        first3 = np.mean(rec.losses[:3])
        last3 = np.mean(rec.losses[-3:])
        assert last3 < first3

    def test_records_have_breakdown(self):
        res = run_spmd(2, _vgg_worker, {"scheme": "oktopk", "density": 0.02})
        rec = res[0]
        r = rec.records[0]
        assert r.compute_time > 0
        assert r.comm_time > 0
        assert r.sparsify_time > 0
        assert r.iteration_time >= r.compute_time
        assert rec.final_eval() is not None

    def test_dense_ovlp_overlap_credit(self):
        """DenseOvlp's visible iteration time <= Dense's (same comm volume,
        overlapped with backward)."""
        dense = run_spmd(2, _vgg_worker, {"scheme": "dense"})[0]
        ovlp = run_spmd(2, _vgg_worker, {"scheme": "dense_ovlp"})[0]
        assert ovlp.total_time <= dense.total_time * 1.02

    def test_all_ranks_identical_models(self):
        """Weights must stay bitwise identical across workers (losses are
        shard-local and legitimately differ)."""
        def worker(comm):
            train, _ = make_cifar_like(64, 16, image_size=32, seed=0)
            model = make_vgg16_model(width_mult=0.05, seed=42)
            loader = ShardedLoader(train, 16, comm.rank, comm.size, seed=1)
            cfg = TrainerConfig(iterations=3, scheme="oktopk",
                                density=0.02, lr=0.05)
            Trainer(comm, model, loader, cfg).run()
            return model.params_flat.copy()

        res = run_spmd(2, worker)
        np.testing.assert_array_equal(res[0], res[1])

    def test_oktopk_accuracy_close_to_dense(self):
        """The paper's headline convergence claim, at proxy scale: with
        error feedback, sparse training approaches dense accuracy."""
        dense = run_spmd(2, _vgg_worker, {"scheme": "dense"},
                         iterations=24)[0]
        ok = run_spmd(2, _vgg_worker,
                      {"scheme": "oktopk", "density": 0.1},
                      iterations=24)[0]
        acc_d = dense.final_eval()["acc"]
        acc_o = ok.final_eval()["acc"]
        assert acc_o >= acc_d - 0.2


class TestLstmTraining:
    def test_oktopk_trains_lstm(self):
        def worker(comm):
            train, test = make_an4_like(48, 12, features=10, seq_len=8,
                                        n_phones=6, seed=2)
            model = make_lstm_speech_model(features=10, hidden=24, layers=1,
                                           classes=6, seq_len=8, seed=3)
            loader = ShardedLoader(train, 8, comm.rank, comm.size, seed=4)
            cfg = TrainerConfig(iterations=10, scheme="oktopk",
                                density=0.05, lr=0.3)
            return Trainer(comm, model, loader, cfg).run()

        rec = run_spmd(2, worker)[0]
        assert rec.records[-1].loss < rec.records[0].loss

    def test_xi_measured_and_finite(self):
        def worker(comm):
            train, _ = make_an4_like(32, 8, features=8, seq_len=6,
                                     n_phones=4, seed=5)
            model = make_lstm_speech_model(features=8, hidden=12, layers=1,
                                           classes=4, seq_len=6, seed=6)
            loader = ShardedLoader(train, 8, comm.rank, comm.size, seed=7)
            cfg = TrainerConfig(iterations=4, scheme="oktopk", density=0.05,
                                lr=0.1, xi_every=2)
            return Trainer(comm, model, loader, cfg).run()

        rec = run_spmd(2, worker)[0]
        xis = [r.xi for r in rec.records if r.xi is not None]
        assert len(xis) == 2
        assert all(np.isfinite(x) and x >= 0 for x in xis)


class TestBertTraining:
    def test_adam_mode_mlm_loss_decreases(self):
        def worker(comm):
            train, _ = make_wikipedia_like(64, 16, vocab=60, seq_len=12,
                                           seed=8)
            cfg_model = BertConfig(vocab=60, hidden=16, layers=1, heads=2,
                                   intermediate=32, max_seq=12)
            model = make_bert_model(cfg_model, seq_len=12, seed=9)
            loader = ShardedLoader(train, 16, comm.rank, comm.size, seed=10)
            cfg = TrainerConfig(iterations=12, scheme="oktopk", density=0.05,
                                mode="adam", lr=5e-3)
            return Trainer(comm, model, loader, cfg).run()

        rec = run_spmd(2, worker)[0]
        assert np.mean(rec.losses[-4:]) < np.mean(rec.losses[:4])
