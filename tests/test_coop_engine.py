"""Unit tests for the cooperative engine and runner selection."""

import numpy as np
import pytest

from repro.comm import Network, resolve_runner, run_spmd
from repro.comm.launcher import RUNNER_ENV
from repro.errors import RankFailedError


class TestRunnerSelection:
    def test_default_is_coop(self):
        assert resolve_runner(None) == "coop"

    def test_aliases(self):
        assert resolve_runner("cooperative") == "coop"
        assert resolve_runner("threaded") == "threads"
        assert resolve_runner("THREADS") == "threads"

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown SPMD runner"):
            resolve_runner("fibers")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(RUNNER_ENV, "threads")
        assert resolve_runner(None) == "threads"
        # explicit argument wins over the environment
        assert resolve_runner("coop") == "coop"

    def test_env_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv(RUNNER_ENV, "bogus")
        with pytest.raises(ValueError):
            run_spmd(2, lambda comm: None)


class TestEngineExecution:
    def test_rank_order_determinism(self):
        """Execution produces rank-ordered results regardless of the
        interleaving of blocking points."""
        def prog(comm):
            out = []
            for it in range(4):
                got = comm.sendrecv(comm.rank * 100 + it,
                                    (comm.rank + 1) % comm.size,
                                    (comm.rank - 1) % comm.size, it)
                out.append(got)
            return out

        a = run_spmd(5, prog, runner="coop")
        b = run_spmd(5, prog, runner="coop")
        assert a.results == b.results
        assert a.makespan == b.makespan

    def test_network_reuse_across_sections(self):
        net = Network(3)

        def prog(comm):
            comm.send(comm.rank, (comm.rank + 1) % 3, 1)
            return comm.recv((comm.rank - 1) % 3, 1)

        first = run_spmd(3, prog, network=net, runner="coop")
        second = run_spmd(3, prog, network=net, runner="coop")
        assert first.results == second.results
        assert net._sched is None  # engine detached after each section
        assert net.stats().msgs_sent.sum() == 6

    def test_failure_unblocks_peers(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.recv(0)  # would block forever without abort propagation

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner="coop")
        assert 0 in ei.value.failures
        assert isinstance(ei.value.failures[0], RuntimeError)

    def test_failure_after_partial_comm(self):
        def prog(comm):
            other = 1 - comm.rank
            comm.send(np.ones(4, dtype=np.float32), other, 1)
            comm.recv(other, 1)
            if comm.rank == 1:
                raise ValueError("late failure")
            comm.recv(other, 2)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner="coop")
        assert list(ei.value.failures) == [1]

    def test_single_rank_fast_path(self):
        def prog(comm):
            comm.send("self", comm.rank, 1)
            return comm.recv(comm.rank, 1)

        for runner in ("coop", "threads"):
            assert run_spmd(1, prog, runner=runner)[0] == "self"

    def test_ready_rank_runs_before_idle_wait(self):
        """A rank woken by a matching post resumes without polling: the
        result is exact and no wall-clock timeouts are involved."""
        def prog(comm):
            if comm.rank == 0:
                for d in (1, 2, 3):
                    comm.send(np.full(2, d, np.float32), d, 9)
                return None
            return float(comm.recv(0, 9)[0])

        res = run_spmd(4, prog, runner="coop")
        assert res.results[1:] == [1.0, 2.0, 3.0]
